"""Tests for the baseline filters (DOM, NFA, lazy/eager DFA) and their memory reports."""

import pytest

from repro.baselines import (
    EagerDFAFilter,
    LazyDFAFilter,
    NaiveDOMFilter,
    PathNFA,
    PathNFAFilter,
    determinize,
    linear_steps,
    nfa_state_blowup,
)
from repro.core import UnsupportedQueryError, filter_document, filter_with_statistics
from repro.semantics import bool_eval
from repro.workloads import alternating_path_query, nested_sections, path_query
from repro.xmlstream import parse_document
from repro.xpath import parse_query

LINEAR_CASES = [
    ("/a/b", "<a><b/></a>", True),
    ("/a/b", "<a><c><b/></c></a>", False),
    ("//b", "<a><c><b/></c></a>", True),
    ("/a//c/d", "<a><x><c><d/></c></x></a>", True),
    ("/a//c/d", "<a><x><c><e><d/></e></c></x></a>", False),
    ("//a//b", "<x><a><y><b/></y></a></x>", True),
    ("/a/*/c", "<a><q><c/></q></a>", True),
    ("/a/*/c", "<a><c/></a>", False),
]


class TestAutomatonConstruction:
    def test_linear_steps_extraction(self):
        steps = linear_steps(parse_query("/a//b/c"))
        assert [(s.axis, s.ntest) for s in steps] == [
            ("child", "a"), ("descendant", "b"), ("child", "c")
        ]

    def test_branching_query_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            linear_steps(parse_query("/a[b]/c"))

    def test_nfa_size_is_linear_in_query(self):
        nfa = PathNFA(path_query(6, axis="//"))
        assert nfa.state_count == 7

    def test_nfa_acceptance(self):
        nfa = PathNFA(parse_query("/a//b"))
        states = nfa.initial()
        states = nfa.step(states, "a")
        assert not nfa.accepts(states)
        states = nfa.step(states, "x")
        states = nfa.step(states, "b")
        assert nfa.accepts(states)

    def test_eager_dfa_has_more_states_than_nfa_for_descendant_queries(self):
        query = alternating_path_query(8)
        nfa_states, dfa_states = nfa_state_blowup(query)
        assert dfa_states > nfa_states

    def test_dfa_blowup_grows_with_descendant_steps(self):
        small = determinize(PathNFA(alternating_path_query(4))).state_count
        large = determinize(PathNFA(alternating_path_query(10))).state_count
        assert large > small

    def test_lazy_dfa_materializes_fewer_states_than_eager(self):
        query = alternating_path_query(8)
        eager = EagerDFAFilter(query)
        lazy = LazyDFAFilter(query)
        document = nested_sections(5)
        eager.run_document(document)
        lazy.run_document(document)
        assert lazy.dfa.state_count <= eager.dfa.state_count


class TestBaselineCorrectness:
    @pytest.mark.parametrize("query_text,document_text,expected", LINEAR_CASES)
    @pytest.mark.parametrize("factory", [PathNFAFilter, LazyDFAFilter, EagerDFAFilter,
                                         NaiveDOMFilter])
    def test_linear_queries_agree_with_reference(self, factory, query_text,
                                                 document_text, expected):
        query = parse_query(query_text)
        document = parse_document(document_text)
        assert bool_eval(query, document) is expected
        assert factory(query).run_document(document) is expected

    def test_dom_baseline_supports_predicates(self):
        query = parse_query("/a[b > 5 and c]")
        document = parse_document("<a><b>7</b><c/></a>")
        assert NaiveDOMFilter(query).run_document(document)

    def test_baselines_agree_with_streaming_filter_on_dataset(self):
        query = parse_query("//section//title")
        document = nested_sections(4)
        expected = filter_document(query, document)
        for factory in (PathNFAFilter, LazyDFAFilter, EagerDFAFilter, NaiveDOMFilter):
            assert factory(query).run_document(document) == expected


class TestMemoryReports:
    def test_dom_memory_grows_with_document(self):
        query = parse_query("//title")
        small_filter = NaiveDOMFilter(query)
        small_filter.run_document(nested_sections(2))
        large_filter = NaiveDOMFilter(query)
        large_filter.run_document(nested_sections(7, breadth=3))
        assert large_filter.memory_report().total_bits > \
            small_filter.memory_report().total_bits

    def test_dfa_report_includes_transition_table(self):
        query = alternating_path_query(6)
        baseline = EagerDFAFilter(query)
        baseline.run_document(nested_sections(3))
        report = baseline.memory_report()
        assert report.component("table_bits") > 0
        assert report.component("dfa_states") == baseline.dfa.state_count
        assert report.total_bits >= report.component("table_bits")

    def test_nfa_report_tracks_stack_depth(self):
        query = parse_query("//section//title")
        baseline = PathNFAFilter(query)
        baseline.run_document(nested_sections(6))
        report = baseline.memory_report()
        assert report.component("peak_stack_depth") >= 6

    def test_streaming_filter_beats_dom_on_large_documents(self):
        """The paper's headline comparison: the filter's memory is tiny compared to
        buffering the document."""
        query = parse_query("//section[title and p]")
        document = nested_sections(8, breadth=3)
        _, stats = filter_with_statistics(query, document)
        dom = NaiveDOMFilter(query)
        dom.run_document(document)
        assert stats.peak_memory_bits < dom.memory_report().total_bits / 10
