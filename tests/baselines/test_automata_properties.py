"""Property-based tests: all automata baselines agree with the reference evaluator."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EagerDFAFilter, LazyDFAFilter, PathNFAFilter, determinize, PathNFA
from repro.semantics import bool_eval
from repro.xpath import parse_query

from ..strategies import LABELS, documents


def random_linear_query(rng: random.Random, max_steps: int = 4):
    steps = rng.randint(1, max_steps)
    parts = []
    for _ in range(steps):
        axis = rng.choice(("/", "//"))
        name = rng.choice(LABELS + ("*",))
        parts.append(axis + name)
    text = "".join(parts)
    if all(name == "*" for name in text.replace("/", " ").split()):
        text = "/a" + text  # avoid the degenerate all-wildcard query
    return parse_query(text)


@st.composite
def linear_queries(draw):
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return random_linear_query(random.Random(seed))


class TestAutomataAgainstReference:
    @given(linear_queries(), documents())
    @settings(max_examples=80, deadline=None)
    def test_all_baselines_agree_with_reference(self, query, document):
        expected = bool_eval(query, document)
        assert PathNFAFilter(query).run_document(document) == expected
        assert LazyDFAFilter(query).run_document(document) == expected
        assert EagerDFAFilter(query).run_document(document) == expected

    @given(linear_queries(), documents())
    @settings(max_examples=40, deadline=None)
    def test_lazy_dfa_never_exceeds_eager_state_count(self, query, document):
        lazy = LazyDFAFilter(query)
        lazy.run_document(document)
        eager_states = determinize(PathNFA(query)).state_count
        assert lazy.dfa.state_count <= eager_states

    @given(linear_queries())
    @settings(max_examples=40, deadline=None)
    def test_eager_dfa_state_count_is_at_most_exponential(self, query):
        nfa = PathNFA(query)
        dfa = determinize(nfa)
        assert dfa.state_count <= 2 ** nfa.state_count
        assert dfa.state_count >= 1
