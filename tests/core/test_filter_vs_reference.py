"""Property-based equivalence: the streaming filter agrees with the reference evaluator.

This is the central correctness test of the reproduction: on random supported queries
and random documents, the Section 8 streaming algorithm must return exactly
``BOOLEVAL(Q, D)``.
"""

import random

from hypothesis import given, settings

from repro.core import StreamingFilter, UnsupportedQueryError, filter_document
from repro.semantics import bool_eval
from repro.workloads import (
    auction_site,
    book_catalog,
    dissemination_queries,
    nested_sections,
)
from repro.xmlstream import interleave_children
from repro.xpath import parse_query

from ..strategies import documents, supported_queries


class TestFilterEqualsReference:
    @given(supported_queries(), documents())
    @settings(max_examples=120, deadline=None)
    def test_random_queries_and_documents(self, query, document):
        try:
            streamed = filter_document(query, document)
        except UnsupportedQueryError:
            return
        assert streamed == bool_eval(query, document)

    @given(documents())
    @settings(max_examples=40, deadline=None)
    def test_recursive_query_on_random_documents(self, document):
        query = parse_query("//a[b and c]")
        assert filter_document(query, document) == bool_eval(query, document)

    @given(supported_queries(), documents())
    @settings(max_examples=40, deadline=None)
    def test_sibling_order_invariance(self, query, document):
        """Claim 4.3 generalized: the queries are indifferent to sibling order."""
        try:
            original = filter_document(query, document)
        except UnsupportedQueryError:
            return
        shuffled = interleave_children(document, random.Random(5))
        assert filter_document(query, shuffled) == original

    def test_dissemination_workload(self):
        corpus = [book_catalog(15), auction_site(6), nested_sections(4)]
        for text in dissemination_queries():
            query = parse_query(text)
            for document in corpus:
                assert filter_document(query, document) == bool_eval(query, document), (
                    text
                )

    def test_filter_is_deterministic(self):
        query = parse_query("//a[b and c]")
        document = nested_sections(3)
        results = {StreamingFilter(query).run_document(document) for _ in range(3)}
        assert len(results) == 1
