"""Property tests: the indexed dispatch bank is indistinguishable from the naive one.

The shared-dispatch :class:`~repro.core.FilterBank` skips events that provably cannot
affect a filter; :class:`~repro.baselines.NaiveFilterBank` feeds every event to every
filter.  On random documents and random supported queries the two must report identical
matched sets, identical per-query outcomes, and identical per-query statistics — the
statistics equality is the strong claim, since it certifies that the skipped-window
accounting (event counts, max level, peak memory bits) loses nothing.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveFilterBank
from repro.core import FilterBank
from repro.semantics import bool_eval
from repro.workloads import book_catalog, dissemination_queries
from repro.xpath import parse_query

from ..strategies import documents, random_supported_query


def _register_random_queries(seed: int, count: int):
    rng = random.Random(seed)
    indexed, naive = FilterBank(), NaiveFilterBank()
    queries = {}
    for index in range(count):
        query = random_supported_query(rng)
        name = f"q{index}"
        queries[name] = query
        indexed.register(name, query)
        naive.register(name, query)
    return indexed, naive, queries


class TestDispatchEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=8))
    def test_matched_sets_and_stats_agree_on_random_inputs(self, document, seed, count):
        indexed, naive, queries = _register_random_queries(seed, count)
        indexed_result = indexed.filter_document(document)
        naive_result = naive.filter_document(document)
        assert indexed_result.matched == naive_result.matched
        for name in queries:
            assert indexed_result.per_query_stats[name] == \
                naive_result.per_query_stats[name]

    @settings(max_examples=40, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_outcomes_agree_with_reference_evaluator(self, document, seed):
        indexed, naive, queries = _register_random_queries(seed, count=4)
        indexed_matched = set(indexed.filter_document(document).matched)
        for name, query in queries.items():
            assert (name in indexed_matched) == bool_eval(query, document)

    @settings(max_examples=25, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=6))
    def test_filter_many_agrees_with_naive_per_document(self, document, seed, count):
        indexed, naive, _ = _register_random_queries(seed, count)
        batched = indexed.filter_many([document, document])
        expected = naive.filter_document(document).matched
        assert [result.matched for result in batched] == [expected, expected]

    def test_agreement_on_dissemination_workload(self):
        indexed, naive = FilterBank(), NaiveFilterBank()
        for index, text in enumerate(dissemination_queries()):
            indexed.register(f"q{index}", parse_query(text))
            naive.register(f"q{index}", parse_query(text))
        for seed in range(5):
            document = book_catalog(20, seed=seed)
            indexed_result = indexed.filter_document(document)
            naive_result = naive.filter_document(document)
            assert indexed_result.matched == naive_result.matched
            assert indexed_result.per_query_stats == naive_result.per_query_stats
