"""Property-style tests: canonical documents for generated redundancy-free queries."""

import pytest

from repro.core import (
    build_canonical_document,
    canonical_matching_is_unique,
    classify,
    document_frontier_size,
    query_frontier_size,
)
from repro.semantics import bool_eval, count_matchings
from repro.workloads import (
    balanced_query,
    deep_nested_predicate_query,
    descendant_branch_query,
    frontier_sweep_queries,
    path_query,
    value_predicate_query,
)


def generated_queries():
    """A spread of generated redundancy-free queries of different shapes."""
    sweep = frontier_sweep_queries([2, 5])
    return {
        "balanced-2x2": balanced_query(2, 2),
        "balanced-2x3": balanced_query(2, 3),
        "balanced-3x2": balanced_query(3, 2),
        "path-4": path_query(4),
        "path-3-descendant": path_query(3, axis="//"),
        "branch-3": descendant_branch_query(3),
        "values-4": value_predicate_query(4),
        "chain-5": deep_nested_predicate_query(5),
        "flat-2": sweep[2],
        "flat-5": sweep[5],
    }


@pytest.mark.parametrize("name", sorted(generated_queries()))
class TestCanonicalForGeneratedQueries:
    def test_queries_are_redundancy_free(self, name):
        query = generated_queries()[name]
        assert classify(query).redundancy_free

    def test_canonical_document_matches_and_is_unique(self, name):
        query = generated_queries()[name]
        canonical = build_canonical_document(query)
        assert bool_eval(query, canonical.document)
        assert count_matchings(query, canonical.document, limit=4) == 1
        assert canonical_matching_is_unique(canonical)

    def test_canonical_frontier_equals_query_frontier(self, name):
        """The frontier size of the canonical document equals FS(Q) (used implicitly by
        the Theorem 7.1 proof: artificial chains have no siblings)."""
        query = generated_queries()[name]
        canonical = build_canonical_document(query)
        assert document_frontier_size(canonical.document) == query_frontier_size(query)

    def test_shadow_map_covers_every_query_node(self, name):
        query = generated_queries()[name]
        canonical = build_canonical_document(query)
        for node in query.nodes():
            assert canonical.shadow(node) is not None

    def test_artificial_nodes_only_under_descendant_axes(self, name):
        query = generated_queries()[name]
        canonical = build_canonical_document(query)
        has_descendant = any(node.axis == "descendant" for node in query.non_root_nodes())
        assert bool(canonical.artificial_ids) == has_descendant
