"""Tests for the bit-level memory accounting models."""

from repro.instrument import (
    AutomatonMemoryModel,
    DOMMemoryModel,
    FrontierMemoryModel,
    bits_for,
)


class TestBitsFor:
    def test_small_counts(self):
        assert bits_for(0) == 1
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(4) == 2
        assert bits_for(5) == 3

    def test_powers_of_two(self):
        assert bits_for(1024) == 10
        assert bits_for(1025) == 11


class TestFrontierMemoryModel:
    def test_bits_grow_with_frontier_records(self):
        model = FrontierMemoryModel(query_size=8)
        small = model.bits(frontier_records=2, buffer_chars=0, current_level=3)
        large = model.bits(frontier_records=10, buffer_chars=0, current_level=3)
        assert large > small

    def test_bits_grow_with_buffer(self):
        model = FrontierMemoryModel(query_size=8)
        empty = model.bits(frontier_records=2, buffer_chars=0, current_level=3)
        buffered = model.bits(frontier_records=2, buffer_chars=100, current_level=3)
        assert buffered - empty >= 100 * 8

    def test_level_contributes_logarithmically(self):
        model = FrontierMemoryModel(query_size=8)
        shallow = model.bits(frontier_records=1, buffer_chars=0, current_level=2)
        deep = model.bits(frontier_records=1, buffer_chars=0, current_level=2 ** 16)
        assert deep > shallow
        assert deep < shallow + 64  # logarithmic, not linear

    def test_tuple_bits_composition(self):
        model = FrontierMemoryModel(query_size=7)
        assert model.tuple_bits(current_level=3, buffer_chars=5) == (
            bits_for(8) + bits_for(5) + bits_for(7) + 1
        )


class TestAutomatonMemoryModel:
    def test_transition_table_dominates_for_many_states(self):
        model = AutomatonMemoryModel()
        table = model.transition_table_bits(states=1024, alphabet_size=16)
        stack = model.stack_bits(stack_depth=20, states=1024)
        assert table > stack

    def test_nfa_state_set_bits(self):
        model = AutomatonMemoryModel()
        assert model.nfa_state_set_bits(nfa_states=10, stack_depth=4) == 40


class TestDOMMemoryModel:
    def test_dom_grows_linearly_with_document(self):
        model = DOMMemoryModel()
        small = model.bits(element_count=10, text_chars=50, name_chars=20)
        large = model.bits(element_count=1000, text_chars=5000, name_chars=2000)
        assert large > 50 * small
