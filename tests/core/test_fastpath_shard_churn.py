"""Property tests for the PR-3 throughput layer.

Three equivalences must hold against the statistics-accurate engines:

* the **match-only fast path** (``CompiledFilterBank(stats=False)`` /
  ``MatchOnlyFilterBank``) reports the same matched sets on arbitrary documents and
  query banks — including the path-plan tier that keeps no frontier records, the
  record-machinery tier for branching queries, and plan interning across duplicate
  registrations;
* an **incrementally maintained trie** (register/unregister splicing) is
  indistinguishable from a from-scratch rebuild after any operation sequence: same
  ``trie_size``, same matched sets, same per-query statistics;
* the **sharded bank** returns the same :class:`~repro.core.BankResult` as the
  single-process engine for every shard count, in both match-only and
  statistics-accurate modes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompiledFilterBank,
    FilterBank,
    MatchOnlyFilterBank,
    ShardedFilterBank,
)
from repro.workloads import (
    shared_prefix_feed,
    shared_prefix_subscriptions,
    subscription_churn,
)
from repro.xmlstream.parse import parse_events
from repro.xpath import parse_query

from ..strategies import documents, random_supported_query

#: branching and descendant-heavy shapes exercising the record-machinery tier of the
#: fast path (path plans take the no-record tier; these cannot)
_BRANCHING_QUERIES = [
    "/a[b and c]",
    "//a[.//b and c]",
    "/a[c[.//e and f] and b > 5]",
    "//*[b and .//c > 2]",
    "/a[b and b]",
    "//a[.//a and b]",
]


def _register_random_queries(seed, count, banks):
    rng = random.Random(seed)
    queries = {}
    for index in range(count):
        roll = rng.random()
        if roll < 0.3:
            query = parse_query(rng.choice(_BRANCHING_QUERIES))
        elif roll < 0.45 and queries:
            # verbatim duplicate: exercises plan interning + shared fan-out
            query = parse_query(rng.choice(list(queries.values())).to_xpath())
        else:
            query = random_supported_query(rng, allow_wildcard=True)
        name = f"q{index}"
        queries[name] = query
        for bank in banks:
            bank.register(name, query)
    return queries


class TestMatchOnlyEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=8))
    def test_matched_sets_agree_on_random_inputs(self, document, seed, count):
        fast, stats, indexed = (MatchOnlyFilterBank(), CompiledFilterBank(),
                                FilterBank())
        _register_random_queries(seed, count, (fast, stats, indexed))
        fast_result = fast.filter_document(document)
        stats_result = stats.filter_document(document)
        indexed_result = indexed.filter_document(document)
        assert fast_result.matched == stats_result.matched == indexed_result.matched
        assert fast_result.per_query_stats == {}

    @settings(max_examples=30, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=6))
    def test_filter_many_and_reuse_agree(self, document, seed, count):
        """Back-to-back documents through one fast bank (lazy per-document init must
        fully isolate documents) equal the stats engine's batch mode."""
        fast, stats = MatchOnlyFilterBank(), CompiledFilterBank()
        _register_random_queries(seed, count, (fast, stats))
        fast_batch = fast.filter_many([document, document])
        stats_batch = stats.filter_many([document, document])
        assert [r.matched for r in fast_batch] == [r.matched for r in stats_batch]

    def test_shared_prefix_workload_matches(self):
        fast, stats = MatchOnlyFilterBank(), CompiledFilterBank()
        subscriptions = shared_prefix_subscriptions(
            60, branching=2, suffix_depth=3, descendant_fraction=0.3,
            wildcard_fraction=0.2, seed=21)
        for index, text in enumerate(subscriptions):
            fast.register(f"q{index}", parse_query(text))
            stats.register(f"q{index}", parse_query(text))
        for recursion in (1, 3):
            feed = shared_prefix_feed(25, branching=2, suffix_depth=3,
                                      recursion=recursion, seed=22)
            assert fast.filter_document(feed).matched == \
                stats.filter_document(feed).matched

    def test_truncated_stream_raises_and_fast_bank_stays_usable(self):
        from repro.xmlstream.events import StartDocument, StartElement

        bank = MatchOnlyFilterBank()
        bank.register("q", parse_query("/a[b > 2]"))
        with pytest.raises(ValueError):
            bank.filter_events([StartDocument(), StartElement("a")])
        assert bank.filter_events(parse_events("<a><b>3</b></a>")).matched == ["q"]


class TestPlanInterning:
    def test_equal_queries_share_one_plan(self):
        bank = CompiledFilterBank()
        bank.register("x", parse_query("/a/b[value > 3]"))
        bank.register("y", parse_query("/a/b[value > 3]"))
        bank.register("z", parse_query("/a/b[value > 4]"))
        assert len(bank) == 3
        assert bank.distinct_plan_count() == 2
        assert bank.plan("x") is bank.plan("y")
        assert bank.plan("x") is not bank.plan("z")
        result = bank.filter_events(parse_events("<a><b><value>5</value></b></a>"))
        assert result.matched == ["x", "y", "z"]
        # shared runtimes fan identical statistics out to every duplicate name
        assert result.per_query_stats["x"] == result.per_query_stats["y"]

    def test_unregistering_one_duplicate_keeps_the_plan_alive(self):
        bank = CompiledFilterBank()
        bank.register("x", parse_query("/a/b"))
        bank.register("y", parse_query("/a/b"))
        bank.trie_size()  # materialize the trie so unregister exercises splicing
        bank.unregister("x")
        assert bank.distinct_plan_count() == 1
        assert bank.filter_events(parse_events("<a><b/></a>")).matched == ["y"]
        bank.unregister("y")
        assert bank.distinct_plan_count() == 0
        assert bank.trie_size() == 0


def _apply_ops(bank, operations):
    for op in operations:
        if op[0] == "register":
            bank.register(op[1], parse_query(op[2]))
        else:
            bank.unregister(op[1])


class TestIncrementalTrieMaintenance:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           ops=st.integers(min_value=1, max_value=60),
           warm_after=st.integers(min_value=0, max_value=10),
           stats=st.booleans())
    def test_spliced_trie_equals_rebuilt_and_fresh(self, seed, ops, warm_after, stats):
        """After any churn sequence, the incrementally maintained trie has the same
        size and produces the same results as (a) the same bank after a forced
        from-scratch rebuild and (b) a fresh bank registered with the final state.

        ``warm_after`` materializes the trie mid-sequence so the remaining ops run
        through the incremental splice (before materialization they only mutate the
        plan table); ``stats`` covers both sub-slot layouts (the match-only layout
        registers only path-plan leaves on the trie).
        """
        operations = subscription_churn(
            ops, branching=2, suffix_depth=2, duplication=0.4,
            unregister_fraction=0.45, descendant_fraction=0.3,
            wildcard_fraction=0.2, seed=seed)
        churned = CompiledFilterBank(stats=stats)
        for index, op in enumerate(operations):
            if index == warm_after:
                churned.trie_size()  # builds the trie; later ops splice
            _apply_ops(churned, operations[index:index + 1])
        fresh = CompiledFilterBank(stats=stats)
        for name in churned.subscriptions():
            fresh.register(name, churned.query(name))
        assert churned.trie_size() == fresh.trie_size()
        document = shared_prefix_feed(8, branching=2, suffix_depth=2,
                                      recursion=2, seed=seed % 1000)
        churned_result = churned.filter_document(document)
        fresh_result = fresh.filter_document(document)
        assert churned_result.matched == fresh_result.matched
        assert churned_result.per_query_stats == fresh_result.per_query_stats
        size_before = churned.trie_size()
        churned.rebuild_trie()
        assert churned.trie_size() == size_before
        rebuilt_result = churned.filter_document(document)
        assert rebuilt_result.matched == churned_result.matched
        assert rebuilt_result.per_query_stats == churned_result.per_query_stats

    def test_splice_out_prunes_shared_chains_conservatively(self):
        bank = CompiledFilterBank()
        bank.register("long", parse_query("/a/b/c/d"))
        bank.register("short", parse_query("/a/b"))
        bank.trie_size()
        bank.unregister("long")
        # the shared /a/b prefix must survive; only /c/d may be pruned
        assert bank.trie_size() == 2
        assert bank.filter_events(parse_events("<a><b/></a>")).matched == ["short"]
        bank.register("long2", parse_query("/a/b/c/d"))
        assert bank.trie_size() == 4
        result = bank.filter_events(parse_events("<a><b><c><d/></c></b></a>"))
        assert result.matched == ["short", "long2"]


class TestShardedBank:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    @pytest.mark.parametrize("stats", [False, True])
    def test_sharded_results_equal_single_process(self, shards, stats):
        subscriptions = shared_prefix_subscriptions(
            30, branching=2, suffix_depth=3, descendant_fraction=0.2,
            wildcard_fraction=0.1, seed=7)
        reference = CompiledFilterBank(stats=stats)
        for index, text in enumerate(subscriptions):
            reference.register(f"q{index}", parse_query(text))
        feeds = [shared_prefix_feed(12, branching=2, suffix_depth=3,
                                    recursion=recursion, seed=8)
                 for recursion in (1, 2)]
        with ShardedFilterBank(shards, stats=stats) as sharded:
            for index, text in enumerate(subscriptions):
                sharded.register(f"q{index}", parse_query(text))
            for feed in feeds:
                expected = reference.filter_document(feed)
                got = sharded.filter_document(feed)
                assert got.matched == expected.matched
                if stats:
                    assert got.per_query_stats == expected.per_query_stats
                else:
                    assert got.per_query_stats == {}
            # churn against live workers, then filter again
            sharded.unregister("q0")
            sharded.register("q0b", parse_query(subscriptions[0]))
            reference.unregister("q0")
            reference.register("q0b", parse_query(subscriptions[0]))
            expected = reference.filter_document(feeds[0])
            assert sharded.filter_document(feeds[0]).matched == expected.matched

    def test_sharded_random_banks_agree(self):
        rng_seeds = [3, 11, 42]
        for seed in rng_seeds:
            reference = MatchOnlyFilterBank()
            with ShardedFilterBank(2) as sharded:
                _register_random_queries(seed, 10, (reference, sharded))
                document = shared_prefix_feed(6, branching=2, suffix_depth=2, seed=seed)
                assert sharded.filter_document(document).matched == \
                    reference.filter_document(document).matched

    def test_filter_many_and_errors(self):
        with ShardedFilterBank(2) as sharded:
            sharded.register("q", parse_query("/a[b > 2]"))
            documents = [parse_events("<a><b>3</b></a>"),
                         parse_events("<a><b>1</b></a>")]
            results = sharded.filter_many(documents)
            assert [r.matched for r in results] == [["q"], []]
            from repro.xmlstream.events import StartDocument, StartElement
            with pytest.raises(ValueError):
                sharded.filter_events([StartDocument(), StartElement("a")])
            # the bank stays usable after a truncated stream
            assert sharded.filter_events(
                parse_events("<a><b>3</b></a>")).matched == ["q"]

    def test_parent_side_tokenizer_failure_leaves_bank_usable(self):
        """A parse error raised in the *parent's* tokenizer mid-broadcast must not
        desynchronize the workers: the broadcast is terminated, the stale replies
        drained, and the next filtering call works."""
        with ShardedFilterBank(2) as sharded:
            sharded.register("q", parse_query("/a[b > 2]"))
            with pytest.raises(Exception):
                sharded.filter_stream([b"<a><b>3</b></wrong>"])
            for _ in range(2):
                assert sharded.filter_text("<a><b>3</b></a>").matched == ["q"]

    def test_duplicate_names_and_validation_raise_in_parent(self):
        from repro.core import UnsupportedQueryError

        with ShardedFilterBank(2) as sharded:
            sharded.register("q", parse_query("/a"))
            with pytest.raises(ValueError):
                sharded.register("q", parse_query("/b"))
            with pytest.raises(UnsupportedQueryError):
                sharded.register("bad", parse_query("/a[b or c]"))
            with pytest.raises(KeyError):
                sharded.unregister("missing")
            assert sharded.subscriptions() == ["q"]
