"""Property tests: the compiled prefix-trie engine is indistinguishable from the
interpreted engines.

:class:`~repro.core.CompiledFilterBank` shares prefix work across subscriptions and
runs per-query state on flat compiled plans; :class:`~repro.core.FilterBank` (PR 1)
dispatches interpreted filters by label; :class:`~repro.baselines.NaiveFilterBank`
feeds every event to every filter.  On random documents and random query banks —
including wildcard node tests and overlapping descendant axes, where several candidate
matches of one query node are open at once — the three must report identical matched
sets *and* identical full per-query :class:`~repro.core.FilterStatistics`.  The
statistics equality is the strong claim: it certifies that trie sharing, fire-point
dispatch and the skipped-window high-water accounting lose nothing of the Section 8
space-accounting model.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveFilterBank
from repro.core import CompiledFilterBank, FilterBank, UnsupportedQueryError
from repro.core.compile import AX_CHILD, AX_DESC, compile_query
from repro.workloads import shared_prefix_feed, shared_prefix_subscriptions
from repro.xmlstream.parse import parse_events
from repro.xmlstream.serialize import serialize_document
from repro.xpath import parse_query

from ..strategies import documents, random_supported_query

#: descendant-heavy and wildcard-heavy shapes that stress trie sharing corners:
#: nested candidate matches of one node, wildcard fan-out, self-overlapping paths
_OVERLAP_QUERIES = [
    "//a//a",
    "/a//a[b]",
    "//*",
    "/*[b]",
    "/a/*/c",
    "//*[d > 2]",
    "//a[.//b and c]",
    "//a[.//a]",
    "//b[.//b > 2 and c]",
]


def _register_random_queries(seed: int, count: int):
    rng = random.Random(seed)
    compiled, indexed, naive = CompiledFilterBank(), FilterBank(), NaiveFilterBank()
    queries = {}
    for index in range(count):
        if rng.random() < 0.25:
            query = parse_query(rng.choice(_OVERLAP_QUERIES))
        else:
            query = random_supported_query(rng, allow_wildcard=True)
        name = f"q{index}"
        queries[name] = query
        compiled.register(name, query)
        indexed.register(name, query)
        naive.register(name, query)
    return compiled, indexed, naive, queries


class TestCompiledEngineEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=8))
    def test_matched_sets_and_stats_agree_on_random_inputs(self, document, seed, count):
        compiled, indexed, naive, queries = _register_random_queries(seed, count)
        compiled_result = compiled.filter_document(document)
        indexed_result = indexed.filter_document(document)
        naive_result = naive.filter_document(document)
        assert compiled_result.matched == indexed_result.matched == naive_result.matched
        for name in queries:
            assert compiled_result.per_query_stats[name] == \
                indexed_result.per_query_stats[name] == \
                naive_result.per_query_stats[name]

    @settings(max_examples=30, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=6))
    def test_filter_many_agrees_including_statistics(self, document, seed, count):
        compiled, indexed, _naive, queries = _register_random_queries(seed, count)
        compiled_batch = compiled.filter_many([document, document])
        indexed_batch = indexed.filter_many([document, document])
        assert [r.matched for r in compiled_batch] == \
            [r.matched for r in indexed_batch]
        for compiled_result, indexed_result in zip(compiled_batch, indexed_batch):
            for name in queries:
                assert compiled_result.per_query_stats[name] == \
                    indexed_result.per_query_stats[name]

    @settings(max_examples=30, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           chunk_size=st.integers(min_value=1, max_value=17))
    def test_zero_copy_pipelines_agree_with_event_dispatch(self, document, seed,
                                                           chunk_size):
        """filter_stream (chunked bytes) and filter_text (one string) run the token
        pipeline; both must equal interpreted filtering of the same parsed stream."""
        compiled, indexed, _naive, queries = _register_random_queries(seed, count=4)
        text = serialize_document(document)
        events = parse_events(text)
        data = text.encode()
        chunks = [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]
        reference = indexed.filter_events(events)
        streamed = compiled.filter_stream(chunks)
        texted = compiled.filter_text(text)
        assert reference.matched == streamed.matched == texted.matched
        for name in queries:
            assert reference.per_query_stats[name] == \
                streamed.per_query_stats[name] == texted.per_query_stats[name]

    def test_shared_prefix_workload_statistics_equality(self):
        compiled, indexed = CompiledFilterBank(), FilterBank()
        subscriptions = shared_prefix_subscriptions(
            40, branching=2, suffix_depth=3, descendant_fraction=0.3,
            wildcard_fraction=0.2, seed=21)
        for index, text in enumerate(subscriptions):
            compiled.register(f"q{index}", parse_query(text))
            indexed.register(f"q{index}", parse_query(text))
        for recursion in (1, 3):
            feed = shared_prefix_feed(25, branching=2, suffix_depth=3,
                                      recursion=recursion, seed=22)
            compiled_result = compiled.filter_document(feed)
            indexed_result = indexed.filter_document(feed)
            assert compiled_result.matched == indexed_result.matched
            assert compiled_result.per_query_stats == indexed_result.per_query_stats


class TestCompiledBankBehavior:
    def test_register_validates_and_rejects_duplicates(self):
        bank = CompiledFilterBank()
        bank.register("q", parse_query("/a[b > 1]"))
        try:
            bank.register("q", parse_query("/a"))
            raise AssertionError("duplicate registration accepted")
        except ValueError:
            pass
        try:
            bank.register("bad", parse_query("/a[b or c]"))
            raise AssertionError("disjunctive query accepted")
        except UnsupportedQueryError:
            pass
        assert bank.subscriptions() == ["q"]

    def test_unregister_rebuilds_the_trie(self):
        bank = CompiledFilterBank()
        bank.register("q0", parse_query("/a/b"))
        bank.register("q1", parse_query("/a/c"))
        size_before = bank.trie_size()
        bank.unregister("q1")
        assert bank.trie_size() < size_before
        document = parse_events("<a><b/><c/></a>")
        assert bank.filter_events(document).matched == ["q0"]

    def test_truncated_stream_raises_and_bank_stays_usable(self):
        from repro.xmlstream.events import StartDocument, StartElement

        bank = CompiledFilterBank()
        bank.register("q", parse_query("/a[b > 2]"))
        try:
            bank.filter_events([StartDocument(), StartElement("a")])
            raise AssertionError("truncated stream accepted")
        except ValueError:
            pass
        result = bank.filter_events(parse_events("<a><b>3</b></a>"))
        assert result.matched == ["q"]


class TestCompiledPlans:
    def test_plan_lowers_axes_names_and_children(self):
        plan = compile_query(parse_query("/a[c > 5]//b"))
        # slots are pre-order: root, a, c, b (predicate child precedes the successor
        # only if the parser attached it first; assert via the arrays themselves)
        assert plan.slot_count == 4
        assert plan.axis[0] == AX_CHILD and plan.parent[0] == 0
        by_ntest = {plan.ntests[slot]: slot for slot in range(1, plan.slot_count)}
        assert plan.axis[by_ntest["a"]] == AX_CHILD
        assert plan.axis[by_ntest["b"]] == AX_DESC
        assert plan.parent[by_ntest["c"]] == by_ntest["a"]
        assert plan.root_children == (by_ntest["a"],)
        assert plan.is_leaf[by_ntest["c"]] and plan.is_leaf[by_ntest["b"]]
        # interned ids are dense and distinct
        ids = [plan.ntest_ids[slot] for slot in range(1, plan.slot_count)]
        assert sorted(ids) == [0, 1, 2]

    def test_leaf_truth_compilation(self):
        plan = compile_query(parse_query("/a[b > 5]"))
        truth = plan.truth[max(range(plan.slot_count),
                               key=lambda s: plan.ntests[s] == "b")]
        assert truth is not None
        assert truth("6") and not truth("5") and not truth("hello")
        universal = compile_query(parse_query("/a/b"))
        assert all(fn is None for fn in universal.truth)

    def test_prefix_sharing_collapses_common_steps(self):
        bank = CompiledFilterBank()
        subscriptions = shared_prefix_subscriptions(64, branching=2, suffix_depth=3,
                                                    seed=13)
        total_steps = 0
        for index, text in enumerate(subscriptions):
            query = parse_query(text)
            bank.register(f"q{index}", query)
            total_steps += query.size()
        # 2 prefix steps + a binary suffix trie of depth 3 (plus value leaves) is far
        # smaller than 64 unshared six-step chains
        assert bank.trie_size() <= 2 + (2 + 4 + 8) * 2
        assert bank.trie_size() < total_steps / 5
