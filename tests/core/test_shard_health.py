"""Worker-death detection and respawn on the sharded bank.

Before this PR a killed shard worker surfaced only as a ``RuntimeError`` on the
*next* filtering call, which then tore the whole bank down.  The health probes let
a supervisor detect death *between* documents and respawn only the dead shard, with
its registrations replayed from the parent-side records.
"""

import os
import signal
import time

import pytest

from repro.core import MatchOnlyFilterBank, ShardedFilterBank
from repro.workloads import shared_prefix_feed, shared_prefix_subscriptions
from repro.xpath import parse_query


def _register(bank, count=12):
    for index, text in enumerate(shared_prefix_subscriptions(count, seed=5)):
        bank.register(f"q{index}", parse_query(text))


def _wait_dead(bank, shard, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if bank.worker_status()[shard]["alive"] is False:
            return
        time.sleep(0.01)
    raise AssertionError(f"shard {shard} never observed dead")  # pragma: no cover


class TestWorkerStatus:
    def test_status_before_and_after_spawn(self):
        with ShardedFilterBank(2) as bank:
            _register(bank)
            for record in bank.worker_status():
                assert record["spawned"] is False
                assert record["alive"] is None
                assert record["pid"] is None
            # round-robin: 12 subscriptions over 2 shards
            assert [r["subscriptions"] for r in bank.worker_status()] == [6, 6]
            bank.start()
            for record in bank.worker_status():
                assert record["spawned"] and record["alive"]
                assert isinstance(record["pid"], int)

    def test_ensure_healthy_is_a_noop_without_workers_or_deaths(self):
        with ShardedFilterBank(2) as bank:
            _register(bank)
            assert bank.ensure_healthy() == []  # nothing spawned yet
            bank.start()
            assert bank.ensure_healthy() == []  # everyone alive


class TestRespawn:
    def test_killed_worker_is_detected_and_respawned_between_documents(self):
        document = shared_prefix_feed(6, seed=6)
        with ShardedFilterBank(2) as bank:
            _register(bank)
            single = MatchOnlyFilterBank()
            _register(single)
            expected = single.filter_document(document).matched

            assert bank.filter_document(document).matched == expected
            victim = bank.worker_status()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            _wait_dead(bank, 0)

            respawned = bank.ensure_healthy()
            assert respawned == [0]
            status = bank.worker_status()
            assert all(record["alive"] for record in status)
            assert status[0]["pid"] != victim
            # the respawned shard replayed its registrations: results are intact
            assert bank.filter_document(document).matched == expected
            # healthy shard kept its original process
            assert bank.ensure_healthy() == []

    def test_all_workers_killed_all_respawned(self):
        document = shared_prefix_feed(4, seed=7)
        with ShardedFilterBank(3) as bank:
            _register(bank, count=9)
            baseline = bank.filter_document(document).matched
            pids = [record["pid"] for record in bank.worker_status()]
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            for shard in range(3):
                _wait_dead(bank, shard)
            assert bank.ensure_healthy() == [0, 1, 2]
            assert bank.filter_document(document).matched == baseline

    def test_unprobed_death_still_raises_on_submit(self):
        """Without a probe, the old behavior is preserved: the next filtering
        call raises (and resets the bank) rather than hanging."""
        document = shared_prefix_feed(4, seed=8)
        with ShardedFilterBank(2) as bank:
            _register(bank)
            baseline = bank.filter_document(document).matched
            os.kill(bank.worker_status()[1]["pid"], signal.SIGKILL)
            _wait_dead(bank, 1)
            with pytest.raises(RuntimeError, match="died"):
                bank.filter_document(document)
            # registrations replay on the next spawn: the bank stays usable
            assert bank.filter_document(document).matched == baseline

    def test_churn_after_respawn_lands_on_the_new_worker(self):
        """Registrations made after a respawn must reach the replacement
        process, and unregistering a pre-death subscription must too."""
        document = shared_prefix_feed(6, seed=9)
        with ShardedFilterBank(2) as bank:
            _register(bank, count=4)
            bank.start()
            os.kill(bank.worker_status()[0]["pid"], signal.SIGKILL)
            _wait_dead(bank, 0)
            assert bank.ensure_healthy() == [0]
            bank.register("late", parse_query("/catalog/product/s0"))
            bank.unregister("q0")  # owned by shard 0 (round-robin)
            single = MatchOnlyFilterBank()
            for name in bank.subscriptions():
                single.register(name, bank_query(bank, name))
            assert bank.filter_document(document).matched == \
                single.filter_document(document).matched


def bank_query(bank, name):
    """Re-parse a sharded bank's stored canonical text (it has no query objects)."""
    return parse_query(bank.subscription_queries()[name])
