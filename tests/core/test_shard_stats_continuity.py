"""Cumulative statistics continuity across shard-worker death and respawn.

Before this PR the per-query statistics a sharded bank reported came only from
the worker that filtered the current document: killing a worker (and replaying
its registrations into a fresh process) silently reset its counters, so any
monitoring built on stats-mode totals saw them jump backwards after a respawn.
The totals now live in the parent (:meth:`ShardedFilterBank.cumulative_stats`)
and must be strictly monotonic across worker kills, respawns, and churn.
"""

import os
import signal
import time

from repro.core import ShardedFilterBank
from repro.workloads import shared_prefix_feed, shared_prefix_subscriptions
from repro.xpath import parse_query


def _register(bank, count=8):
    for index, text in enumerate(shared_prefix_subscriptions(count, seed=5)):
        bank.register(f"q{index}", parse_query(text))


def _wait_dead(bank, shard, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if bank.worker_status()[shard]["alive"] is False:
            return
        time.sleep(0.01)
    raise AssertionError(f"shard {shard} never observed dead")  # pragma: no cover

COUNTERS = ("events", "candidate_matches", "real_match_evaluations")
PEAKS = ("peak_frontier_records", "peak_buffer_chars", "peak_memory_bits",
         "max_level")


class TestCumulativeStats:
    def test_totals_accumulate_across_documents(self):
        document = shared_prefix_feed(6, seed=6)
        with ShardedFilterBank(2, stats=True) as bank:
            _register(bank)
            bank.filter_document(document)
            once = bank.cumulative_stats()
            assert bank.documents_filtered == 1
            assert once and all(s.events > 0 for s in once.values())
            bank.filter_document(document)
            twice = bank.cumulative_stats()
            assert bank.documents_filtered == 2
            for name, stats in twice.items():
                # counters sum per document; peaks are identical re-runs
                for field in COUNTERS:
                    assert getattr(stats, field) == \
                        2 * getattr(once[name], field)
                for field in PEAKS:
                    assert getattr(stats, field) == \
                        getattr(once[name], field)

    def test_totals_survive_a_mid_churn_worker_kill(self):
        """The regression: kill a worker between documents, respawn it, and
        keep filtering — every cumulative counter must keep growing from its
        pre-death value, never reset with the replacement process."""
        document = shared_prefix_feed(6, seed=7)
        with ShardedFilterBank(2, stats=True) as bank:
            _register(bank)
            for _ in range(3):
                bank.filter_document(document)
            before = bank.cumulative_stats()
            assert bank.documents_filtered == 3

            os.kill(bank.worker_status()[0]["pid"], signal.SIGKILL)
            _wait_dead(bank, 0)
            assert bank.ensure_healthy() == [0]
            # churn while the replacement is fresh: totals must still carry
            bank.register("late", parse_query("/catalog/product/s0"))
            bank.unregister("q0")

            for _ in range(2):
                bank.filter_document(document)
            after = bank.cumulative_stats()
            assert bank.documents_filtered == 5
            # the unregistered query's history is retained, frozen
            assert after["q0"] == before["q0"]
            for name, stats in before.items():
                if name == "q0":
                    continue
                # every event-count keeps strictly growing; counters that can
                # legitimately be zero for the workload must never shrink
                assert after[name].events > stats.events
                for field in COUNTERS:
                    assert getattr(after[name], field) >= getattr(stats, field)
                for field in PEAKS:
                    assert getattr(after[name], field) >= getattr(stats, field)
            # the churn-added query joined the totals from its first document
            assert after["late"].events > 0

    def test_match_only_mode_reports_no_totals(self):
        document = shared_prefix_feed(4, seed=8)
        with ShardedFilterBank(2) as bank:
            _register(bank)
            bank.filter_document(document)
            assert bank.cumulative_stats() == {}
            assert bank.documents_filtered == 0

    def test_returned_stats_are_copies(self):
        document = shared_prefix_feed(4, seed=9)
        with ShardedFilterBank(2, stats=True) as bank:
            _register(bank)
            bank.filter_document(document)
            grabbed = bank.cumulative_stats()
            next(iter(grabbed.values())).events = -1
            assert all(s.events >= 0 for s in bank.cumulative_stats().values())
