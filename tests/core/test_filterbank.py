"""Tests for the multi-subscription filter bank and the child-axis-removal ablation."""

import pytest

from repro.core import FilterBank, StreamingFilter, UnsupportedQueryError
from repro.semantics import bool_eval
from repro.workloads import (
    auction_site,
    book_catalog,
    dissemination_queries,
    nested_sections,
)
from repro.xmlstream import parse_document, parse_events
from repro.xpath import parse_query


class TestFilterBank:
    def test_register_and_list(self):
        bank = FilterBank()
        bank.register("cheap-books", parse_query("/catalog/book[price < 20]"))
        bank.register("titled-books", parse_query("/catalog/book[title]"))
        assert bank.subscriptions() == ["cheap-books", "titled-books"]
        assert len(bank) == 2
        assert bank.query("cheap-books").to_xpath() == "/catalog/book[price < 20]"

    def test_duplicate_name_rejected(self):
        bank = FilterBank()
        bank.register("q", parse_query("/a"))
        with pytest.raises(ValueError):
            bank.register("q", parse_query("/b"))

    def test_unsupported_query_rejected_at_registration(self):
        bank = FilterBank()
        with pytest.raises(UnsupportedQueryError):
            bank.register("bad", parse_query("/a[b or c]"))

    def test_unregister(self):
        bank = FilterBank()
        bank.register("q", parse_query("/a"))
        bank.unregister("q")
        assert bank.subscriptions() == []
        with pytest.raises(KeyError):
            bank.unregister("q")

    def test_matching_subscriptions_for_a_document(self):
        bank = FilterBank()
        bank.register("cheap", parse_query("/catalog/book[price < 20]"))
        bank.register("expensive", parse_query("/catalog/book[price > 100]"))
        bank.register("titled", parse_query("/catalog/book[title]"))
        document = parse_document(
            "<catalog><book><title>t</title><price>12</price></book></catalog>"
        )
        result = bank.filter_document(document)
        assert sorted(result.matched) == ["cheap", "titled"]

    def test_results_agree_with_reference_on_datasets(self):
        bank = FilterBank()
        queries = {f"q{i}": parse_query(text)
                   for i, text in enumerate(dissemination_queries())}
        for name, query in queries.items():
            bank.register(name, query)
        for document in (book_catalog(10), auction_site(5), nested_sections(4)):
            result = bank.filter_document(document)
            expected = sorted(name for name, query in queries.items()
                              if bool_eval(query, document))
            assert sorted(result.matched) == expected

    def test_incomplete_stream_raises(self):
        bank = FilterBank()
        bank.register("q", parse_query("/a"))
        with pytest.raises(ValueError):
            bank.filter_events(parse_events("<a/>")[:-1])

    def test_truncated_stream_does_not_corrupt_later_runs(self):
        # regression: the ValueError used to leave every filter mid-document, so the
        # next filter_events call saw a stale frontier and wrong match decisions
        bank = FilterBank()
        bank.register("a", parse_query("/a[b]"))
        bank.register("c", parse_query("//c"))
        with pytest.raises(ValueError):
            bank.filter_events(parse_events("<a><b/></a>")[:-1])
        first = bank.filter_document(parse_document("<a><b/></a>"))
        second = bank.filter_document(parse_document("<c/>"))
        assert first.matched == ["a"]
        assert second.matched == ["c"]

    def test_filter_many_matches_per_document_filtering(self):
        bank = FilterBank()
        for index, text in enumerate(dissemination_queries()):
            bank.register(f"q{index}", parse_query(text))
        docs = [book_catalog(10), auction_site(5), nested_sections(4)]
        batched = bank.filter_many(docs)
        assert [sorted(result.matched) for result in batched] == \
            [sorted(bank.filter_document(doc).matched) for doc in docs]

    def test_filter_many_accepts_event_iterables(self):
        bank = FilterBank()
        bank.register("q", parse_query("/a[b]"))
        results = bank.filter_many([parse_events("<a><b/></a>"),
                                    parse_events("<a><c/></a>")])
        assert [result.matched for result in results] == [["q"], []]

    def test_filter_stream_chunked_input(self):
        bank = FilterBank()
        bank.register("cheap", parse_query("/catalog/book[price < 20]"))
        bank.register("titled", parse_query("/catalog/book[title]"))
        text = ("<catalog><book><title>t</title><price>12</price></book></catalog>")
        chunks = [text[i:i + 5].encode("utf-8") for i in range(0, len(text), 5)]
        result = bank.filter_stream(chunks)
        assert sorted(result.matched) == ["cheap", "titled"]

    def test_filter_stream_agrees_with_filter_document(self):
        from repro.xmlstream import serialize_document
        bank = FilterBank()
        for index, text in enumerate(dissemination_queries()):
            bank.register(f"q{index}", parse_query(text))
        document = auction_site(6, seed=11)
        serialized = serialize_document(document)
        chunks = [serialized[i:i + 13] for i in range(0, len(serialized), 13)]
        assert sorted(bank.filter_stream(chunks).matched) == \
            sorted(bank.filter_document(document).matched)

    def test_index_fanout_is_label_selective(self):
        bank = FilterBank()
        bank.register("books", parse_query("/catalog/book[price < 20]"))
        bank.register("auctions", parse_query("//open_auction[bidder]"))
        bank.register("wild", parse_query("/a/*"))
        assert bank.index_fanout("price") == 2  # "books" label + element wildcard
        assert bank.index_fanout("open_auction") == 2  # "auctions" label + wildcard
        assert bank.index_fanout("unrelated") == 1  # element wildcard only
        assert bank.index_fanout("@id") == 0  # no attribute tests registered

    def test_memory_statistics_are_aggregated(self):
        bank = FilterBank()
        bank.register("one", parse_query("/catalog/book[price < 20]"))
        bank.register("two", parse_query("//book[year > 2000]"))
        result = bank.filter_document(book_catalog(30))
        assert set(result.per_query_stats) == {"one", "two"}
        assert result.total_peak_memory_bits == sum(
            stats.peak_memory_bits for stats in result.per_query_stats.values()
        )
        assert result.total_peak_frontier_records >= 2

    def test_bank_is_reusable_across_documents(self):
        bank = FilterBank()
        bank.register("cheap", parse_query("/catalog/book[price < 20]"))
        first = bank.filter_document(book_catalog(10, seed=1))
        second = bank.filter_document(parse_document("<catalog/>"))
        assert first.matched == ["cheap"]
        assert second.matched == []


class TestEarlyDecision:
    def test_outcome_so_far_turns_true_mid_document(self):
        streaming_filter = StreamingFilter(parse_query("//c"))
        events = parse_events("<top><c/><d/></top>")
        for event in events[:4]:  # <$> <top> <c> </c>
            streaming_filter.process_event(event)
        assert streaming_filter.outcome_so_far is True
        outcome = None
        for event in events[4:]:
            outcome = streaming_filter.process_event(event)
        assert outcome is True

    def test_outcome_so_far_stays_undecided_without_a_match(self):
        streaming_filter = StreamingFilter(parse_query("//e"))
        for event in parse_events("<top><c/><d/></top>"):
            assert streaming_filter.outcome_so_far is None
            streaming_filter.process_event(event)

    def test_outcome_so_far_with_child_axis_predicate(self):
        streaming_filter = StreamingFilter(parse_query("/a[b]"))
        events = parse_events("<a><b/></a><x/>")
        for event in events[:5]:  # <$> <a> <b> </b> </a>
            streaming_filter.process_event(event)
        assert streaming_filter.outcome_so_far is True

    def test_filter_many_stops_dispatching_once_decided(self):
        bank = FilterBank()
        bank.register("q", parse_query("//c"))
        streaming_filter = bank._subs["q"].filter
        seen = []
        original = streaming_filter.process_event
        streaming_filter.process_event = \
            lambda event: (seen.append(event.kind), original(event))[1]
        events = parse_events("<top><c/><c/><c/></top>")
        result = bank.filter_many([events])[0]
        # decided at the first </c>; the two later <c/> elements and the document
        # close are never dispatched to the filter
        assert result.matched == ["q"]
        assert seen == ["startDocument", "startElement", "endElement"]
        streaming_filter.process_event = original
        # the early-unregistered filter was reset: the bank keeps working
        assert bank.filter_document(parse_document("<top><d/></top>")).matched == []
        assert bank.filter_document(parse_document("<top><c/></top>")).matched == ["q"]


class TestChildAxisRemovalAblation:
    CASES = [
        ("/a[b and c]", "<a><b/><c/></a>"),
        ("/a[c[.//e and f] and b > 5]", "<a><c><e/><f/></c><b>6</b></a>"),
        ("//a[b and c]", "<a><a><b/><c/></a></a>"),
        ("/a[b[c[d]]]", "<a><b><c><d/></c></b></a>"),
        ("/a[b[c[d]]]", "<a><b><c><x/></c></b></a>"),
    ]

    @pytest.mark.parametrize("query_text,document_text", CASES)
    def test_ablation_preserves_correctness(self, query_text, document_text):
        query = parse_query(query_text)
        document = parse_document(document_text)
        optimized = StreamingFilter(query).run_document(document)
        unoptimized = StreamingFilter(
            query, remove_child_axis_records=False
        ).run_document(document)
        assert optimized == unoptimized == bool_eval(query, document)

    def test_removal_reduces_peak_frontier_on_nested_predicates(self):
        """The lines 10-11 optimization is what keeps the frontier at FS(Q) instead of
        the whole root-to-leaf path of the query."""
        query = parse_query("/a[b[c[d[e]]]]")
        document = parse_document("<a><b><c><d><e/></d></c></b></a>")
        optimized = StreamingFilter(query)
        optimized.run_document(document)
        unoptimized = StreamingFilter(query, remove_child_axis_records=False)
        unoptimized.run_document(document)
        assert optimized.stats.peak_frontier_records < \
            unoptimized.stats.peak_frontier_records
