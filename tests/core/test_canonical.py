"""Tests for canonical documents (Section 6.4) and the canonical matching."""

import pytest

from repro.core import (
    CanonicalDocumentError,
    auxiliary_name,
    build_canonical_document,
    canonical_matching_is_unique,
)
from repro.semantics import bool_eval, count_matchings, has_matching
from repro.xpath import parse_query, truth_set


REDUNDANCY_FREE_QUERIES = [
    "/a[c[.//e and f] and b > 5]",
    "//a[b and c]",
    "/a/b",
    "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
    "//d[f and a[b and c]]",
    "/a[b > 12 and .//b < 3]",
    "/catalog/book[price < 20]",
]


class TestAuxiliaryName:
    def test_auxiliary_name_avoids_query_names(self):
        assert auxiliary_name(parse_query("/a/b")) == "Z"
        assert auxiliary_name(parse_query("/Z/b")) == "Z0"
        assert auxiliary_name(parse_query("/Z/Z0[Z1 and AUX]")) == "Z2"


class TestConstruction:
    def test_shadow_per_query_node(self):
        q = parse_query("/a[b and c]")
        canonical = build_canonical_document(q)
        for node in q.non_root_nodes():
            assert canonical.shadow(node).name == node.ntest

    def test_descendant_axis_inserts_artificial_chain(self):
        q = parse_query("/a[.//e and f]")
        canonical = build_canonical_document(q)
        e_node = [n for n in q.non_root_nodes() if n.ntest == "e"][0]
        shadow = canonical.shadow(e_node)
        # h = 0 wildcards, so the chain has h + 1 = 1 artificial node
        assert canonical.is_artificial(shadow.parent)
        assert shadow.parent.name == canonical.aux_name
        assert not canonical.is_artificial(shadow.parent.parent)

    def test_wildcard_chain_length_controls_artificial_chain(self):
        q = parse_query("/a[*/b and .//e]")
        canonical = build_canonical_document(q)
        e_node = [n for n in q.non_root_nodes() if n.ntest == "e"][0]
        shadow = canonical.shadow(e_node)
        chain = 0
        node = shadow.parent
        while canonical.is_artificial(node):
            chain += 1
            node = node.parent
        assert chain == q.max_wildcard_chain() + 1 == 2

    def test_wildcard_shadow_gets_auxiliary_name(self):
        q = parse_query("/a[*/b > 5]")
        canonical = build_canonical_document(q)
        star = [n for n in q.non_root_nodes() if n.is_wildcard()][0]
        assert canonical.shadow(star).name == canonical.aux_name

    def test_leaf_values_belong_to_truth_sets(self):
        q = parse_query("/a[*/b > 5 and c/b//d > 12 and .//d < 30]")
        canonical = build_canonical_document(q)
        for node in q.non_root_nodes():
            if node.is_leaf():
                value = canonical.shadow(node).string_value()
                assert truth_set(node).contains(value)

    def test_fig9_separating_values(self):
        """The first d's value must avoid the second d's truth set (Fig. 9)."""
        q = parse_query("/a[*/b > 5 and c/b//d > 12 and .//d < 30]")
        canonical = build_canonical_document(q)
        d_nodes = [n for n in q.non_root_nodes() if n.ntest == "d"]
        first_d, second_d = d_nodes
        first_value = canonical.shadow(first_d).string_value()
        assert float(first_value) > 12
        assert not truth_set(second_d).contains(first_value)

    def test_unsupported_query_raises(self):
        with pytest.raises(CanonicalDocumentError):
            build_canonical_document(parse_query("/a[b or c]"))
        with pytest.raises(CanonicalDocumentError):
            build_canonical_document(parse_query("/a[b = c]"))

    def test_non_strongly_subsumption_free_raises(self):
        with pytest.raises(CanonicalDocumentError):
            build_canonical_document(parse_query("/a[b > 5 and b > 6]"))
        with pytest.raises(CanonicalDocumentError):
            build_canonical_document(parse_query("/a[b and .//b]"))


class TestCanonicalMatching:
    @pytest.mark.parametrize("text", REDUNDANCY_FREE_QUERIES)
    def test_canonical_document_matches_query(self, text):
        """Lemma 6.11: the canonical matching is a matching, so the document matches."""
        query = parse_query(text)
        canonical = build_canonical_document(query)
        assert bool_eval(query, canonical.document)
        assert has_matching(query, canonical.document)

    @pytest.mark.parametrize("text", REDUNDANCY_FREE_QUERIES)
    def test_canonical_matching_is_unique(self, text):
        """Lemma 6.15: the canonical matching is the only matching."""
        query = parse_query(text)
        canonical = build_canonical_document(query)
        assert count_matchings(query, canonical.document) == 1
        assert canonical_matching_is_unique(canonical)

    def test_shadow_of_inverse_lookup(self):
        q = parse_query("/a[b and c]")
        canonical = build_canonical_document(q)
        b_node = [n for n in q.non_root_nodes() if n.ntest == "b"][0]
        assert canonical.shadow_of(canonical.shadow(b_node)) is b_node
        assert canonical.shadow_of(canonical.document.root) is q.root

    def test_proposition_616_no_descendant_matches(self):
        """Proposition 6.16: no proper descendant of SHADOW(u) matches u."""
        from repro.semantics import node_matches

        q = parse_query("//a[b and c]")
        canonical = build_canonical_document(q)
        a_node = [n for n in q.non_root_nodes() if n.ntest == "a"][0]
        shadow = canonical.shadow(a_node)
        for descendant in shadow.iter_descendants():
            if descendant.kind == "element":
                assert not node_matches(q, a_node, canonical.document, descendant)
