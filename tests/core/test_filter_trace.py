"""Tests reproducing the Fig. 22 example run of the filtering algorithm."""

from repro.core import query_frontier_size, trace_run
from repro.xmlstream import parse_document
from repro.xpath import parse_query

FIG22_QUERY = "/a[c[.//e and f] and b]"
FIG22_DOCUMENT = "<a><c><d/><e/><f/></c><b/><c/></a>"


class TestFig22Trace:
    def setup_method(self):
        self.query = parse_query(FIG22_QUERY)
        self.document = parse_document(FIG22_DOCUMENT)
        self.trace = trace_run(self.query, self.document)

    def test_final_decision_is_match(self):
        assert self.trace.final_root_matched() is True

    def test_one_entry_per_event(self):
        assert len(self.trace.entries) == len(self.document.events())

    def test_frontier_never_exceeds_query_frontier_size(self):
        """Fig. 22: 'As the frontier size is 3 for this query, there are at most 3
        tuples in the system.'"""
        assert self.trace.max_frontier_tuples() == query_frontier_size(self.query) == 3

    def test_unrelated_element_leaves_frontier_unchanged(self):
        """The startElement(d) event (event 3) only increments the level."""
        before = self.trace.entries[2]
        after = self.trace.entries[3]
        assert after.event_label == "startElement(d)"
        assert after.frontier_without_root() == before.frontier_without_root()
        assert after.level == before.level + 1

    def test_second_c_is_ignored_because_c_already_matched(self):
        """Event 12 in the figure: the second 'c' element does not reopen processing."""
        labels = [e.event_label for e in self.trace.entries]
        second_c_start = len(labels) - 1 - labels[::-1].index("startElement(c)")
        before = self.trace.entries[second_c_start - 1]
        after = self.trace.entries[second_c_start]
        assert after.frontier_without_root() == before.frontier_without_root()

    def test_e_and_f_matched_flags_flip_at_their_end_events(self):
        by_label = {}
        for entry in self.trace.entries:
            by_label.setdefault(entry.event_label, entry)
        after_e_end = by_label["endElement(e)"]
        assert (3, "e", True) in after_e_end.frontier_without_root()
        after_f_end = by_label["endElement(f)"]
        assert (3, "f", True) in after_f_end.frontier_without_root()

    def test_c_resolves_to_matched_at_its_end_event(self):
        by_label = {}
        for entry in self.trace.entries:
            by_label.setdefault(entry.event_label, entry)
        after_c_end = by_label["endElement(c)"]
        assert (2, "c", True) in after_c_end.frontier_without_root()

    def test_table_rendering_contains_all_events(self):
        table = self.trace.as_table()
        assert "startDocument()" in table
        assert "endDocument()" in table
        assert table.count("\n") == len(self.trace.entries)

    def test_trace_on_non_matching_document(self):
        document = parse_document("<a><c><e/></c><b/></a>")
        trace = trace_run(self.query, document)
        assert trace.final_root_matched() is False
