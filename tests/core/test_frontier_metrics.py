"""Tests for query/document frontiers and the document metrics of Theorem 8.8."""

from repro.core import (
    document_frontier,
    document_frontier_size,
    document_node_with_largest_frontier,
    document_depth,
    metrics_summary,
    path_recursion_depth,
    query_frontier,
    query_frontier_size,
    query_node_with_largest_frontier,
    recursion_depth,
    text_width,
)
from repro.xmlstream import parse_document
from repro.xpath import parse_query


class TestQueryFrontier:
    def test_fig3_frontier_size(self):
        """Fig. 3: the frontier of /a[c[.//e and f] and b > 5] has size 3 (at e)."""
        q = parse_query("/a[c[.//e and f] and b > 5]")
        assert query_frontier_size(q) == 3
        best = query_node_with_largest_frontier(q)
        assert best.ntest in ("e", "f")
        names = sorted(n.ntest for n in query_frontier(best))
        assert names == ["b", "e", "f"]

    def test_linear_query_frontier_is_one(self):
        assert query_frontier_size(parse_query("/a/b/c/d")) == 1

    def test_wide_conjunction_frontier(self):
        assert query_frontier_size(parse_query("/r[c0 and c1 and c2 and c3]")) == 4

    def test_frontier_is_at_most_query_size(self):
        for text in ("/a[b and c]/d", "//a[b[c] and d]", "/a[b and c[d and e]]"):
            q = parse_query(text)
            assert 1 <= query_frontier_size(q) <= q.size()

    def test_balanced_query_frontier(self):
        """A fan-out-2 depth-2 balanced query has frontier size fanout*depth - 1 = 3."""
        q = parse_query("/r[x[x1 and x2] and y[y1 and y2]]")
        assert query_frontier_size(q) == 3


class TestDocumentFrontier:
    def test_document_frontier_ignores_text(self):
        doc = parse_document("<a><b>text</b><c/></a>")
        assert document_frontier_size(doc) == 2

    def test_deep_chain_has_frontier_one(self):
        doc = parse_document("<a><b><c><d/></c></b></a>")
        assert document_frontier_size(doc) == 1

    def test_frontier_of_paper_document(self):
        doc = parse_document("<a><c><e/><f/></c><b>6</b></a>")
        assert document_frontier_size(doc) == 3
        node = document_node_with_largest_frontier(doc)
        assert node.name in ("e", "f")
        assert sorted(n.name for n in document_frontier(node)) == ["b", "e", "f"]


class TestRecursionDepth:
    def test_section_42_example(self):
        """If Q is //a[b and c] and D is <a><a><b/><c/></a></a>, the recursion depth of
        D w.r.t. the a node is 2."""
        q = parse_query("//a[b and c]")
        doc = parse_document("<a><b/><c/><a><b/><c/></a></a>")
        a_node = [n for n in q.non_root_nodes() if n.ntest == "a"][0]
        assert recursion_depth(q, doc, a_node) == 2

    def test_recursion_depth_zero_when_no_match(self):
        q = parse_query("//a[b]")
        doc = parse_document("<a><a/></a>")
        assert recursion_depth(q, doc) == 0

    def test_path_recursion_depth_definition_83(self):
        """Definition 8.3's example: //a[b] on <a><a/></a> has path recursion depth 2
        but recursion depth 0."""
        q = parse_query("//a[b]")
        doc = parse_document("<a><a/></a>")
        assert path_recursion_depth(q, doc) == 2
        assert recursion_depth(q, doc) == 0

    def test_recursion_depth_bounded_by_path_recursion_depth(self):
        q = parse_query("//a[b and c]")
        doc = parse_document("<a><b/><c/><a><b/><c/><a><b/></a></a></a>")
        assert recursion_depth(q, doc) <= path_recursion_depth(q, doc)

    def test_non_recursive_document(self):
        q = parse_query("//a[b]")
        doc = parse_document("<x><a><b/></a><a><b/></a></x>")
        assert path_recursion_depth(q, doc) == 1


class TestTextWidthAndSummary:
    def test_definition_84_example(self):
        """Definition 8.4's example: text width 5 via the 'madam' value."""
        q = parse_query("/a[b]")
        doc = parse_document("<a>dear<b>sir</b>or<b>madam</b></a>")
        assert text_width(q, doc) == 5

    def test_text_width_only_counts_path_matching_leaves(self):
        q = parse_query("/a[b]")
        doc = parse_document("<a><b>12</b><c>really-long-value</c></a>")
        assert text_width(q, doc) == 2

    def test_document_depth(self):
        assert document_depth(parse_document("<a><b><c/></b></a>")) == 3

    def test_metrics_summary_keys(self):
        q = parse_query("//a[b]")
        doc = parse_document("<a><b>12</b></a>")
        summary = metrics_summary(q, doc)
        assert summary["document_depth"] == 2
        assert summary["query_size"] == 2
        assert summary["path_recursion_depth"] == 1
        assert summary["text_width"] == 2
        assert summary["document_elements"] == 2
