"""Unit tests for the streaming filter algorithm (Section 8)."""

import pytest

from repro.core import (
    StreamingFilter,
    UnsupportedQueryError,
    filter_document,
    filter_with_statistics,
    query_frontier_size,
)
from repro.xmlstream import parse_document, parse_events
from repro.xpath import parse_query


class TestBasicFiltering:
    @pytest.mark.parametrize("query_text,document_text,expected", [
        ("/a", "<a/>", True),
        ("/a", "<b/>", False),
        ("/a/b", "<a><b/></a>", True),
        ("/a/b", "<a><c><b/></c></a>", False),
        ("//b", "<a><c><b/></c></a>", True),
        ("//b", "<a><c/></a>", False),
        ("/a[b]", "<a><b/></a>", True),
        ("/a[b]", "<a><c/></a>", False),
        ("/a[b and c]", "<a><b/><c/></a>", True),
        ("/a[b and c]", "<a><b/></a>", False),
        ("/a[b > 5]", "<a><b>6</b></a>", True),
        ("/a[b > 5]", "<a><b>5</b></a>", False),
        ("/a[b > 5]", "<a><b>1</b><b>9</b></a>", True),
        ("/a[b = \"north\"]", "<a><b>north</b></a>", True),
        ("/a[b = \"north\"]", "<a><b>south</b></a>", False),
        ("/a[c[.//e and f] and b > 5]", "<a><c><e/><f/></c><b>6</b></a>", True),
        ("/a[c[.//e and f] and b > 5]", "<a><c><e/><f/></c><b>4</b></a>", False),
        ("/a[c[.//e and f] and b > 5]", "<a><b>6</b><c><f/><x><e/></x></c></a>", True),
        ("/a[b[c > 5]]", "<a><b><c>7</c></b></a>", True),
        ("/a[b[c > 5]]", "<a><b><c>3</c></b></a>", False),
        ("/a/*/c", "<a><x><c/></x></a>", True),
        ("/a/*/c", "<a><c/></a>", False),
        ("/a[.//e]", "<a><x><y><e/></y></x></a>", True),
        ("/a[b > 5]/c", "<a><b>7</b><c/></a>", True),
        ("/a[b > 5]/c", "<a><b>7</b></a>", False),
        ("/catalog/book[price < 20]", "<catalog><book><price>12</price></book></catalog>", True),
        ("/a[@id = 7]", '<a id="7">x</a>', True),
        ("/a[@id = 7]", '<a id="8">x</a>', False),
    ])
    def test_simple_cases(self, query_text, document_text, expected):
        assert filter_document(parse_query(query_text), parse_document(document_text)) \
            is expected

    def test_filter_accepts_raw_event_stream(self):
        query = parse_query("/a[b]")
        events = parse_events("<a><b/></a>")
        assert StreamingFilter(query).run(events)

    def test_filter_object_is_reusable(self):
        query = parse_query("/a[b]")
        streaming_filter = StreamingFilter(query)
        assert streaming_filter.run_document(parse_document("<a><b/></a>"))
        assert not streaming_filter.run_document(parse_document("<a><c/></a>"))
        assert streaming_filter.run_document(parse_document("<a><b/></a>"))

    def test_incomplete_stream_raises(self):
        query = parse_query("/a")
        with pytest.raises(ValueError):
            StreamingFilter(query).run(parse_events("<a/>")[:-1])


class TestRecursiveDocuments:
    def test_inner_match_is_not_lost(self):
        """Regression for the matched-flag accumulation fix (DESIGN.md deviation 2):
        an inner candidate's real match must survive the enclosing candidate's failure."""
        query = parse_query("//a[b and c]")
        assert filter_document(query, parse_document("<a><a><b/><c/></a></a>"))
        assert filter_document(query, parse_document("<a><x/><a><b/><c/></a><y/></a>"))

    def test_split_children_across_levels_do_not_match(self):
        query = parse_query("//a[b and c]")
        assert not filter_document(query, parse_document("<a><b/><a><c/></a></a>"))
        assert not filter_document(query, parse_document("<a><a><b/></a><c/></a>"))

    def test_outer_match_with_inner_failure(self):
        query = parse_query("//a[b and c]")
        assert filter_document(query, parse_document("<a><b/><a><b/></a><c/></a>"))

    def test_deeply_recursive_document(self):
        query = parse_query("//a[b and c]")
        deep = "<a>" * 10 + "<b/><c/>" + "</a>" * 10
        assert filter_document(query, parse_document(deep))

    def test_nested_value_candidates_use_their_own_text(self):
        """Regression for the per-candidate string-value stack (DESIGN.md deviation 3).

        The string value of the outer ``b`` is the concatenation of all nested text
        ("19", "91", "01"), while the inner ``b`` only sees its own text — both must be
        evaluated against their own buffer slice.
        """
        query = parse_query("//a[.//b > 5]")
        assert filter_document(query, parse_document("<a><b>1<b>9</b></b></a>"))
        assert filter_document(query, parse_document("<a><b>9<b>1</b></b></a>"))
        assert not filter_document(query, parse_document("<a><b>0<b>1</b></b></a>"))

    def test_recursive_witness_query_from_paper(self):
        query = parse_query("//d[f and a[b and c]]")
        doc = parse_document(
            "<Z><d><f/><a><b/></a><Z><d><f/><a><b/><c/></a></d></Z></d></Z>"
        )
        assert filter_document(query, doc)
        doc_no = parse_document(
            "<Z><d><f/><a><b/></a><Z><d><f/><a><b/></a></d></Z></d></Z>"
        )
        assert not filter_document(query, doc_no)


class TestUnsupportedQueries:
    def test_disjunction_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            StreamingFilter(parse_query("/a[b or c]"))

    def test_multivariate_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            StreamingFilter(parse_query("/a[b = c]"))

    def test_internal_value_restriction_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            StreamingFilter(parse_query("/a[b[c] > 5]"))


class TestStatistics:
    def test_peak_frontier_matches_fs_for_paper_query(self):
        """Theorem 8.8 second part: on the paper's (path-consistency-free, non-recursive)
        example the peak number of non-root frontier tuples is FS(Q)."""
        query = parse_query("/a[c[.//e and f] and b > 5]")
        document = parse_document("<a><c><e/><f/></c><b>6</b></a>")
        decision, stats = filter_with_statistics(query, document)
        assert decision
        # the +1 accounts for the permanent query-root tuple our variant keeps
        assert stats.peak_frontier_records <= query_frontier_size(query) + 1

    def test_frontier_grows_with_recursion_depth(self):
        query = parse_query("//a[b and c]")
        shallow = parse_document("<a><b/><c/></a>")
        deep = parse_document("<a>" * 6 + "<b/><c/>" + "</a>" * 6)
        _, shallow_stats = filter_with_statistics(query, shallow)
        _, deep_stats = filter_with_statistics(query, deep)
        assert deep_stats.peak_frontier_records > shallow_stats.peak_frontier_records

    def test_frontier_bounded_by_query_size_times_recursion(self):
        query = parse_query("//a[b and c]")
        r = 7
        document = parse_document("<a>" * r + "<b/><c/>" + "</a>" * r)
        _, stats = filter_with_statistics(query, document)
        assert stats.peak_frontier_records <= query.size() * r + 1

    def test_buffer_tracks_text_width(self):
        query = parse_query("/a[b > 5]")
        document = parse_document("<a><b>" + "7" * 500 + "</b></a>")
        _, stats = filter_with_statistics(query, document)
        assert stats.peak_buffer_chars == 500

    def test_buffer_not_used_without_value_candidates(self):
        query = parse_query("/a[b]")
        document = parse_document("<a><x>some very long irrelevant text</x><b/></a>")
        _, stats = filter_with_statistics(query, document)
        assert stats.peak_buffer_chars == 0

    def test_memory_bits_are_positive_and_bounded(self):
        query = parse_query("/a[b > 5]")
        document = parse_document("<a><b>6</b></a>")
        _, stats = filter_with_statistics(query, document)
        assert 0 < stats.peak_memory_bits < 10_000

    def test_event_count(self):
        query = parse_query("/a")
        document = parse_document("<a><b>6</b></a>")
        _, stats = filter_with_statistics(query, document)
        assert stats.events == len(document.events())
