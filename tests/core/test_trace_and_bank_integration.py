"""Additional integration tests: tracing arbitrary runs and the bank over event streams."""

from repro.core import FilterBank, RunTrace, StreamingFilter, trace_run
from repro.semantics import bool_eval
from repro.workloads import book_catalog, nested_sections
from repro.xmlstream import parse_document
from repro.xpath import parse_query


class TestTraceOnDatasets:
    def test_trace_levels_follow_element_depth(self):
        query = parse_query("//section[title and p]")
        document = nested_sections(3)
        trace = trace_run(query, document)
        max_level = max(entry.level for entry in trace.entries)
        assert max_level == document.depth() + 1  # level is incremented after the start

    def test_trace_matches_filter_decision(self):
        query = parse_query("/catalog/book[price < 20]")
        document = book_catalog(10, seed=21)
        trace = trace_run(query, document)
        assert trace.final_root_matched() == bool_eval(query, document)

    def test_trace_records_buffer_usage(self):
        query = parse_query("/a[b > 5]")
        document = parse_document("<a><b>123456</b></a>")
        trace = RunTrace()
        StreamingFilter(query, trace=trace).run_document(document)
        assert max(entry.buffer_chars for entry in trace.entries) == 6

    def test_trace_table_includes_root_when_requested(self):
        query = parse_query("/a")
        document = parse_document("<a/>")
        trace = trace_run(query, document)
        assert "$" in trace.as_table(include_root=True)
        assert "$" not in trace.as_table(include_root=False)


class TestBankOverRecursiveStreams:
    def test_bank_with_recursive_and_flat_subscriptions(self):
        bank = FilterBank()
        bank.register("recursive", parse_query("//section[section]"))
        bank.register("flat", parse_query("/book/section/title"))
        document = nested_sections(4)
        result = bank.filter_document(document)
        assert set(result.matched) == {
            name for name in ("recursive", "flat")
            if bool_eval(bank.query(name), document)
        }

    def test_bank_memory_smaller_than_sum_of_documents(self):
        bank = FilterBank()
        bank.register("cheap", parse_query("/catalog/book[price < 15]"))
        documents = [book_catalog(n, seed=n) for n in (5, 50, 200)]
        bits = [bank.filter_document(d).total_peak_memory_bits for d in documents]
        # memory does not scale with the document: all runs stay within a small band
        assert max(bits) <= 3 * min(bits)
