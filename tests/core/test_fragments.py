"""Tests for the Redundancy-free XPath classification (Section 5) and related fragments."""

import pytest

from repro.core import (
    are_path_consistent,
    classify,
    depth_lb_witness,
    explain_redundancy_freeness,
    has_prefix_sunflower_property,
    has_sunflower_property,
    is_closure_free,
    is_conjunctive,
    is_leaf_only_value_restricted,
    is_path_consistency_free,
    is_recursive_xpath,
    is_redundancy_free,
    is_star_restricted,
    is_strongly_subsumption_free,
    is_univariate,
    recursive_xpath_witness,
    sunflower_witness,
)
from repro.xpath import parse_query


class TestStarRestricted:
    def test_allowed_wildcard_usage(self):
        assert is_star_restricted(parse_query("/a/*/b"))
        assert is_star_restricted(parse_query("/a[*/b > 5]"))

    @pytest.mark.parametrize("text", ["/a/*", "/a[*]", "/a//*/b", "/a/*//b", "//*/b"])
    def test_disallowed_wildcard_usage(self, text):
        assert not is_star_restricted(parse_query(text))

    def test_query_without_wildcards_is_star_restricted(self):
        assert is_star_restricted(parse_query("//a[b and c]"))


class TestConjunctive:
    def test_conjunctions_are_allowed(self):
        assert is_conjunctive(parse_query("/a[b and c and d > 5]"))

    def test_disjunction_is_not_conjunctive(self):
        assert not is_conjunctive(parse_query("/a[b or c]"))

    def test_negation_is_not_conjunctive(self):
        assert not is_conjunctive(parse_query("/a[not(b)]"))

    def test_atomic_predicates_are_conjunctive(self):
        assert is_conjunctive(parse_query("/a[b > 5]"))
        assert is_conjunctive(parse_query('/a[fn:contains(b, "x")]'))

    def test_section_52_example_atomic_split(self):
        """The predicate [b > 5 and c + d = 7] splits into two atomic conjuncts."""
        assert is_conjunctive(parse_query("/a[b > 5 and c + d = 7]"))


class TestUnivariate:
    def test_single_variable_predicates(self):
        assert is_univariate(parse_query("/a[b > 5 and c < 3]"))

    def test_two_variables_in_one_atomic_predicate(self):
        assert not is_univariate(parse_query("/a[c + d = 7]"))
        assert not is_univariate(parse_query("/a[b = c]"))

    def test_relative_path_counts_as_one_variable(self):
        """Per Section 5.3, [a//b] is univariate: only the 'a' node is a variable."""
        assert is_univariate(parse_query("/x[a//b]"))
        assert is_univariate(parse_query("/x[a//b > 5]"))


class TestLeafOnlyValueRestricted:
    def test_paper_positive_example(self):
        assert is_leaf_only_value_restricted(parse_query("/a[b[c > 5]]"))

    def test_paper_negative_example(self):
        assert not is_leaf_only_value_restricted(parse_query("/a[b[c] > 5]"))

    def test_plain_queries_are_fine(self):
        assert is_leaf_only_value_restricted(parse_query("//a[b and c]"))


class TestStrongSubsumptionFreeness:
    def test_redundant_predicate_fails_sunflower(self):
        """Section 5 example: /a[b > 5 and b > 6] is redundant — the b > 5 leaf's truth
        set is covered once b > 6's witness must avoid it (and vice versa)."""
        q = parse_query("/a[b > 5 and b > 6]")
        assert not has_sunflower_property(q)
        assert not is_redundancy_free(q)

    def test_subsumed_existence_predicate(self):
        """Section 5 example: /a[b and .//b] — the child-axis b subsumes the
        descendant-axis one."""
        q = parse_query("/a[b and .//b]")
        assert not is_strongly_subsumption_free(q)

    def test_ends_with_counterexample(self):
        """The Section 5.5 example: subsumption-free but NOT strongly subsumption-free
        because of the prefix sunflower failure."""
        q = parse_query('/a[b[c = "A"] and fn:ends-with(b, "B")]')
        assert not has_prefix_sunflower_property(q)
        assert not is_strongly_subsumption_free(q)

    def test_disjoint_truth_sets_are_fine(self):
        q = parse_query("/a[b > 12 and .//b < 3]")
        assert has_sunflower_property(q)

    def test_paper_main_queries_are_redundancy_free(self):
        for text in (
            "/a[c[.//e and f] and b > 5]",
            "//a[b and c]",
            "/a/b",
            "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
            "//d[f and a[b and c]]",
        ):
            assert is_redundancy_free(parse_query(text)), text
            assert explain_redundancy_freeness(parse_query(text)) is None

    def test_wildcard_remark_query_is_not_redundancy_free(self):
        """The remark after Theorem 4.2: /a[c[.//* and f] and b > 5] breaks the frontier
        bound precisely because it is not redundancy-free (the wildcard is a leaf)."""
        q = parse_query("/a[c[.//* and f] and b > 5]")
        assert not is_redundancy_free(q)
        assert explain_redundancy_freeness(q) is not None

    def test_sunflower_witness_values(self):
        q = parse_query("/a[b > 12 and .//b < 3]")
        tight = [n for n in q.non_root_nodes() if n.ntest == "b" and n.axis == "child"][0]
        witness = sunflower_witness(q, tight)
        assert witness is not None and float(witness) > 12


class TestRecursiveXPath:
    def test_paper_recursive_queries(self):
        assert is_recursive_xpath(parse_query("//a[b and c]"))
        assert is_recursive_xpath(parse_query("//d[f and a[b and c]]"))

    def test_witness_node_identification(self):
        """Both the 'd' node (children f, a) and the 'a' node (children b, c) satisfy
        the Recursive-XPath conditions for //d[f and a[b and c]]; the paper's worked
        example uses 'a', the construction works with either."""
        q = parse_query("//d[f and a[b and c]]")
        witness = recursive_xpath_witness(q)
        assert witness is not None and witness.ntest in ("a", "d")

    def test_non_recursive_queries(self):
        assert not is_recursive_xpath(parse_query("/a[b and c]"))
        assert not is_recursive_xpath(parse_query("//a"))
        assert not is_recursive_xpath(parse_query("//a//b"))
        assert not is_recursive_xpath(parse_query("//a[b]"))


class TestClosureAndPathConsistency:
    def test_closure_free(self):
        assert is_closure_free(parse_query("/a[b and c]/d"))
        assert not is_closure_free(parse_query("/a[.//b]"))
        assert not is_closure_free(parse_query("//a"))

    def test_path_consistency_paper_example(self):
        """Definition 8.5's example: the two c nodes of /a[.//b/c and b//c] are path
        consistent."""
        q = parse_query("/a[.//b/c and b//c]")
        c_nodes = [n for n in q.non_root_nodes() if n.ntest == "c"]
        assert are_path_consistent(c_nodes[0], c_nodes[1])
        assert not is_path_consistency_free(q)

    def test_distinct_names_are_path_consistency_free(self):
        assert is_path_consistency_free(parse_query("/a[b and c]/d"))

    def test_same_name_at_same_position_is_consistent(self):
        q = parse_query("/a[b > 5 and b < 3]")
        assert not is_path_consistency_free(q)

    def test_wildcards_are_consistent_with_names(self):
        q = parse_query("/a[* [x] and b]")
        star = [n for n in q.non_root_nodes() if n.is_wildcard()][0]
        b = [n for n in q.non_root_nodes() if n.ntest == "b"][0]
        assert are_path_consistent(star, b)

    def test_descendant_vs_child_consistency(self):
        q = parse_query("/a[.//x and b/x]")
        x_nodes = [n for n in q.non_root_nodes() if n.ntest == "x"]
        assert are_path_consistent(x_nodes[0], x_nodes[1])

    def test_inconsistent_because_of_depth(self):
        q = parse_query("/a[x and b/x]")
        x_nodes = [n for n in q.non_root_nodes() if n.ntest == "x"]
        assert not are_path_consistent(x_nodes[0], x_nodes[1])


class TestDepthWitnessAndClassify:
    def test_depth_lb_witness(self):
        assert depth_lb_witness(parse_query("/a/b")) is not None
        assert depth_lb_witness(parse_query("//a")) is None
        assert depth_lb_witness(parse_query("//a//b")) is None
        # in /a/*/b the 'a' step itself is a valid witness (child axis, root parent)
        assert depth_lb_witness(parse_query("/a/*/b")).ntest == "a"
        # with a leading descendant step and a wildcard parent no witness exists
        assert depth_lb_witness(parse_query("//*[x]")) is None
        witness = depth_lb_witness(parse_query("//a/b"))
        assert witness is not None and witness.ntest == "b"

    def test_classify_summary(self):
        info = classify(parse_query("/a[c[.//e and f] and b > 5]"))
        assert info.redundancy_free
        assert not info.recursive_xpath
        assert not info.closure_free        # .//e uses a descendant axis
        assert info.path_consistency_free
        as_dict = info.as_dict()
        assert as_dict["star_restricted"] and as_dict["conjunctive"]

    def test_classify_recursive_query(self):
        info = classify(parse_query("//a[b and c]"))
        assert info.redundancy_free and info.recursive_xpath

    def test_classify_non_redundancy_free(self):
        info = classify(parse_query("/a[b or c]"))
        assert not info.conjunctive and not info.redundancy_free
