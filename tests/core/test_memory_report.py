"""The banks' live memory accounting: ``memory_report`` and friends.

PR 8's governor is only as good as the numbers it samples, so these tests pin
the report's semantics: standing bits grow with registered subscriptions and
shrink when they leave, per-document peaks fold into lifetime high-water marks
(stats mode), the match-only fast path still accounts its value buffers, and
the sharded bank aggregates worker-side peaks parent-side, surviving respawns.
The process-RSS helpers (the governor's safety net) ride along.
"""

import os
import signal
import time

from repro.core import CompiledFilterBank, MatchOnlyFilterBank, ShardedFilterBank
from repro.instrument import current_rss_bytes, peak_rss_bytes
from repro.xpath.parser import parse_query

CATALOG = "<catalog><book><price>12</price></book></catalog>"
DEEP = "<a>" * 60 + "<b/>" + "</a>" * 60


def _bank(cls=CompiledFilterBank, **kwargs):
    bank = cls(**kwargs)
    bank.register("cheap", parse_query("/catalog/book[price < 20]"))
    bank.register("books", parse_query("/catalog/book"))
    return bank


class TestStandingBits:
    def test_empty_bank_reports_nothing(self):
        report = CompiledFilterBank().memory_report()
        assert report.subscriptions == 0
        assert report.modeled_bits == 0
        assert report.modeled_bytes == 0

    def test_standing_bits_grow_with_subscriptions(self):
        bank = CompiledFilterBank()
        bank.register("one", parse_query("/catalog/book"))
        one = bank.memory_report()
        bank.register("two", parse_query("/catalog/book/price"))
        two = bank.memory_report()
        assert two.subscriptions == 2
        assert two.distinct_plans == 2
        assert two.standing_bits > one.standing_bits

    def test_shared_plans_are_counted_once(self):
        bank = CompiledFilterBank()
        bank.register("a", parse_query("/catalog/book"))
        solo = bank.memory_report()
        bank.register("b", parse_query("/catalog/book"))  # interned: same plan
        shared = bank.memory_report()
        assert shared.distinct_plans == 1
        # the second name costs its name bits, not a second plan
        assert shared.standing_bits - solo.standing_bits < \
            solo.standing_bits

    def test_unregister_releases_plan_bits(self):
        bank = _bank()
        loaded = bank.memory_report().standing_bits
        bank.unregister("cheap")
        bank.unregister("books")
        assert bank.memory_report().standing_bits < loaded
        assert bank.memory_report().distinct_plans == 0


class TestPeakTracking:
    def test_stats_mode_folds_document_peaks(self):
        bank = _bank(stats=True)
        before = bank.memory_report()
        assert before.peak_document_bits == 0
        result = bank.filter_text(CATALOG)
        assert result.matched == ["cheap", "books"]
        after = bank.memory_report()
        assert after.peak_document_bits > 0
        assert after.peak_frontier_records > 0
        assert after.modeled_bits > after.standing_bits
        # the fold is a running max: an identical document cannot raise it
        bank.filter_text(CATALOG)
        assert bank.memory_report().peak_document_bits == \
            after.peak_document_bits

    def test_peaks_match_the_per_document_statistics(self):
        bank = _bank(stats=True)
        result = bank.filter_text(CATALOG)
        per_doc = max(stats.peak_memory_bits
                      for stats in result.per_query_stats.values())
        assert bank.memory_report().peak_document_bits == per_doc
        per_sub = bank.per_subscription_peak_bits()
        assert set(per_sub) == {"cheap", "books"}
        assert max(per_sub.values()) == per_doc

    def test_deeper_documents_raise_the_peak(self):
        bank = CompiledFilterBank(stats=True)
        bank.register("deep", parse_query("//b"))
        bank.filter_text("<a><b/></a>")
        shallow = bank.memory_report().peak_document_bits
        bank.filter_text(DEEP)
        assert bank.memory_report().peak_document_bits > shallow

    def test_match_only_path_accounts_value_buffers(self):
        bank = _bank(MatchOnlyFilterBank)
        assert not bank.memory_report().stats_mode
        bank.filter_text(CATALOG)
        report = bank.memory_report()
        # the fast path buffered the price text for the value predicate and
        # folded its high-water chars before releasing the buffer
        assert report.peak_buffer_chars >= len("12")
        assert report.modeled_bits >= report.standing_bits + \
            report.peak_buffer_chars * 8


class TestShardedReport:
    def test_parent_side_aggregation(self):
        bank = ShardedFilterBank(2, stats=True)
        try:
            bank.register("cheap", parse_query("/catalog/book[price < 20]"))
            bank.register("books", parse_query("/catalog/book"))
            for _ in range(4):
                assert bank.filter_text(CATALOG).matched == ["cheap", "books"]
            report = bank.memory_report()
            assert report.subscriptions == 2
            assert report.standing_bits > 0
            assert report.peak_document_bits > 0
            assert report.modeled_bits >= report.standing_bits
            # one RSS sample per live worker: the governor's whole-service view
            assert len(report.worker_rss_bytes) == 2
            assert all(rss > 0 for rss in report.worker_rss_bytes)
            per_sub = bank.per_subscription_peak_bits()
            assert set(per_sub) == {"cheap", "books"}
            assert max(per_sub.values()) == report.peak_document_bits
        finally:
            bank.close()

    def test_peaks_survive_a_respawn(self):
        with ShardedFilterBank(2, stats=True) as bank:
            bank.register("books", parse_query("/catalog/book"))
            bank.filter_text(CATALOG)
            bank.filter_text(CATALOG)
            peak = bank.memory_report().peak_document_bits
            assert peak > 0
            os.kill(bank.worker_status()[0]["pid"], signal.SIGKILL)
            deadline = time.time() + 5
            while not bank.has_dead_worker() and time.time() < deadline:
                time.sleep(0.02)
            assert bank.ensure_healthy() == [0]
            # cumulative continuity (PR 7): the high-water mark is maxed
            # across respawns, not reset with the worker processes
            assert bank.memory_report().peak_document_bits == peak


class TestRssSampling:
    def test_current_rss_is_positive_here(self):
        rss = current_rss_bytes()
        assert rss is not None and rss > 0

    def test_unknown_pid_returns_none(self):
        assert current_rss_bytes(2 ** 31 - 7) is None

    def test_peak_rss_bounds_current(self):
        peak = peak_rss_bytes()
        assert peak is not None
        assert peak >= current_rss_bytes() * 0.5  # same order of magnitude
