"""The no-growth soak: a governed service run at its memory ceiling.

One long scenario drives a durable, statistics-accurate, governed
:class:`~repro.service.PubSubService` through sustained publish traffic,
subscription churn, and a deliberate overload episode (a stalled consumer
pins its delivery queue until the governor climbs to the hard watermark,
rejects publishes, and evicts it), then back to steady state.  At the end it
asserts the properties PR 8 exists for:

* **Bounded RSS growth** — process RSS after the full run stays within a
  fixed envelope of the post-warmup baseline (no per-document leak).
* **Ladder transitions both ways** — the governor demonstrably reached HARD
  under load and walked back down to NORMAL after the eviction.
* **Zero lost acked matches** — every admitted document was delivered to the
  keeping-up consumer exactly-once-or-better (set equality of document ids).
* **Measured bits within the static bound** — the bank's per-subscription
  peak memory stays at or below the cost model's prediction for the query.

The soak is opt-in: plain ``pytest`` skips it so tier-1 stays fast.

* ``SOAK_SMOKE=1``  — ~2k documents (seconds; runs in the CI fault job)
* ``SOAK_DOCS=N``   — explicit size: 200000 for the tier-2 soak, 1000000
  for the nightly job
* ``SOAK_REPORT=path.json`` — also dump the governor transition log and the
  run summary as JSON (uploaded as the nightly artifact)
"""

import asyncio
import json
import os
import random

import pytest

from repro.analysis import analyze_query
from repro.instrument import current_rss_bytes
from repro.service import (
    MemoryBudget,
    OverloadedError,
    PubSubService,
    ResourceGovernor,
)
from repro.workloads import publish_burst
from repro.xpath.parser import parse_query

if os.environ.get("SOAK_DOCS"):
    TOTAL_DOCS = int(os.environ["SOAK_DOCS"])
elif os.environ.get("SOAK_SMOKE") == "1":
    TOTAL_DOCS = 2_000
else:
    pytest.skip("soak: set SOAK_SMOKE=1 or SOAK_DOCS=<n> to run",
                allow_module_level=True)

PIN_QUERY = "/feed/topic0[score0 > 0]"  # matches every workload document
BURST = 32               # documents per publish round (== default batch_max)
QUEUE_SIZE = 64          # per-session delivery queue (the pinning bound)
UNIT = 1 << 20           # modeled bits charged per undelivered notification
# In notification units: steady-state backlog peaks at one in-flight burst
# (32 < 40, stays NORMAL); a pinned queue alone crosses HARD (64 >= 56), so
# the overload episode does not depend on scheduler timing.
BUDGET = MemoryBudget(soft_bits=40 * UNIT, hard_bits=56 * UNIT)
RSS_SLACK_BYTES = 48 * (1 << 20)  # absolute allowance over the baseline
RSS_SLACK_RATIO = 0.20            # relative allowance over the baseline


def run(coro):
    return asyncio.run(coro)


async def _drain(session, received, *, churn=None, last_doc_id=0):
    """Drain and ack everything pending for the keeping-up consumer."""
    while session.pending_notifications() > 0:
        note = await session.next_notification(timeout=5)
        received.append(note.document_id)
    if received:
        session.ack(received[-1])
    if churn is not None and last_doc_id:
        # the churn session matches nothing but must still advance its
        # cursor, or it would pin the publish log's compaction floor
        churn.ack(last_doc_id)


async def _publish_round(service, docs):
    """Submit one burst; returns (admitted ids, rejections, retry hint)."""
    pending = []
    rejections = 0
    retry_after = 0.0
    for text in docs:
        try:
            pending.append(await service.submit(text))
        except OverloadedError as exc:
            # the governor is shedding: abandon the burst, honor the hint
            rejections += 1
            retry_after = exc.retry_after
            break
    await asyncio.gather(*(p.wait() for p in pending))
    return [p.document_id for p in pending], rejections, retry_after


async def _soak(tmp_path):
    rng = random.Random(20260808)
    governor = ResourceGovernor(
        BUDGET, sample_interval=0.02, retry_after=0.02, stall_grace=0.1,
        notification_bits=UNIT)
    service = PubSubService(stats=True, durable_dir=str(tmp_path / "durable"),
                            session_queue_size=QUEUE_SIZE, governor=governor)
    await service.start()
    try:
        keeper = await service.connect("keeper")
        await keeper.subscribe("pin", PIN_QUERY)
        churn = await service.connect("churn")

        received = []           # every document id delivered to the keeper
        admitted = []           # every document id the service accepted
        rejections = 0
        churn_cycle = 0

        def next_burst():
            # every document carries the pinned topic, so the keeper's one
            # subscription matches the entire run — delivered-vs-admitted
            # becomes an exact set comparison
            return publish_burst(BURST, topics=4, entries=3,
                                 seed=rng.getrandbits(32))

        async def steady_round():
            nonlocal churn_cycle
            ids, _, _ = await _publish_round(service, next_burst())
            admitted.extend(ids)
            await _drain(keeper, received, churn=churn,
                         last_doc_id=ids[-1] if ids else 0)
            # subscription churn: register/unregister a non-matching query
            # every round so the bank's plan table sees sustained turnover
            name = f"c{churn_cycle % 8}"
            if churn_cycle >= 8:
                await churn.unsubscribe(name)
            await churn.subscribe(name, f"/feed/topic{churn_cycle % 4}/nosuch")
            churn_cycle += 1

        # ---- phase A: steady state until the warmup baseline -------------
        warmup_docs = max(BURST, TOTAL_DOCS // 4)
        while len(admitted) < warmup_docs:
            await steady_round()
        assert governor.state_name == "normal"
        baseline_rss = current_rss_bytes()
        assert baseline_rss is not None

        # ---- phase B: overload — a stalled consumer pins its queue -------
        stalled = await service.connect("stalled")
        await stalled.subscribe("pin", PIN_QUERY)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 60
        while not (service.metrics()["clients_evicted"] >= 1
                   and rejections > 0
                   and governor.state_name == "normal"):
            assert loop.time() < deadline, (
                f"overload episode did not recover: state="
                f"{governor.state_name} metrics={service.metrics()}")
            ids, round_rejections, retry_after = await _publish_round(
                service, next_burst())
            admitted.extend(ids)
            rejections += round_rejections
            await _drain(keeper, received, churn=churn,
                         last_doc_id=ids[-1] if ids else 0)
            if round_rejections:
                await asyncio.sleep(retry_after)
        assert stalled.closed  # the laggard, not the keeper, was evicted
        assert not keeper.closed

        # ---- phase C: steady state again up to the full document budget --
        while len(admitted) < TOTAL_DOCS:
            await steady_round()
        await _drain(keeper, received, churn=churn, last_doc_id=admitted[-1])

        # ---- the four soak properties ------------------------------------
        # 1. ladder transitions in both directions
        rank = {"normal": 0, "soft": 1, "hard": 2}
        moves = [(rank[t.from_state], rank[t.to_state])
                 for t in governor.transitions()]
        assert any(before < after for before, after in moves), moves
        assert any(before > after for before, after in moves), moves
        assert governor.state_name == "normal"
        assert rejections > 0
        metrics = service.metrics()
        assert metrics["clients_evicted"] >= 1
        assert metrics["publishes_rejected"] == rejections

        # 2. zero lost acked matches: every admitted document matches the
        # keeper's pinned-topic query, and every one of them arrived
        assert set(received) == set(admitted)

        # 3. measured per-subscription bits within the static cost model
        peaks = service._bank.per_subscription_peak_bits()
        predicted = analyze_query(parse_query(PIN_QUERY)).predicted_memory_bits
        assert 0 < peaks["keeper:pin"] <= predicted

        # 4. bounded RSS growth over the post-warmup baseline
        end_rss = current_rss_bytes()
        allowance = baseline_rss * RSS_SLACK_RATIO + RSS_SLACK_BYTES
        assert end_rss <= baseline_rss + allowance, (
            f"RSS grew {end_rss - baseline_rss} bytes over the "
            f"{baseline_rss}-byte baseline (allowance {allowance:.0f})")

        report_path = os.environ.get("SOAK_REPORT")
        if report_path:
            with open(report_path, "w", encoding="utf-8") as handle:
                json.dump({
                    "documents": len(admitted),
                    "rejections": rejections,
                    "baseline_rss_bytes": baseline_rss,
                    "end_rss_bytes": end_rss,
                    "metrics": metrics,
                    "governor": governor.snapshot(),
                    "transitions": [t.as_dict()
                                    for t in governor.transitions()],
                }, handle, indent=2)
    finally:
        await service.stop()


def test_soak_no_growth(tmp_path):
    run(_soak(tmp_path))
