"""Snapshot/restore round-trips must be behaviorally invisible.

The property: for any subscription set and any document stream, a bank restored
from a snapshot produces :class:`~repro.core.BankResult`\\ s identical to the
original bank's — same matched lists (order included) in match-only mode, and
byte-identical per-query :class:`~repro.core.FilterStatistics` in stats mode.
Queries cover the full supported fragment via the shared hypothesis strategies
(wildcards, descendant axes, predicates, interned duplicates).  Service-level
snapshots additionally restore the session layout.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompiledFilterBank, MatchOnlyFilterBank, ShardedFilterBank
from repro.service import (
    PubSubService,
    dumps_bank,
    loads_bank,
    restore_bank,
    snapshot_bank,
)
from repro.xpath import parse_query

from ..strategies import documents, random_supported_query


def _random_bank(seed: int, count: int, *, stats: bool):
    rng = random.Random(seed)
    bank = CompiledFilterBank(stats=stats)
    queries = []
    for index in range(count):
        if queries and rng.random() < 0.25:
            query = queries[rng.randrange(len(queries))]  # interned duplicate
        else:
            query = random_supported_query(rng, allow_wildcard=True)
        queries.append(query)
        bank.register(f"q{index}", query)
    if rng.random() < 0.5 and count > 1:
        bank.unregister(f"q{rng.randrange(count)}")  # churned state snapshots too
    return bank


class TestBankRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=8),
           stats=st.booleans())
    def test_restored_bank_reports_identical_results(self, document, seed,
                                                     count, stats):
        original = _random_bank(seed, count, stats=stats)
        restored = loads_bank(dumps_bank(original))  # through real JSON text
        assert type(restored) is CompiledFilterBank
        assert restored.stats_mode == original.stats_mode
        assert restored.subscriptions() == original.subscriptions()
        assert restored.distinct_plan_count() == original.distinct_plan_count()
        for first in (original.filter_document(document),
                      original.filter_document(document)):
            second = restored.filter_document(document)
            assert second.matched == first.matched
            assert second.per_query_stats == first.per_query_stats

    @settings(max_examples=25, deadline=None)
    @given(document=documents(),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=6))
    def test_match_only_alias_restores_as_match_only(self, document, seed, count):
        original = _random_bank(seed, count, stats=False)
        restored = restore_bank(snapshot_bank(original))
        result = restored.filter_document(document)
        assert result.matched == original.filter_document(document).matched
        assert result.per_query_stats == {}

    def test_sharded_snapshot_restores_shard_layout(self):
        from repro.xmlstream import parse_document

        document = parse_document("<a><b/><c><d>5</d></c></a>")
        with ShardedFilterBank(2) as original:
            for index in range(7):
                original.register(f"q{index}", parse_query("/a/b" if index % 2
                                                           else "//c[d > 2]"))
            snapshot = snapshot_bank(original)
            assert snapshot["kind"] == "sharded"
            assert snapshot["shards"] == 2
            with restore_bank(snapshot) as restored:
                assert isinstance(restored, ShardedFilterBank)
                assert restored.shard_count == 2
                assert restored.subscription_queries() == \
                    original.subscription_queries()
                assert restored.filter_document(document).matched == \
                    original.filter_document(document).matched

    def test_kind_override_restores_sharded_snapshot_in_process(self):
        with ShardedFilterBank(2) as original:
            original.register("q", parse_query("/a/b"))
            restored = restore_bank(snapshot_bank(original), kind="compiled")
        assert isinstance(restored, MatchOnlyFilterBank) or \
            isinstance(restored, CompiledFilterBank)
        assert restored.subscriptions() == ["q"]


class TestServiceRoundTrip:
    def test_sessions_and_subscriptions_survive_restart(self):
        import asyncio

        async def scenario():
            service = PubSubService()
            alice = await service.connect("alice")
            bob = await service.connect("bob")
            await alice.subscribe("cheap", "/catalog/book[price < 20]")
            await alice.subscribe("all", "/catalog/book")
            await bob.subscribe("cheap", "/catalog/book[price < 5]")
            document = "<catalog><book><price>3</price></book></catalog>"
            before = (await service.publish(document)).matched
            snapshot = json.loads(json.dumps(service.snapshot()))
            await service.stop()

            restored = PubSubService.restore(snapshot)
            async with restored:
                assert sorted(s.client_id for s in restored.sessions()) == \
                    ["alice", "bob"]
                restored_alice = restored.session("alice")
                assert restored_alice.subscriptions() == ["cheap", "all"]
                result = await restored.publish(document)
                assert result.matched == before
                note = await restored_alice.next_notification(timeout=1)
                assert note.matched == ("cheap", "all")
                # restored sessions are live: churn keeps working
                await restored_alice.unsubscribe("all")
                assert (await restored.publish(document)).matched == \
                    ("alice:cheap", "bob:cheap")

        asyncio.run(scenario())

    def test_interleaved_global_registration_order_is_preserved(self):
        """Subscriptions interleaved across sessions must restore in the same
        global bank order — round-robin shard assignment and matched-tuple
        ordering are order-determined."""
        import asyncio

        async def scenario():
            service = PubSubService()
            a = await service.connect("a")
            b = await service.connect("b")
            await a.subscribe("one", "/x")
            await b.subscribe("one", "/x")
            await a.subscribe("two", "/x")
            original_order = list(service.bank.subscription_queries())
            assert original_order == ["a:one", "b:one", "a:two"]
            snapshot = json.loads(json.dumps(service.snapshot()))
            await service.stop()
            restored = PubSubService.restore(snapshot)
            assert list(restored.bank.subscription_queries()) == original_order
            async with restored:
                result = await restored.publish("<x/>")
                assert result.matched == ("a:one", "b:one", "a:two")

        asyncio.run(scenario())

    def test_unsupported_schema_is_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="schema"):
            PubSubService.restore({"schema": 99, "kind": "service",
                                   "sessions": []})
        with pytest.raises(ValueError, match="schema"):
            restore_bank({"schema": 99, "kind": "compiled",
                          "subscriptions": []})

    def test_cross_feeding_snapshot_layouts_is_rejected_loudly(self):
        """A service snapshot through restore_bank (or vice versa) must raise,
        never silently restore an empty subscription state."""
        import asyncio

        import pytest

        async def build():
            service = PubSubService()
            session = await service.connect("c")
            await session.subscribe("q", "/a")
            snapshot = service.snapshot()
            await service.stop()
            return snapshot

        service_snapshot = asyncio.run(build())
        with pytest.raises(ValueError, match="service-level"):
            restore_bank(service_snapshot)

        bank = CompiledFilterBank()
        bank.register("q", parse_query("/a"))
        with pytest.raises(ValueError, match="not a service snapshot"):
            PubSubService.restore(snapshot_bank(bank))

    def test_restore_outside_a_running_loop_then_use_inside_one(self):
        """Snapshot restore is synchronous startup code: sessions built outside
        any event loop must still deliver correctly inside one (their delivery
        queues bind lazily — eager binding breaks on Python 3.9)."""
        import asyncio

        async def build():
            service = PubSubService()
            session = await service.connect("c")
            await session.subscribe("q", "/a")
            snapshot = service.snapshot()
            await service.stop()
            return snapshot

        snapshot = asyncio.run(build())
        restored = PubSubService.restore(snapshot)  # no loop running here

        async def use():
            async with restored:
                assert (await restored.publish("<a/>")).matched == ("c:q",)
                note = await restored.session("c").next_notification(timeout=1)
                assert note.matched == ("q",)

        asyncio.run(use())
