"""Behavioral tests for the asyncio pub/sub service layer.

Covers the session lifecycle (subscribe/unsubscribe/close, local-name isolation),
publish semantics (ordering against subscriptions, per-document error isolation,
chunked streams), batching observability, backpressure, graceful drain, and the
sharded health-probe respawn.  Everything runs through ``asyncio.run`` so the suite
needs no asyncio pytest plugin.
"""

import asyncio
import os
import signal

import pytest

from repro.core.errors import UnsupportedQueryError
from repro.service import (
    PubSubService,
    ServiceClosedError,
    SessionClosedError,
)
from repro.xmlstream.parse import XMLParseError

CATALOG = "<catalog><book><price>12</price></book></catalog>"


def run(coro):
    return asyncio.run(coro)


class TestSessions:
    def test_subscribe_publish_notify(self):
        async def scenario():
            async with PubSubService() as service:
                alice = await service.connect("alice")
                bob = await service.connect("bob")
                await alice.subscribe("cheap", "/catalog/book[price < 20]")
                await bob.subscribe("books", "/catalog/book")
                result = await service.publish(CATALOG)
                assert result.matched == ("alice:cheap", "bob:books")
                assert result.document_id == 1
                first = await alice.next_notification(timeout=1)
                assert first.matched == ("cheap",)
                assert first.document_id == 1
                assert (await bob.next_notification(timeout=1)).matched == \
                    ("books",)
        run(scenario())

    def test_local_names_are_isolated_between_clients(self):
        async def scenario():
            async with PubSubService() as service:
                one = await service.connect()
                two = await service.connect()
                await one.subscribe("same", "/catalog/book")
                await two.subscribe("same", "/catalog/missing")
                result = await service.publish(CATALOG)
                assert result.matched == (f"{one.client_id}:same",)
        run(scenario())

    def test_duplicate_names_and_bad_queries_raise(self):
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/a")
                with pytest.raises(ValueError):
                    await session.subscribe("q", "/b")
                with pytest.raises(UnsupportedQueryError):
                    await session.subscribe("unsupported", "//a[not(b)]")
                with pytest.raises(ValueError):
                    await service.connect("c")  # client id already connected
                with pytest.raises(ValueError):
                    await service.connect("a:b")  # ':' would break namespacing
                # failures left no residue: the good subscription still works
                assert (await service.publish("<a/>")).matched == ("c:q",)
        run(scenario())

    def test_unsubscribe_and_close_stop_delivery(self):
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                assert (await service.publish(CATALOG)).matched
                await session.unsubscribe("q")
                assert not (await service.publish(CATALOG)).matched
                with pytest.raises(KeyError):
                    await session.unsubscribe("q")
                await session.subscribe("q2", "/catalog/book")
                await session.close()
                assert len(service.bank) == 0
                assert not (await service.publish(CATALOG)).matched
                with pytest.raises(SessionClosedError):
                    await session.subscribe("q3", "/catalog")
        run(scenario())

    def test_subscription_is_ordered_against_publishes(self):
        """A document published before a subscribe must not match it; one
        published after must — even when everything is issued back to back."""
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                before = asyncio.ensure_future(service.publish(CATALOG))
                await asyncio.sleep(0)  # let the publish task enqueue first
                await session.subscribe("q", "/catalog/book")
                after = await service.publish(CATALOG)
                assert (await before).matched == ()
                assert after.matched == ("c:q",)
        run(scenario())


class TestPublishing:
    def test_publish_many_returns_per_document_results_in_order(self):
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("cheap", "/catalog/book[price < 10]")
                documents = [
                    f"<catalog><book><price>{price}</price></book></catalog>"
                    for price in (5, 50, 7)
                ]
                results = await service.publish_many(documents)
                assert [bool(result.matched) for result in results] == \
                    [True, False, True]
                assert [result.document_id for result in results] == [1, 2, 3]
        run(scenario())

    def test_publish_stream_accepts_sync_and_async_chunks(self):
        chunks = [b"<catalog><book><pri", b"ce>5</price></book>", b"</catalog>"]

        async def agen():
            for chunk in chunks:
                yield chunk

        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book[price < 10]")
                assert (await service.publish_stream(chunks)).matched
                assert (await service.publish_stream(agen())).matched
        run(scenario())

    def test_malformed_document_fails_alone(self):
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                good = asyncio.ensure_future(service.publish(CATALOG))
                bad = asyncio.ensure_future(service.publish("<catalog><book>"))
                good2 = asyncio.ensure_future(service.publish(CATALOG))
                assert (await good).matched == ("c:q",)
                with pytest.raises(XMLParseError):
                    await bad
                assert (await good2).matched == ("c:q",)
                assert service.metrics()["documents_failed"] == 1
        run(scenario())

    def test_stats_mode_reports_per_query_statistics(self):
        async def scenario():
            async with PubSubService(stats=True) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                result = await service.publish(CATALOG)
                stats = result.per_query_stats["c:q"]
                assert stats.events > 0
                assert stats.candidate_matches >= 1
        run(scenario())

    def test_batching_coalesces_concurrent_publishes(self):
        async def scenario():
            async with PubSubService(batch_max=32) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                await service.publish_many([CATALOG] * 64)
                metrics = service.metrics()
                assert metrics["published"] == 64
                assert metrics["largest_batch"] > 1
                assert metrics["batches"] < 64
        run(scenario())

    def test_backpressure_bounds_the_ingest_queue(self):
        async def scenario():
            async with PubSubService(queue_limit=4, batch_max=2) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                results = await service.publish_many([CATALOG] * 32)
                assert len(results) == 32
                assert all(result.matched for result in results)
        run(scenario())


class TestLifecycle:
    def test_stop_drains_pending_documents(self):
        async def scenario():
            service = PubSubService(batch_max=4)
            await service.start()
            session = await service.connect("c")
            await session.subscribe("q", "/catalog/book")
            pending = [asyncio.ensure_future(service.publish(CATALOG))
                       for _ in range(16)]
            await asyncio.sleep(0)  # let every publish be accepted (enqueued)
            await service.stop()
            results = await asyncio.gather(*pending)
            assert all(result.matched == ("c:q",) for result in results)
            with pytest.raises(ServiceClosedError):
                await service.publish(CATALOG)
            with pytest.raises(ServiceClosedError):
                await service.connect("late")
            assert session.closed
        run(scenario())

    def test_stop_answers_publishers_blocked_on_a_full_queue(self):
        """A publish_many bigger than the ingest queue blocks in put; a
        concurrent stop() must still answer every accepted document instead of
        letting the STOP marker overtake the blocked publisher (a hang)."""
        async def scenario():
            service = PubSubService(queue_limit=2, batch_max=2)
            await service.start()
            session = await service.connect("c")
            await session.subscribe("q", "/catalog/book")
            burst = asyncio.ensure_future(service.publish_many([CATALOG] * 12))
            await asyncio.sleep(0)  # the burst fills the queue and blocks
            await asyncio.wait_for(service.stop(), timeout=5)
            results = await asyncio.wait_for(burst, timeout=5)
            assert len(results) == 12
            assert all(result.matched == ("c:q",) for result in results)
        run(scenario())

    def test_subscribe_interleaving_with_close_cannot_orphan_a_subscription(self):
        """close() awaits unregister round trips; a subscribe sneaking in during
        that window must be rejected, or its registration would outlive the
        session on the bank with no owner."""
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                closer = asyncio.ensure_future(session.close())
                await asyncio.sleep(0)  # close is now awaiting the unregister
                with pytest.raises(SessionClosedError):
                    await session.subscribe("sneak", "/catalog")
                await closer
                assert len(service.bank) == 0
        run(scenario())

    def test_cancelled_subscribe_neither_crashes_the_worker_nor_orphans(self):
        """A subscriber that times out (cancelling its in-flight register op)
        must not crash the ingest worker with InvalidStateError, and its
        registration must not land on the bank — the name stays reusable."""
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                sub = asyncio.ensure_future(session.subscribe("x", "/a"))
                await asyncio.sleep(0)  # register op enqueued, future pending
                sub.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await sub
                # the worker survived and the name was not orphaned
                assert (await service.publish("<a/>")).matched == ()
                assert len(service.bank) == 0
                await session.subscribe("x", "/a")  # reusable, no duplicate
                assert (await service.publish("<a/>")).matched == ("c:x",)
        run(scenario())

    def test_late_cancelled_subscribe_compensates_instead_of_orphaning(self):
        """Cancellation can land after the worker applied the registration but
        before the awaiter resumes; whichever way each race resolves, the bank
        and the routing table must end up consistent — never an unowned
        registration filtering documents forever."""
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                for attempt in range(20):
                    name = f"x{attempt}"
                    sub = asyncio.ensure_future(session.subscribe(name, "/a"))
                    await asyncio.sleep(0)  # op enqueued
                    while not len(service.bank):  # registration being applied
                        await asyncio.sleep(0)
                    sub.cancel()
                    cancelled = True
                    try:
                        await sub
                    except asyncio.CancelledError:
                        pass
                    else:
                        cancelled = False
                    # a publish round trip drains any compensating unregister
                    await service.publish("<b/>")
                    await service.publish("<b/>")
                    subs = set(service.bank.subscriptions())
                    if cancelled:
                        assert f"c:{name}" not in subs, (attempt, subs)
                    else:
                        assert f"c:{name}" in subs
                        await session.unsubscribe(name)
                    assert len(service.bank) == 0
        run(scenario())

    def test_close_during_inflight_subscribe_rolls_the_registration_back(self):
        """The mirror interleaving: a subscribe already awaiting its ingest
        round trip when close() runs must be rolled back, not left registered
        on the bank and routed to a dead session."""
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                sub = asyncio.ensure_future(session.subscribe("x", "/a"))
                await asyncio.sleep(0)  # register op enqueued, future pending
                await session.close()
                with pytest.raises(SessionClosedError):
                    await sub
                assert len(service.bank) == 0
                assert not (await service.publish("<a/>")).matched
        run(scenario())

    def test_stop_is_idempotent_and_health_reflects_it(self):
        async def scenario():
            service = PubSubService()
            await service.start()
            assert service.health()["running"]
            await service.stop()
            await service.stop()
            health = service.health()
            assert health["stopped"] and not health["running"]
        run(scenario())

    def test_notifications_iterator_ends_after_close(self):
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                await service.publish(CATALOG)
                await service.publish(CATALOG)
                collected = []

                async def consume():
                    async for notification in session.notifications():
                        collected.append(notification)

                consumer = asyncio.ensure_future(consume())
                await asyncio.sleep(0.05)
                await session.close()
                await asyncio.wait_for(consumer, timeout=2)
                assert [n.document_id for n in collected] == [1, 2]
        run(scenario())

    def test_slow_consumer_drops_oldest_not_ingest(self):
        async def scenario():
            async with PubSubService(session_queue_size=2) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                await service.publish_many([CATALOG] * 5)
                assert session.pending_notifications() == 2
                assert session.dropped == 3
                # the two newest notifications survived
                kept = [await session.next_notification(timeout=1)
                        for _ in range(2)]
                assert [n.document_id for n in kept] == [4, 5]
        run(scenario())


class TestIngestWorkerFailure:
    def test_crashed_ingest_worker_fails_pending_publishes_and_recovers(self):
        """An unexpected failure inside the ingest loop (here: a health probe
        blowing up) must fail every pending future instead of stranding its
        awaiter, and the next operation must get a fresh worker."""
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                boom = RuntimeError("probe exploded")

                async def bad_probe(loop):
                    service._probe_bank_health = original  # fail exactly once
                    raise boom

                original = service._probe_bank_health
                service._probe_bank_health = bad_probe
                with pytest.raises(RuntimeError, match="ingest worker crashed"):
                    await service.publish(CATALOG)
                # the service self-heals: a fresh worker serves the next publish
                assert (await service.publish(CATALOG)).matched == ("c:q",)
        run(scenario())

    def test_crash_fails_publishers_blocked_on_a_full_queue(self):
        """Publishers blocked in queue.put when the worker crashes enqueue only
        after the drain frees slots; the tick-looped drain must still answer
        every one of them — none may hang."""
        async def scenario():
            async with PubSubService(queue_limit=2, batch_max=2) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                boom = RuntimeError("probe exploded")

                async def bad_probe(loop):
                    service._probe_bank_health = original  # fail exactly once
                    raise boom

                original = service._probe_bank_health
                service._probe_bank_health = bad_probe
                pending = [asyncio.ensure_future(service.publish(CATALOG))
                           for _ in range(6)]
                done, not_done = await asyncio.wait(pending, timeout=5)
                assert not not_done  # every publish resolved, none stranded
                outcomes = [task.exception() for task in done]
                assert any(isinstance(exc, RuntimeError) for exc in outcomes)
                # the service still self-heals afterwards
                assert (await service.publish(CATALOG)).matched == ("c:q",)
        run(scenario())

    def test_stop_completes_even_after_an_ingest_crash(self):
        """A permanently failing probe must not leave stop() half-done: the
        worker crash is swallowed after its futures were failed, sessions are
        still marked closed, and stop stays idempotent."""
        async def scenario():
            service = PubSubService()
            await service.start()
            session = await service.connect("c")

            async def bad_probe(loop):
                raise RuntimeError("boom")

            service._probe_bank_health = bad_probe
            with pytest.raises(RuntimeError, match="ingest worker crashed"):
                await service.publish(CATALOG)
            await asyncio.wait_for(service.stop(), timeout=5)
            assert service.health()["stopped"]
            assert session.closed
            await service.stop()  # still idempotent
        run(scenario())

    def test_snapshot_after_stop_raises_instead_of_losing_state(self):
        async def scenario():
            service = PubSubService()
            session = await service.connect("c")
            await session.subscribe("q", "/a")
            good = service.snapshot()
            assert good["registration_order"] == ["c:q"]
            await service.stop()
            with pytest.raises(ServiceClosedError):
                service.snapshot()  # sessions are gone; empty would be a lie
        run(scenario())


class TestShardedService:
    def test_sharded_service_respawns_killed_worker_between_documents(self):
        async def scenario():
            async with PubSubService(shards=2) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                assert (await service.publish(CATALOG)).matched
                victim = service.bank.worker_status()[0]["pid"]
                os.kill(victim, signal.SIGKILL)
                while service.bank.worker_status()[0]["alive"]:
                    await asyncio.sleep(0.01)
                result = await service.publish(CATALOG)
                assert result.matched == ("c:q",)
                assert service.metrics()["workers_respawned"] == 1
                workers = service.health()["workers"]
                assert all(record["alive"] for record in workers)
        run(scenario())

    def test_sharded_service_matches_in_process_service(self):
        async def scenario():
            documents = [
                f"<catalog><book><price>{price}</price></book></catalog>"
                for price in range(8)
            ]
            outcomes = []
            for shards in (None, 2):
                async with PubSubService(shards=shards) as service:
                    session = await service.connect("c")
                    await session.subscribe("cheap", "/catalog/book[price < 4]")
                    await session.subscribe("all", "/catalog/book")
                    results = await service.publish_many(documents)
                    outcomes.append([result.matched for result in results])
            assert outcomes[0] == outcomes[1]
        run(scenario())
