"""The resource governor: budget validation, the ladder, and enforcement.

Unit tests drive :class:`ResourceGovernor` as the pure state machine it is
(samples in, states and transitions out); the integration tests attach one to
a :class:`PubSubService` with tiny watermarks and a zero sample interval so
every ladder behavior — soft batch shrink, hard-watermark rejection before any
WAL append, stalled-session eviction with the durable cursor surviving —
is deterministic, no timing games.
"""

import asyncio

import pytest

from repro.core.errors import ConfigError
from repro.durable import PublishLog
from repro.service import (
    HARD,
    NORMAL,
    SOFT,
    GovernorSample,
    MemoryBudget,
    OverloadedError,
    PubSubService,
    ResourceGovernor,
)
from repro.service.governor import _StallTracker

CATALOG = "<catalog><book><price>12</price></book></catalog>"


def run(coro):
    return asyncio.run(coro)


def bits_budget(soft=1000, hard=2000):
    return MemoryBudget(soft_bits=soft, hard_bits=hard)


# ---------------------------------------------------------------- validation
class TestBudgetValidation:
    def test_at_least_one_pair_required(self):
        with pytest.raises(ConfigError):
            MemoryBudget()

    @pytest.mark.parametrize("kwargs", [
        {"soft_bits": 10},                        # soft without hard
        {"hard_bits": 10},                        # hard without soft
        {"soft_rss_bytes": 10},
        {"hard_rss_bytes": 10},
        {"soft_bits": 10, "hard_rss_bytes": 20},  # mixed-axis half pairs
    ])
    def test_watermarks_come_in_pairs(self, kwargs):
        with pytest.raises(ConfigError):
            MemoryBudget(**kwargs)

    @pytest.mark.parametrize("soft,hard", [(0, 10), (10, 0), (-1, 10)])
    def test_watermarks_must_be_positive(self, soft, hard):
        with pytest.raises(ConfigError):
            MemoryBudget(soft_bits=soft, hard_bits=hard)

    @pytest.mark.parametrize("soft,hard", [(10, 10), (20, 10)])
    def test_cross_field_soft_below_hard(self, soft, hard):
        with pytest.raises(ConfigError):
            MemoryBudget(soft_bits=soft, hard_bits=hard)
        with pytest.raises(ConfigError):
            MemoryBudget(soft_rss_bytes=soft, hard_rss_bytes=hard)

    def test_valid_budgets_construct(self):
        MemoryBudget(soft_bits=1, hard_bits=2)
        MemoryBudget(soft_rss_bytes=1, hard_rss_bytes=2)
        MemoryBudget(soft_bits=1, hard_bits=2,
                     soft_rss_bytes=3, hard_rss_bytes=4)


class TestGovernorValidation:
    @pytest.mark.parametrize("kwargs", [
        {"hysteresis": 0.0},
        {"hysteresis": 1.5},
        {"stall_grace": -0.1},
        {"retry_after": 0.0},
        {"soft_batch_max": 0},
        {"sample_interval": -1.0},
        {"notification_bits": 0},
        {"max_transitions": 0},
    ])
    def test_each_knob_is_validated(self, kwargs):
        with pytest.raises(ConfigError):
            ResourceGovernor(bits_budget(), **kwargs)

    def test_budget_type_is_validated(self):
        with pytest.raises(ConfigError):
            ResourceGovernor({"soft_bits": 1, "hard_bits": 2})


class TestServiceValidation:
    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"queue_limit": 0},
        {"batch_max": 0},
        {"flush_interval": -0.5},
        {"session_queue_size": 0},
        {"fsync": "sometimes"},
        {"fsync_interval": 0.0},
        {"compact_threshold": -1},
        {"governor": "please"},
    ])
    def test_bad_configuration_fails_construction(self, kwargs):
        with pytest.raises(ConfigError):
            PubSubService(**kwargs)

    def test_config_error_is_a_value_error(self):
        # callers that caught ValueError for batch_max keep working
        with pytest.raises(ValueError):
            PubSubService(batch_max=0)


# ---------------------------------------------------------------- the ladder
class TestLadder:
    def test_starts_normal_and_admitting(self):
        governor = ResourceGovernor(bits_budget())
        assert governor.state == NORMAL
        assert governor.state_name == "normal"
        assert governor.admitting

    def test_climbs_soft_then_hard_on_modeled_bits(self):
        governor = ResourceGovernor(bits_budget(1000, 2000))
        assert governor.observe(GovernorSample(modeled_bits=1000), 1.0) == SOFT
        assert governor.admitting
        assert governor.observe(GovernorSample(modeled_bits=2000), 2.0) == HARD
        assert not governor.admitting

    def test_jumps_straight_to_hard_when_warranted(self):
        governor = ResourceGovernor(bits_budget(1000, 2000))
        assert governor.observe(GovernorSample(modeled_bits=9000), 1.0) == HARD
        # one sample, but both rungs are recorded as a single transition
        (transition,) = governor.transitions()
        assert transition.from_state == "normal"
        assert transition.to_state == "hard"

    def test_rss_axis_triggers_independently(self):
        governor = ResourceGovernor(MemoryBudget(
            soft_bits=10**9, hard_bits=2 * 10**9,
            soft_rss_bytes=1000, hard_rss_bytes=2000))
        sample = GovernorSample(modeled_bits=5, rss_bytes=1500)
        assert governor.observe(sample, 1.0) == SOFT
        (transition,) = governor.transitions()
        assert "rss_bytes" in transition.reason

    def test_missing_rss_sample_never_triggers_rss_watermark(self):
        governor = ResourceGovernor(
            MemoryBudget(soft_rss_bytes=1, hard_rss_bytes=2))
        assert governor.observe(GovernorSample(modeled_bits=10**9), 1.0) \
            == NORMAL

    def test_hysteresis_holds_state_at_the_boundary(self):
        governor = ResourceGovernor(bits_budget(1000, 2000), hysteresis=0.5)
        governor.observe(GovernorSample(modeled_bits=1000), 1.0)
        # below the watermark but above hysteresis x watermark: no flapping
        assert governor.observe(GovernorSample(modeled_bits=700), 2.0) == SOFT
        # below hysteresis x watermark: released
        assert governor.observe(GovernorSample(modeled_bits=400), 3.0) == NORMAL

    def test_recovery_steps_down_one_level_per_sample(self):
        governor = ResourceGovernor(bits_budget(1000, 2000))
        governor.observe(GovernorSample(modeled_bits=5000), 1.0)
        assert governor.state == HARD
        assert governor.observe(GovernorSample(modeled_bits=0), 2.0) == SOFT
        assert governor.observe(GovernorSample(modeled_bits=0), 3.0) == NORMAL
        states = [(t.from_state, t.to_state) for t in governor.transitions()]
        assert states == [("normal", "hard"), ("hard", "soft"),
                          ("soft", "normal")]

    def test_transition_log_is_bounded(self):
        governor = ResourceGovernor(bits_budget(1000, 2000), max_transitions=4)
        for i in range(10):  # flap on purpose
            governor.observe(GovernorSample(modeled_bits=1000), float(2 * i))
            governor.observe(GovernorSample(modeled_bits=0), float(2 * i + 1))
        assert len(governor.transitions()) == 4
        assert governor.snapshot()["transitions"] == 20

    def test_snapshot_reflects_last_sample(self):
        governor = ResourceGovernor(bits_budget())
        governor.observe(
            GovernorSample(modeled_bits=42, rss_bytes=7,
                           backlog_notifications=3), 1.0)
        snapshot = governor.snapshot()
        assert snapshot["state"] == "normal"
        assert snapshot["modeled_bits"] == 42
        assert snapshot["rss_bytes"] == 7
        assert snapshot["backlog_notifications"] == 3


class TestStallTracker:
    def test_grace_expiry_and_reset(self):
        tracker = _StallTracker(grace=2.0)
        assert tracker.update({"a": True, "b": False}, 10.0) == []
        assert tracker.update({"a": True, "b": True}, 11.0) == []
        # a has been pinned 2s: expired; b only 1s
        assert tracker.update({"a": True, "b": True}, 12.0) == ["a"]
        # unpinning resets the clock
        assert tracker.update({"a": False, "b": True}, 12.5) == []
        assert tracker.update({"a": True, "b": True}, 13.0) == ["b"]
        assert tracker.update({"a": True}, 14.9) == []
        assert tracker.update({"a": True}, 15.0) == ["a"]

    def test_departed_sessions_are_purged(self):
        tracker = _StallTracker(grace=5.0)
        tracker.update({"a": True}, 1.0)
        tracker.update({}, 2.0)  # "a" disconnected
        assert "a" not in tracker.pinned_since

    def test_zero_grace_expires_immediately(self):
        tracker = _StallTracker(grace=0.0)
        assert tracker.update({"a": True}, 1.0) == ["a"]


# ---------------------------------------------------------------- enforcement
def tiny_governor(**kwargs):
    """A governor that trips HARD on the first subscribed sample."""
    kwargs.setdefault("sample_interval", 0.0)
    kwargs.setdefault("retry_after", 0.25)
    return ResourceGovernor(MemoryBudget(soft_bits=1, hard_bits=2), **kwargs)


def soft_governor(**kwargs):
    """A governor whose soft watermark any subscription trips, hard never."""
    kwargs.setdefault("sample_interval", 0.0)
    return ResourceGovernor(MemoryBudget(soft_bits=1, hard_bits=10**12),
                            **kwargs)


class TestServiceEnforcement:
    def test_hard_watermark_rejects_publishes(self):
        async def scenario():
            governor = tiny_governor()
            async with PubSubService(governor=governor) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                # the first publish is admitted (the governor has not sampled
                # yet) and its batch triggers the sample that trips HARD
                result = await service.publish(CATALOG)
                assert result.matched == ("c:q",)
                assert service.overloaded
                with pytest.raises(OverloadedError) as info:
                    await service.publish(CATALOG)
                assert info.value.retry_after == 0.25
                metrics = service.metrics()
                assert metrics["publishes_rejected"] == 1
                assert metrics["governor"]["state"] == "hard"
                assert governor.publishes_rejected == 1
        run(scenario())

    def test_publish_many_rejects_the_tail_as_a_unit(self):
        async def scenario():
            governor = tiny_governor()
            async with PubSubService(governor=governor, batch_max=1,
                                     queue_limit=1) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                # queue_limit=1 + batch_max=1: the burst overlaps the worker,
                # so a mid-burst sample trips HARD and the tail is rejected
                with pytest.raises(OverloadedError):
                    await service.publish_many([CATALOG] * 8)
                assert service.metrics()["published"] >= 1
        run(scenario())

    def test_soft_state_shrinks_batch_coalescing(self):
        async def scenario():
            governor = soft_governor(soft_batch_max=1)
            async with PubSubService(governor=governor,
                                     batch_max=32) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                assert service._effective_batch_max() == 32
                await service.publish(CATALOG)  # sample -> SOFT
                assert governor.state == SOFT
                assert service._effective_batch_max() == 1
                # still admitting: soft degrades, it does not reject
                assert (await service.publish(CATALOG)).matched == ("c:q",)
        run(scenario())

    def test_recovery_descends_after_load_drops(self):
        async def scenario():
            # SOFT is entered by notification backlog (one queued match
            # charges 10**9 modeled bits) and left once the consumer drains it
            governor = ResourceGovernor(
                MemoryBudget(soft_bits=10**6, hard_bits=10**12),
                sample_interval=0.0, notification_bits=10**9)
            async with PubSubService(governor=governor) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                await service.publish(CATALOG)  # sample ran pre-delivery
                await service.publish(CATALOG)  # samples the 1-match backlog
                assert governor.state == SOFT
                while session.pending_notifications():
                    await session.next_notification(timeout=1)
                await service.publish(CATALOG)  # backlog drained: steps down
                assert governor.state == NORMAL
                names = [(t.from_state, t.to_state)
                         for t in governor.transitions()]
                assert names == [("normal", "soft"), ("soft", "normal")]
        run(scenario())

    def test_rejected_publish_never_reaches_the_wal(self, tmp_path):
        async def scenario():
            governor = tiny_governor()
            durable = str(tmp_path / "durable")
            async with PubSubService(governor=governor,
                                     durable_dir=durable) as service:
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                admitted = await service.publish(CATALOG)
                with pytest.raises(OverloadedError):
                    await service.publish("<rejected/>")
                return admitted.document_id, durable

        admitted_id, durable = run(scenario())
        with PublishLog(str(tmp_path / "durable" / "publish.wal")) as log:
            scan = log.scan()
        logged = [doc.document_id for doc in scan.documents]
        assert logged == [admitted_id]
        assert not any("rejected" in doc.text for doc in scan.documents)

    def test_stalled_session_is_evicted_and_cursor_survives(self, tmp_path):
        async def scenario():
            # trips HARD only once a notification backlog exists: standing
            # subscription bits stay far under hard_bits, while a single
            # queued notification charges 10**9 modeled bits
            governor = ResourceGovernor(
                MemoryBudget(soft_bits=1, hard_bits=10**6),
                sample_interval=0.0, stall_grace=0.0,
                notification_bits=10**9)
            async with PubSubService(governor=governor,
                                     durable_dir=str(tmp_path / "durable"),
                                     session_queue_size=1) as service:
                laggard = await service.connect("laggard")
                await laggard.subscribe("q", "/catalog/book")
                first = await service.publish(CATALOG)
                # the laggard consumed and durably acked the first match
                note = await laggard.next_notification(timeout=1)
                laggard.ack(note.document_id)
                # the second match pins the 1-slot queue; the third batch's
                # governor round (which samples before filtering) sees that
                # backlog, trips HARD, and the zero stall grace evicts the
                # pinned session before the third document is even filtered
                await service.publish(CATALOG)
                third = await service.publish(CATALOG)
                assert third.matched == ()  # the eviction already unregistered
                assert laggard.evicted
                assert laggard.closed
                metrics = service.metrics()
                assert metrics["clients_evicted"] == 1
                assert metrics["notifications_shed"] == 1
                assert metrics["subscriptions"] == 0  # bank load released
                # the durable cursor survived eviction: a reconnect resumes
                # at-least-once from the acked position
                resumed = await service.connect("laggard")
                assert resumed.cursor == first.document_id
        run(scenario())

    def test_ungoverned_service_is_unchanged(self):
        async def scenario():
            async with PubSubService() as service:
                assert service.governor is None
                assert not service.overloaded
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                for _ in range(5):
                    await service.publish(CATALOG)
                assert service.metrics()["governor"] is None
        run(scenario())

    def test_health_reports_governor_state(self):
        async def scenario():
            governor = soft_governor()
            async with PubSubService(governor=governor) as service:
                assert service.health()["governor_state"] == "normal"
                session = await service.connect("c")
                await session.subscribe("q", "/catalog/book")
                await service.publish(CATALOG)
                assert service.health()["governor_state"] == "soft"
        run(scenario())
