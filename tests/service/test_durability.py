"""Crash-recovery semantics of the durable pub/sub service.

The contract under test: once ``submit``/``publish`` returns, the document is
in the WAL (a crash can no longer lose it); ``recover()`` + ``start()`` replays
the log tail above the acked cursors, re-delivering matches flagged
``duplicate``; deliveries at or below a session's acked cursor happen exactly
once (the replay skips them); and acking drives cursor persistence plus
size-gated compaction.  "Crash" here means dropping the service object without
``stop()`` — the WAL's append-time flush makes that equivalent to ``kill -9``
for file contents (the fault-injection suite kills real processes).
"""

import asyncio
import json
import os

import pytest

from repro.service import PubSubService
from repro.service.server import SNAPSHOT_FILENAME, WAL_FILENAME
from repro.durable import PublishLog
from repro.xmlstream import parse_document
from repro.xmlstream.parse import document_tokens

CATALOG = "<catalog><book><price>12</price></book></catalog>"
NO_MATCH = "<catalog><cd/></catalog>"


def run(coro):
    return asyncio.run(coro)


def _wal_path(tmp_path):
    return os.path.join(str(tmp_path), WAL_FILENAME)


class TestWalWrites:
    def test_publish_is_logged_before_its_outcome_returns(self, tmp_path):
        async def scenario():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                await service.publish(CATALOG)
                assert service.metrics()["wal_appends"] == 1
                assert service.metrics()["wal_size_bytes"] > 0
            with PublishLog(_wal_path(tmp_path)) as log:
                scan = log.scan()
            assert [(d.document_id, d.text) for d in scan.documents] == \
                [(1, CATALOG)]
        run(scenario())

    def test_non_text_publishes_are_logged_as_equivalent_text(self, tmp_path):
        """XMLDocument and pre-tokenized publishes serialize into the WAL so
        replay (which re-tokenizes text) reproduces the same matches."""
        async def scenario():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                await session.subscribe("cheap", "/catalog/book[price < 20]")
                document = parse_document(CATALOG)
                first = await service.publish(document)
                second = await service.publish(
                    document_tokens(CATALOG))  # a one-shot iterator
                assert first.matched == second.matched == ("a:cheap",)
            with PublishLog(_wal_path(tmp_path)) as log:
                texts = [d.text for d in log.scan().documents]
            assert len(texts) == 2
            for text in texts:
                assert list(document_tokens(text)) == \
                    list(document_tokens(CATALOG))
        run(scenario())

    def test_non_durable_service_is_unchanged(self, tmp_path):
        async def scenario():
            async with PubSubService() as service:
                await service.publish(CATALOG)
                assert service.metrics()["wal_appends"] == 0
                assert service.metrics()["wal_size_bytes"] == 0
                assert service.health()["durable"] is False
                with pytest.raises(ValueError, match="needs a path"):
                    service.save_snapshot()
        run(scenario())


class TestRecovery:
    def test_unacked_publishes_replay_with_duplicate_flag(self, tmp_path):
        async def before_crash():
            service = PubSubService(durable_dir=str(tmp_path))
            async with service:
                session = await service.connect("a")
                await session.subscribe("cheap", "/catalog/book[price < 20]")
                service.save_snapshot()
                await service.publish(CATALOG)
                await service.publish(NO_MATCH)
                await service.publish(CATALOG)
                # crash before any ack: drop the service without stop() —
                # the WAL already holds all three documents

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                assert service.metrics()["replayed"] == 3
                session = service.session("a")
                seen = []
                while True:
                    try:
                        seen.append(await session.next_notification(
                            timeout=0.2))
                    except asyncio.TimeoutError:
                        break
                assert [n.document_id for n in seen] == [1, 3]
                assert all(n.duplicate for n in seen)
                assert all(n.matched == ("cheap",) for n in seen)

        run(before_crash())
        run(after_crash())

    def test_acked_documents_are_not_redelivered(self, tmp_path):
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                await session.subscribe("cheap", "/catalog/book[price < 20]")
                service.save_snapshot()
                for _ in range(3):
                    await service.publish(CATALOG)
                session.ack(2)  # documents 1-2 durably consumed

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                session = service.session("a")
                assert session.cursor == 2
                note = await session.next_notification(timeout=1)
                assert note.document_id == 3
                assert note.duplicate
                with pytest.raises(asyncio.TimeoutError):
                    await session.next_notification(timeout=0.2)

        run(before_crash())
        run(after_crash())

    def test_document_ids_continue_above_the_recovered_log(self, tmp_path):
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                for _ in range(4):
                    await service.publish(NO_MATCH)

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                result = await service.publish(NO_MATCH)
                assert result.document_id == 5

        run(before_crash())
        run(after_crash())

    def test_recover_without_snapshot_resumes_cursors_from_the_wal(
            self, tmp_path):
        """No snapshot on disk: sessions are gone, but a reconnecting client
        still resumes at its last logged cursor."""
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                await service.publish(CATALOG)
                session.ack(1)

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                assert service.sessions() == []
                session = await service.connect("a")
                assert session.cursor == 1

        run(before_crash())
        run(after_crash())

    def test_recovery_survives_a_torn_wal_tail(self, tmp_path):
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                await service.connect("a")
                service.save_snapshot()
                await service.publish(CATALOG)

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                assert service.metrics()["replayed"] == 1
                result = await service.publish(NO_MATCH)
                assert result.document_id == 2

        run(before_crash())
        with open(_wal_path(tmp_path), "ab") as handle:
            handle.write(b"\x00\x00\x00\x20torn")  # crash mid-append
        run(after_crash())

    def test_recover_from_an_empty_directory(self, tmp_path):
        async def scenario():
            service = PubSubService.recover(str(tmp_path / "fresh"))
            async with service:
                result = await service.publish(NO_MATCH)
                assert result.document_id == 1
        run(scenario())

    def test_replay_of_an_unparsable_logged_document_is_counted_not_fatal(
            self, tmp_path):
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                await service.publish(NO_MATCH)

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                metrics = service.metrics()
                assert metrics["replayed"] == 1
                assert metrics["replay_failed"] == 1
                # the service is healthy for new traffic despite the bad record
                assert (await service.publish(NO_MATCH)).matched == ()

        run(before_crash())
        with PublishLog(_wal_path(tmp_path)) as log:
            log.append_document(2, "<unclosed>")
        run(after_crash())


class TestAcksAndCompaction:
    def test_acks_persist_cursors_and_trigger_compaction(self, tmp_path):
        async def scenario():
            async with PubSubService(durable_dir=str(tmp_path),
                                     compact_threshold=400) as service:
                session = await service.connect("a")
                big = NO_MATCH.replace("<cd/>", "<cd>" + "x" * 200 + "</cd>")
                for _ in range(4):
                    await service.publish(big)
                assert service.metrics()["wal_size_bytes"] > 400
                session.ack(4)
                metrics = service.metrics()
                assert metrics["acks"] == 1
                assert metrics["compactions"] == 1
            with PublishLog(_wal_path(tmp_path)) as log:
                scan = log.scan()
            assert scan.documents == []  # everything acked was discarded
            assert scan.cursors == {"a": 4}
        run(scenario())

    def test_cursor_never_regresses(self, tmp_path):
        async def scenario():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                session.ack(5)
                session.ack(3)  # a stale re-ack after replay
                assert session.cursor == 5
        run(scenario())

    def test_ack_on_a_non_durable_service_is_in_memory_only(self):
        async def scenario():
            async with PubSubService() as service:
                session = await service.connect("a")
                session.ack(7)
                assert session.cursor == 7
                assert service.metrics()["acks"] == 1
        run(scenario())


class TestSnapshotPersistence:
    def test_save_snapshot_is_atomic_and_readable(self, tmp_path):
        async def scenario():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                await session.subscribe("books", "/catalog/book")
                path = service.save_snapshot()
                assert path == os.path.join(str(tmp_path), SNAPSHOT_FILENAME)
                assert not os.path.exists(path + ".tmp")
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)
                assert data["schema"] == 2
                assert data["sessions"][0]["client"] == "a"
        run(scenario())

    def test_subscriptions_survive_the_crash_via_the_snapshot(self, tmp_path):
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                await session.subscribe("cheap", "/catalog/book[price < 20]")
                service.save_snapshot()

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                result = await service.publish(CATALOG)
                assert result.matched == ("a:cheap",)

        run(before_crash())
        run(after_crash())

    def test_wal_cursor_newer_than_snapshot_wins(self, tmp_path):
        """Acks land in the WAL continuously but snapshots are periodic: a
        cursor acked after the last save must still be honored at recovery."""
        async def before_crash():
            async with PubSubService(durable_dir=str(tmp_path)) as service:
                session = await service.connect("a")
                await session.subscribe("cheap", "/catalog/book[price < 20]")
                service.save_snapshot()  # snapshot records cursor 0
                await service.publish(CATALOG)
                session.ack(1)  # after the save: only the WAL knows

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with service:
                assert service.session("a").cursor == 1
                with pytest.raises(asyncio.TimeoutError):
                    await service.session("a").next_notification(timeout=0.2)

        run(before_crash())
        run(after_crash())
