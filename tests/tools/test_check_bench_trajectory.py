"""The benchmark regression gate must demonstrably fail on a regressed trajectory.

``scripts/check_bench_trajectory.py`` is CI's only defense against silently merging
a perf regression, so the gate itself is tested here against doctored trajectories:
a healthy file passes (exit 0), lowering any single speedup ratio below its floor
fails (exit 1) and names the violated floor, smoke runs never satisfy or trip the
gate, and structurally broken files fail rather than passing vacuously.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)))), "scripts", "check_bench_trajectory.py")

spec = importlib.util.spec_from_file_location("check_bench_trajectory", _SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def _throughput_run(*, smoke=False, compiled_speedup=6.0, fast_speedup=80.0,
                    timestamp="2026-01-01T00:00:00Z"):
    return {
        "benchmark": "filterbank_throughput",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"workload": "topic", "engine": "indexed", "subscriptions": 1000},
            {"workload": "prefix", "engine": "compiled", "subscriptions": 100,
             "speedup_vs_indexed": 1.1},  # sub-floor at a smaller size is fine
            {"workload": "prefix", "engine": "compiled", "subscriptions": 1000,
             "speedup_vs_indexed": compiled_speedup},
            {"workload": "prefix", "engine": "fast", "subscriptions": 1000,
             "speedup_vs_indexed": 900.0, "speedup_vs_compiled": fast_speedup},
        ],
    }


def _churn_run(*, smoke=False, speedup=22.0, timestamp="2026-01-01T00:01:00Z"):
    return {
        "benchmark": "filterbank_churn",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"variant": "incremental", "warm_subscriptions": 100,
             "speedup_vs_rebuild": 6.0},  # below floor, but not the largest size
            {"variant": "rebuild", "warm_subscriptions": 1000},
            {"variant": "incremental", "warm_subscriptions": 1000,
             "speedup_vs_rebuild": speedup},
        ],
    }


def _service_run(*, smoke=False, speedup=2.5, timestamp="2026-01-01T00:02:00Z"):
    return {
        "benchmark": "service_throughput",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"mode": "serial", "documents": 400},
            {"mode": "batched", "documents": 100, "speedup_vs_serial": 1.2},
            {"mode": "batched", "documents": 400, "speedup_vs_serial": speedup},
        ],
    }


def _wire_run(*, smoke=False, speedup=2.4, timestamp="2026-01-01T00:03:00Z"):
    return {
        "benchmark": "wire_throughput",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"mode": "request_response", "documents": 500},
            {"mode": "pipelined", "documents": 150,
             "speedup_vs_request_response": 1.1},  # sub-floor at smaller size
            {"mode": "pipelined", "documents": 500,
             "speedup_vs_request_response": speedup},
        ],
    }


def _memory_run(*, smoke=False, ratio=3.5, timestamp="2026-01-01T00:04:00Z"):
    return {
        "benchmark": "memory_model",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"subscriptions": 100, "bound_over_measured": 0.8},  # smaller size
            {"subscriptions": 1000, "bound_over_measured": ratio},
        ],
    }


def _wal_run(*, smoke=False, ratio=0.9, timestamp="2026-01-01T00:05:00Z"):
    return {
        "benchmark": "wal_throughput",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"mode": "memory", "documents": 1000},
            {"mode": "wal_interval", "documents": 300,
             "throughput_vs_memory": 0.3},  # sub-floor at smaller size is fine
            {"mode": "wal_interval", "documents": 1000,
             "throughput_vs_memory": ratio},
            {"mode": "wal_always", "documents": 1000,
             "throughput_vs_memory": 0.1},  # unasserted: hardware truth
        ],
    }


def _ceiling_run(*, smoke=False, ratio=2.0, timestamp="2026-01-01T00:06:00Z"):
    return {
        "benchmark": "memory_ceiling",
        "smoke": smoke,
        "timestamp": timestamp,
        "results": [
            {"subscriptions": 100, "ceiling_over_modeled": 0.9},  # smaller size
            {"subscriptions": 1000, "ceiling_over_modeled": ratio},
        ],
    }


def _healthy():
    return {"schema": 2,
            "runs": [_throughput_run(), _churn_run(), _service_run(),
                     _wire_run(), _memory_run(), _wal_run(), _ceiling_run()]}


def _write(tmp_path, data) -> str:
    path = tmp_path / "BENCH_filterbank.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestGateVerdicts:
    def test_healthy_trajectory_passes(self, tmp_path, capsys):
        assert gate.main([_write(tmp_path, _healthy())]) == 0
        out = capsys.readouterr().out
        assert "8/8 floors checked, none violated" in out

    @pytest.mark.parametrize("doctor, floor", [
        (lambda runs: runs.__setitem__(0, _throughput_run(compiled_speedup=2.9)),
         "compiled_vs_indexed"),
        (lambda runs: runs.__setitem__(0, _throughput_run(fast_speedup=4.5)),
         "fast_vs_compiled"),
        (lambda runs: runs.__setitem__(1, _churn_run(speedup=9.9)),
         "incremental_vs_rebuild"),
        (lambda runs: runs.__setitem__(2, _service_run(speedup=1.9)),
         "batched_vs_serial"),
        (lambda runs: runs.__setitem__(3, _wire_run(speedup=1.8)),
         "pipelined_vs_request_response"),
        (lambda runs: runs.__setitem__(4, _memory_run(ratio=0.97)),
         "bound_over_measured"),
        (lambda runs: runs.__setitem__(5, _wal_run(ratio=0.4)),
         "wal_overhead"),
        (lambda runs: runs.__setitem__(6, _ceiling_run(ratio=0.95)),
         "ceiling_over_modeled"),
    ])
    def test_each_floor_violation_fails(self, tmp_path, capsys, doctor, floor):
        data = _healthy()
        doctor(data["runs"])
        assert gate.main([_write(tmp_path, data)]) == 1
        captured = capsys.readouterr()
        assert floor in captured.err
        assert "REGRESSION" in captured.err

    def test_latest_full_run_wins(self, tmp_path):
        """A newer full-size run supersedes an older healthy one — a regression
        appended after a good run must still fail."""
        data = _healthy()
        data["runs"].append(_throughput_run(
            compiled_speedup=1.5, timestamp="2026-02-01T00:00:00Z"))
        assert gate.main([_write(tmp_path, data)]) == 1
        # and a healthy run appended after the regression recovers the gate
        data["runs"].append(_throughput_run(
            timestamp="2026-03-01T00:00:00Z"))
        assert gate.main([_write(tmp_path, data)]) == 0

    def test_smoke_runs_are_ignored_by_the_gate(self, tmp_path):
        """A regressed smoke entry after a healthy full run must not trip the
        floor checks (smoke sizes make the ratios meaningless) — and smoke
        entries can never satisfy them either.  ``--allow-smoke`` scopes the
        check to the floors alone (the hygiene check is tested separately)."""
        data = _healthy()
        data["runs"].append(_throughput_run(
            smoke=True, compiled_speedup=0.5, timestamp="2026-02-01T00:00:00Z"))
        assert gate.main([_write(tmp_path, data), "--allow-smoke"]) == 0

        smoke_only = {"schema": 2, "runs": [
            _throughput_run(smoke=True), _churn_run(smoke=True),
            _service_run(smoke=True), _wire_run(smoke=True),
            _memory_run(smoke=True), _wal_run(smoke=True),
            _ceiling_run(smoke=True)]}
        assert gate.main([_write(tmp_path, smoke_only), "--allow-smoke"]) == 1

    def test_missing_benchmark_fails_by_default_and_warns_when_allowed(
            self, tmp_path, capsys):
        data = {"schema": 2, "runs": [_throughput_run(), _churn_run()]}
        path = _write(tmp_path, data)
        assert gate.main([path]) == 1
        assert gate.main([path, "--allow-missing"]) == 0
        assert "WARNING" in capsys.readouterr().err


class TestSmokeHygiene:
    """Committed smoke runs fail gate mode; --prune-smoke repairs the file."""

    def test_committed_smoke_run_fails_the_gate(self, tmp_path, capsys):
        data = _healthy()
        data["runs"].append(_service_run(
            smoke=True, timestamp="2026-02-01T00:00:00Z"))
        assert gate.main([_write(tmp_path, data)]) == 1
        err = capsys.readouterr().err
        assert "smoke run(s) committed" in err
        assert "--prune-smoke" in err

    def test_allow_smoke_downgrades_the_hygiene_check(self, tmp_path):
        data = _healthy()
        data["runs"].append(_service_run(
            smoke=True, timestamp="2026-02-01T00:00:00Z"))
        assert gate.main([_write(tmp_path, data), "--allow-smoke"]) == 0

    def test_prune_smoke_rewrites_and_gate_recovers(self, tmp_path, capsys):
        data = _healthy()
        data["runs"].insert(1, _churn_run(
            smoke=True, timestamp="2026-02-01T00:00:00Z"))
        data["runs"].append(_wire_run(
            smoke=True, timestamp="2026-02-01T00:01:00Z"))
        path = _write(tmp_path, data)
        assert gate.main([path]) == 1
        assert gate.main([path, "--prune-smoke"]) == 0
        assert "pruned 2 smoke run(s)" in capsys.readouterr().out
        rewritten = json.loads(open(path).read())
        assert len(rewritten["runs"]) == 7
        assert not any(run.get("smoke") for run in rewritten["runs"])
        assert rewritten["schema"] == 2
        assert gate.main([path]) == 0  # hygiene restored, floors intact

    def test_prune_smoke_is_a_no_op_on_a_clean_file(self, tmp_path, capsys):
        path = _write(tmp_path, _healthy())
        before = json.loads(open(path).read())
        assert gate.main([path, "--prune-smoke"]) == 0
        assert "pruned 0 smoke run(s)" in capsys.readouterr().out
        assert json.loads(open(path).read())["runs"] == before["runs"]

    def test_summary_only_reports_smoke_without_failing(self, tmp_path):
        """The reporting step must keep working on a freshly appended working
        copy that legitimately contains smoke entries."""
        data = _healthy()
        data["runs"].append(_service_run(smoke=True))
        target = tmp_path / "summary.md"
        assert gate.main([_write(tmp_path, data), "--summary-only",
                          "--github-summary", str(target)]) == 0
        assert "| yes |" in target.read_text()


class TestStructuralValidation:
    def test_unreadable_and_invalid_files_fail(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "missing.json")]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert gate.main([str(bad)]) == 1
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"schema": 1, "results": []}))
        assert gate.main([str(legacy)]) == 1
        assert "ERROR" in capsys.readouterr().err

    def test_repository_trajectory_passes_the_gate(self):
        """The committed trajectory must itself satisfy every floor and contain
        no smoke runs — this is the invariant the CI gate enforces on every PR."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        data = gate.load_trajectory(os.path.join(root, "BENCH_filterbank.json"))
        _rows, violations = gate.check_trajectory(data)
        assert violations == []
        assert gate.smoke_run_indices(data) == []


class TestMarkdownSummary:
    def test_summary_lists_recent_runs_with_ratios(self, tmp_path):
        summary = gate.format_markdown_summary(_healthy(), last=3)
        assert "| memory_model |" in summary
        assert "| wal_throughput |" in summary
        assert "| memory_ceiling |" in summary
        assert "bound_over_measured 3.5x" in summary
        assert "wal_overhead 0.9x" in summary
        assert "ceiling_over_modeled 2.0x" in summary
        assert "filterbank_throughput" not in summary  # trimmed by last=3

    def test_summary_only_never_gates(self, tmp_path):
        """The CI reporting step must not steal a regression failure from the
        dedicated gate step: --summary-only exits 0 even on a regressed file."""
        data = _healthy()
        data["runs"][0] = _throughput_run(compiled_speedup=0.1)
        target = tmp_path / "summary.md"
        path = _write(tmp_path, data)
        assert gate.main([path, "--summary-only",
                          "--github-summary", str(target)]) == 0
        assert "Benchmark trajectory" in target.read_text()
        assert gate.main([path]) == 1  # the real gate still fails

    def test_github_summary_file_is_appended(self, tmp_path):
        target = tmp_path / "summary.md"
        target.write_text("existing\n")
        assert gate.main([_write(tmp_path, _healthy()),
                          "--github-summary", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("existing\n")
        assert "Benchmark trajectory" in content
