"""Tests for the query/document workload generators and synthetic datasets."""

import random

import pytest

from repro.core import classify, is_redundancy_free, query_frontier_size
from repro.semantics import bool_eval
from repro.workloads import (
    PAPER_QUERIES,
    all_paper_queries,
    alternating_path_query,
    auction_site,
    balanced_query,
    book_catalog,
    deep_nested_predicate_query,
    deep_padded_document,
    descendant_branch_query,
    dissemination_queries,
    frontier_sweep_queries,
    long_text_document,
    matching_document_for_frontier_query,
    nested_sections,
    paper_query,
    path_query,
    recursive_branch_document,
    shared_prefix_feed,
    shared_prefix_subscriptions,
    value_predicate_query,
    wide_text_document,
)
from repro.xpath import parse_query


class TestPaperQueries:
    def test_all_paper_queries_parse(self):
        queries = all_paper_queries()
        assert len(queries) == len(PAPER_QUERIES)
        for key, query in queries.items():
            assert query.size() >= 1, key

    def test_main_theorem_queries_are_redundancy_free(self):
        for key in ("thm42_frontier", "thm45_recursion", "thm46_depth",
                    "fig9_canonical", "sec72_example"):
            assert is_redundancy_free(paper_query(key)), key

    def test_counterexample_queries_are_not_redundancy_free(self):
        for key in ("sec5_redundant", "sec5_subsumption", "remark_wildcard",
                    "sec5_not_leaf_value"):
            assert not is_redundancy_free(paper_query(key)), key


class TestQueryGenerators:
    def test_balanced_query_shape(self):
        query = balanced_query(2, 3)
        assert query.size() == 7  # a complete binary tree of depth 3: 1 + 2 + 4 nodes
        assert classify(query).redundancy_free
        # frontier at a deepest leaf: the leaf + its sibling + the parent's sibling
        assert query_frontier_size(query) == (2 - 1) * (3 - 1) + 1 == 3

    def test_path_query(self):
        query = path_query(5)
        assert query.size() == 5
        assert query_frontier_size(query) == 1

    def test_descendant_branch_query(self):
        query = descendant_branch_query(4)
        assert query_frontier_size(query) == 4
        assert classify(query).recursive_xpath

    def test_alternating_path_query_axes(self):
        query = alternating_path_query(4)
        axes = [node.axis for node in query.non_root_nodes()]
        assert axes == ["child", "descendant", "child", "descendant"]

    def test_value_predicate_query(self):
        query = value_predicate_query(3)
        assert query.size() == 4
        assert is_redundancy_free(query)

    def test_deep_nested_predicate_query(self):
        query = deep_nested_predicate_query(5)
        assert query.depth() == 5
        assert query_frontier_size(query) == 1

    def test_frontier_sweep_queries(self):
        sweep = frontier_sweep_queries([2, 4, 8])
        for size, query in sweep.items():
            assert query_frontier_size(query) == size


class TestDocumentGenerators:
    def test_recursive_branch_document_matches_only_when_requested(self):
        query = descendant_branch_query(3)
        names = [f"b{i}" for i in range(3)]
        matching = recursive_branch_document(names, 5, match_at=3)
        non_matching = recursive_branch_document(names, 5, match_at=None)
        assert bool_eval(query, matching)
        assert not bool_eval(query, non_matching)

    def test_recursive_branch_document_depth(self):
        doc = recursive_branch_document(["b0"], 6, match_at=None)
        assert doc.depth() == 7  # six nested r elements plus the b child

    def test_deep_padded_document(self):
        doc = deep_padded_document(["b", "c"], 10)
        assert doc.depth() == 13

    def test_matching_document_for_frontier_query(self):
        names = [f"c{i}" for i in range(4)]
        query = frontier_sweep_queries([4])[4]
        doc = matching_document_for_frontier_query(names)
        assert bool_eval(query, doc)

    def test_wide_and_long_text_documents(self):
        assert wide_text_document(25).node_count() == 26
        assert len(long_text_document(300).top_element().string_value()) == 300


class TestDatasets:
    def test_book_catalog_structure(self):
        catalog = book_catalog(12, seed=5)
        assert len(catalog.top_element().element_children()) == 12
        assert bool_eval(parse_query("/catalog/book[price]"), catalog)

    def test_book_catalog_deterministic(self):
        assert book_catalog(5, seed=9).structurally_equal(book_catalog(5, seed=9))
        assert not book_catalog(5, seed=9).structurally_equal(book_catalog(5, seed=10))

    def test_auction_site_structure(self):
        site = auction_site(9, seed=2)
        assert bool_eval(parse_query("//open_auction[initial and current]"), site)
        assert bool_eval(parse_query("/site/regions/europe/item"), site)

    def test_nested_sections_recursion(self):
        doc = nested_sections(6)
        assert doc.depth() >= 6
        assert bool_eval(parse_query("//section[title and p]"), doc)

    def test_dissemination_queries_parse_and_are_supported(self):
        from repro.core import StreamingFilter

        for text in dissemination_queries():
            StreamingFilter(parse_query(text))  # must not raise


class TestSharedPrefixWorkload:
    def test_subscriptions_share_the_prefix_and_are_supported(self):
        from repro.core import StreamingFilter

        subs = shared_prefix_subscriptions(20, branching=3, suffix_depth=2, seed=1)
        assert len(subs) == 20
        for text in subs:
            assert text.startswith("/catalog/product/")
            StreamingFilter(parse_query(text))  # must not raise

    def test_subscriptions_are_deterministic_and_overlap_scales_with_branching(self):
        assert shared_prefix_subscriptions(10, seed=3) == \
            shared_prefix_subscriptions(10, seed=3)
        # a 1-letter alphabet collapses every suffix path onto one trie chain
        narrow = shared_prefix_subscriptions(10, branching=1, value_range=1, seed=2)
        assert len({text.split("[")[0] for text in narrow}) == 1

    def test_descendant_and_wildcard_knobs(self):
        subs = shared_prefix_subscriptions(
            12, descendant_fraction=1.0, wildcard_fraction=1.0, seed=4)
        assert all("//*" in text for text in subs)

    def test_feed_matches_subscription_trie(self):
        subs = shared_prefix_subscriptions(30, branching=2, suffix_depth=2,
                                           value_range=1, seed=5)
        feed = shared_prefix_feed(40, branching=2, suffix_depth=2, seed=6)
        assert any(bool_eval(parse_query(text), feed) for text in subs)

    def test_feed_recursion_knob_controls_depth(self):
        shallow = shared_prefix_feed(5, suffix_depth=2, recursion=1, seed=7)
        deep = shared_prefix_feed(5, suffix_depth=2, recursion=4, seed=7)
        # prefix (2) + recursion * suffix chain (2) + the value leaf
        assert shallow.depth() == 2 + 1 * 2 + 1
        assert deep.depth() == 2 + 4 * 2 + 1
        with pytest.raises(ValueError):
            shared_prefix_feed(1, recursion=0)

    def test_recursive_feed_agrees_across_engines(self):
        from repro.baselines import NaiveFilterBank
        from repro.core import CompiledFilterBank, FilterBank

        subs = shared_prefix_subscriptions(15, branching=2, suffix_depth=2,
                                           descendant_fraction=0.4, seed=8)
        feed = shared_prefix_feed(12, branching=2, suffix_depth=2, recursion=3, seed=9)
        banks = [FilterBank(), CompiledFilterBank(), NaiveFilterBank()]
        for index, text in enumerate(subs):
            for bank in banks:
                bank.register(f"q{index}", parse_query(text))
        results = [bank.filter_document(feed) for bank in banks]
        assert results[0].matched == results[1].matched == results[2].matched
        assert results[0].per_query_stats == results[1].per_query_stats \
            == results[2].per_query_stats


class TestWireTraffic:
    """The per-connection split of the bursty service-traffic script."""

    def _scripts(self, **overrides):
        from repro.workloads import wire_traffic
        config = dict(connections=4, subscriptions_per_client=3, topics=10,
                      burst=5, churn_fraction=0.2, seed=3)
        config.update(overrides)
        return wire_traffic(60, **config)

    def test_split_preserves_per_client_validity(self):
        """Each connection's script must be self-contained and replayable in
        isolation: only its own client's ops, every unsubscribe preceded by
        the matching subscribe, no name reused."""
        scripts = self._scripts()
        assert len(scripts) == 4
        for index, script in enumerate(scripts):
            live, ever = set(), set()
            for op in script:
                assert op[1] == f"client{index}"
                if op[0] == "subscribe":
                    assert op[2] not in ever  # names never reused
                    live.add(op[2])
                    ever.add(op[2])
                elif op[0] == "unsubscribe":
                    assert op[2] in live
                    live.discard(op[2])

    def test_totals_match_the_flat_script(self):
        from repro.workloads import service_traffic, traffic_summary, \
            wire_summary
        flat = traffic_summary(service_traffic(
            60, clients=4, subscriptions_per_client=3, topics=10, burst=5,
            churn_fraction=0.2, seed=3))
        split = wire_summary(self._scripts())
        assert split["publish"] == flat["publish"] == 60
        assert split["subscribe"] == flat["subscribe"]
        assert split["unsubscribe"] == flat["unsubscribe"]
        assert split["connections"] == 4

    def test_split_setup_isolates_leading_subscribes(self):
        from repro.workloads import split_setup
        for script in self._scripts():
            setup, rest = split_setup(script)
            assert [op[0] for op in setup] == ["subscribe"] * len(setup)
            assert len(setup) >= 3  # the initial per-client subscriptions
            assert not rest or rest[0][0] != "subscribe"

    def test_churn_free_scripts_are_publish_only_after_setup(self):
        from repro.workloads import split_setup
        for script in self._scripts(churn_fraction=0.0):
            _setup, rest = split_setup(script)
            assert all(op[0] == "publish" for op in rest)

    def test_zero_connections_rejected(self):
        with pytest.raises(ValueError):
            self._scripts(connections=0)
