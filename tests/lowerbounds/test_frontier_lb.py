"""Tests for the query-frontier-size lower-bound construction (Theorems 4.2 / 7.1)."""

import pytest

from repro.core import query_frontier_size
from repro.lowerbounds import (
    build_frontier_family,
    measure_filter_cut_state,
    verify_frontier_family,
)
from repro.semantics import bool_eval
from repro.xmlstream import is_well_formed
from repro.xpath import parse_query

GENERAL_QUERIES = [
    "/a[c[.//e and f] and b > 5]",     # Theorem 4.2's query
    "/r[c0 and c1 and c2]",            # flat conjunction, FS = 3
    "//a[b and c]",                    # recursive query, FS = 2
    "/a[b > 12 and .//b < 3]",         # value-separated same-name leaves
    "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",   # the Fig. 9 query
]


class TestFamilyConstruction:
    def test_family_size_is_two_to_the_frontier(self):
        query = parse_query("/a[c[.//e and f] and b > 5]")
        family = build_frontier_family(query)
        assert family.frontier_size == query_frontier_size(query) == 3
        assert len(family.pairs) == 2 ** 3
        assert family.expected_bound_bits == 3

    def test_all_diagonal_documents_are_well_formed_and_match(self):
        query = parse_query("/a[c[.//e and f] and b > 5]")
        family = build_frontier_family(query)
        for pair in family.pairs:
            events = list(pair.alpha) + list(pair.beta)
            assert is_well_formed(events)
            document = family.document_for(pair)
            assert document is not None
            assert bool_eval(query, document), pair.label

    def test_cross_documents_do_not_match(self):
        """Claim 7.3: for distinct subsets one of the crossings fails to match."""
        query = parse_query("/a[c[.//e and f] and b > 5]")
        family = build_frontier_family(query)
        for i, first in enumerate(family.pairs):
            for second in family.pairs[:i]:
                one = family.cross_document(first, second)
                two = family.cross_document(second, first)
                failures = 0
                if one is None or not bool_eval(query, one):
                    failures += 1
                if two is None or not bool_eval(query, two):
                    failures += 1
                assert failures >= 1, (first.label, second.label)

    def test_prefix_depends_only_on_subset(self):
        query = parse_query("/r[c0 and c1 and c2]")
        family = build_frontier_family(query)
        # the prefix of the empty subset carries no frontier subtree start tags: only
        # the envelope, the wrapper element, and its canonical leading text value
        empty_pair = family.pairs[family.subsets.index((0, 0, 0))]
        from repro.xmlstream import StartElement

        started = [e.name for e in empty_pair.alpha if isinstance(e, StartElement)]
        assert started == ["r"]
        # the full subset pushes every frontier subtree into the prefix
        full_pair = family.pairs[family.subsets.index((1, 1, 1))]
        full_started = [e.name for e in full_pair.alpha if isinstance(e, StartElement)]
        assert sorted(full_started) == ["c0", "c1", "c2", "r"]

    def test_max_subsets_truncation(self):
        query = parse_query("/r[c0 and c1 and c2]")
        family = build_frontier_family(query, max_subsets=4)
        assert len(family.pairs) == 4


class TestFamilyVerification:
    @pytest.mark.parametrize("text", GENERAL_QUERIES)
    def test_fooling_set_property_holds(self, text):
        query = parse_query(text)
        family = build_frontier_family(query, max_subsets=32)
        check = verify_frontier_family(family, max_cross_checks=200)
        assert check.valid, check.violations[:5]

    @pytest.mark.parametrize("text", GENERAL_QUERIES)
    def test_certified_bound_equals_frontier_size(self, text):
        query = parse_query(text)
        family = build_frontier_family(query, max_subsets=64)
        if len(family.pairs) == 2 ** family.frontier_size:
            assert family.expected_bound_bits == query_frontier_size(query)


class TestFilterAgainstTheBound:
    def test_filter_state_at_cut_meets_the_lower_bound(self):
        """Our streaming filter, run over the adversarial family, must carry at least
        FS(Q) frontier tuples across the prefix/suffix cut (it cannot beat the bound),
        and it must still answer correctly."""
        query = parse_query("/a[c[.//e and f] and b > 5]")
        family = build_frontier_family(query)
        expected = [True] * len(family.pairs)
        measurement = measure_filter_cut_state(query, family.pairs, expected)
        assert measurement.decisions_correct
        assert measurement.max_frontier_tuples >= family.frontier_size
        assert measurement.max_state_bits >= family.expected_bound_bits
