"""Tests for the communication-complexity framework (fooling sets, DISJ, protocol sim)."""

from repro.lowerbounds import (
    FoolingPair,
    disjointness_instances,
    disjointness_lower_bound_bits,
    simulate_protocol,
    verify_fooling_set,
)


class TestFoolingSetVerifier:
    def test_valid_fooling_set_for_equality(self):
        """The classic EQ fooling set: {(x, x)} over 2-bit strings."""
        pairs = [FoolingPair(alpha=a, beta=a, label=a) for a in ("00", "01", "10", "11")]

        def evaluate(alpha, beta):
            return alpha == beta

        check = verify_fooling_set(pairs, evaluate, expected_output=True)
        assert check.valid
        assert check.size == 4
        assert check.communication_bound_bits == 2.0

    def test_invalid_fooling_set_is_rejected(self):
        """Pairs that evaluate identically on crossings are not a fooling set."""
        pairs = [FoolingPair(alpha=a, beta="x", label=a) for a in ("0", "1")]

        def evaluate(alpha, beta):
            return True  # constant function: crossings never differ

        check = verify_fooling_set(pairs, evaluate, expected_output=True)
        assert not check.valid
        assert check.violations

    def test_diagonal_violation_detected(self):
        pairs = [FoolingPair(alpha="0", beta="0"), FoolingPair(alpha="1", beta="1")]

        def evaluate(alpha, beta):
            return alpha == beta == "0"

        check = verify_fooling_set(pairs, evaluate, expected_output=True)
        assert not check.valid

    def test_malformed_crossings_may_still_be_fooling(self):
        """Condition (2) only needs ONE of the two crossings to be well formed and
        different."""
        pairs = [FoolingPair(alpha="a", beta="a"), FoolingPair(alpha="b", beta="b")]

        def evaluate(alpha, beta):
            if (alpha, beta) == ("a", "b"):
                return None  # malformed
            return alpha == beta

        check = verify_fooling_set(pairs, evaluate, expected_output=True)
        assert check.valid

    def test_cross_check_sampling_cap(self):
        pairs = [FoolingPair(alpha=str(i), beta=str(i)) for i in range(30)]
        check = verify_fooling_set(
            pairs, lambda a, b: a == b, expected_output=True, max_cross_checks=50
        )
        assert check.valid


class TestDisjointness:
    def test_exhaustive_instances_for_small_r(self):
        instances = disjointness_instances(3)
        assert len(instances) == 64
        for s, t, intersecting in instances:
            assert intersecting == any(a and b for a, b in zip(s, t))

    def test_sampled_instances_for_large_r(self):
        instances = disjointness_instances(40, count=25)
        assert len(instances) == 25
        assert all(len(s) == 40 and len(t) == 40 for s, t, _ in instances)

    def test_sampling_is_deterministic(self):
        assert disjointness_instances(20, count=10, seed=3) == \
            disjointness_instances(20, count=10, seed=3)

    def test_lower_bound_value(self):
        assert disjointness_lower_bound_bits(17) == 17


class TestProtocolSimulation:
    def test_streaming_sum_protocol(self):
        """A toy streaming algorithm (running sum) simulated over three segments."""

        class Summer:
            def __init__(self):
                self.total = 0

        simulation = simulate_protocol(
            Summer,
            segments=[[1, 2], [3], [4, 5]],
            feed=lambda alg, item: setattr(alg, "total", alg.total + item),
            finish=lambda alg: alg.total,
            state_bits=lambda alg: max(alg.total.bit_length(), 1),
        )
        assert simulation.output == 15
        assert simulation.rounds == 3
        assert len(simulation.state_bits_per_cut) == 2
        assert simulation.max_state_bits >= 2
        assert simulation.total_communication_bits == sum(simulation.state_bits_per_cut)
