"""Tests for the recursion-depth (Thm 4.5/7.4) and document-depth (Thm 4.6/7.14) bounds."""

import pytest

from repro.core import UnsupportedQueryError
from repro.lowerbounds import (
    build_depth_family,
    build_recursion_family,
    build_simple_depth_family,
    build_simple_recursion_family,
    measure_filter_cut_state,
    verify_depth_family,
    verify_recursion_family,
)
from repro.semantics import bool_eval
from repro.xmlstream import compact_stream, is_well_formed
from repro.xpath import parse_query


class TestSimpleRecursionFamily:
    def test_paper_example_document(self):
        """The D_{110,010} document of Fig. 5."""
        family = build_simple_recursion_family(3, max_instances=None)
        instance = next(i for i in family.instances if i.s == (1, 1, 0) and i.t == (0, 1, 0))
        stream = list(instance.alpha) + list(instance.beta)
        assert compact_stream(stream) == \
            "<$><a><b></b><a><b></b><a></a><c></c></a></a></$>"
        assert instance.intersecting is True

    def test_match_iff_intersecting_exhaustively(self):
        family = build_simple_recursion_family(3, max_instances=None)
        check = verify_recursion_family(family)
        assert check.valid, check.violations[:5]
        assert check.instances == 64

    def test_recursion_depth_never_exceeds_r(self):
        family = build_simple_recursion_family(4, max_instances=32)
        check = verify_recursion_family(family)
        assert check.valid
        assert check.max_recursion_depth <= 4

    def test_alpha_depends_only_on_s(self):
        family = build_simple_recursion_family(3, max_instances=None)
        by_s = {}
        for instance in family.instances:
            by_s.setdefault(instance.s, set()).add(instance.alpha)
        assert all(len(alphas) == 1 for alphas in by_s.values())

    def test_beta_depends_only_on_t(self):
        family = build_simple_recursion_family(3, max_instances=None)
        by_t = {}
        for instance in family.instances:
            by_t.setdefault(instance.t, set()).add(instance.beta)
        assert all(len(betas) == 1 for betas in by_t.values())

    def test_filter_state_grows_with_r(self):
        """Running our filter over the adversarial inputs: the state at the cut must
        grow linearly with r (it cannot beat the Omega(r) bound)."""
        query = parse_query("//a[b and c]")
        small = build_simple_recursion_family(2, max_instances=16)
        large = build_simple_recursion_family(8, max_instances=16)
        small_state = measure_filter_cut_state(
            query, small.instances, [i.intersecting for i in small.instances]
        )
        large_state = measure_filter_cut_state(
            query, large.instances, [i.intersecting for i in large.instances]
        )
        assert small_state.decisions_correct and large_state.decisions_correct
        assert large_state.max_frontier_tuples >= 4 * small_state.max_frontier_tuples / 2
        assert large_state.max_frontier_tuples >= large.r


class TestGeneralRecursionFamily:
    def test_section_72_example_query(self):
        query = parse_query("//d[f and a[b and c]]")
        family = build_recursion_family(query, 3, max_instances=None)
        check = verify_recursion_family(family, check_depth=False)
        assert check.valid, check.violations[:5]

    def test_instances_are_well_formed(self):
        query = parse_query("//d[f and a[b and c]]")
        family = build_recursion_family(query, 2, max_instances=None)
        for instance in family.instances:
            assert is_well_formed(list(instance.alpha) + list(instance.beta))

    def test_another_recursive_query(self):
        query = parse_query("//a[b and c]")
        family = build_recursion_family(query, 3, max_instances=32)
        check = verify_recursion_family(family, check_depth=False)
        assert check.valid, check.violations[:5]

    def test_non_recursive_query_is_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            build_recursion_family(parse_query("/a[b and c]"), 3)


class TestSimpleDepthFamily:
    def test_structure_of_d_i(self):
        family = build_simple_depth_family(5)
        instance = family.instances[2]
        document = instance.document()
        assert document is not None
        assert document.depth() == 3  # a + two Z levels (the b child sits at depth 2)
        assert bool_eval(family.query, document)

    def test_fooling_property(self):
        family = build_simple_depth_family(10)
        check = verify_depth_family(family)
        assert check.valid, check.violations[:5]
        assert check.max_document_depth <= 10

    def test_cross_document_reparents_b(self):
        family = build_simple_depth_family(6)
        outer, inner = family.instances[4], family.instances[1]
        crossed = family.cross_document(outer, inner)
        assert crossed is not None
        assert not bool_eval(family.query, crossed)

    def test_family_size_grows_with_depth_budget(self):
        assert len(build_simple_depth_family(16).instances) == 16
        assert build_simple_depth_family(16).expected_bound_bits == 2.0


class TestGeneralDepthFamily:
    QUERIES = ["/a/b", "/a[b > 5]/c", "/a[c[.//e and f] and b > 5]", "//a/b[c]"]

    @pytest.mark.parametrize("text", QUERIES)
    def test_fooling_property_for_general_queries(self, text):
        query = parse_query(text)
        family = build_depth_family(query, 12)
        assert len(family.instances) >= 2
        check = verify_depth_family(family)
        assert check.valid, check.violations[:5]

    def test_depth_stays_within_budget(self):
        query = parse_query("/a/b")
        family = build_depth_family(query, 9)
        check = verify_depth_family(family)
        assert check.valid
        assert check.max_document_depth <= 9

    def test_unsupported_query_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            build_depth_family(parse_query("//a//b"), 8)

    def test_padding_name_avoids_query_and_aux_names(self):
        query = parse_query("/a/Z")  # uses the usual auxiliary name as a real name
        family = build_depth_family(query, 8)
        assert family.padding_name not in query.element_names()
        if family.canonical is not None:
            assert family.padding_name != family.canonical.aux_name

    def test_filter_state_grows_logarithmically_with_depth(self):
        """The filter's cut state includes the level counter: Omega(log d) bits."""
        query = parse_query("/a/b")
        shallow = build_simple_depth_family(4)
        deep = build_simple_depth_family(256)

        def pairs(family):
            class _Pair:
                def __init__(self, instance):
                    self.alpha = list(instance.alpha)
                    self.beta = list(instance.beta) + list(instance.gamma)

            return [_Pair(i) for i in family.instances]

        shallow_state = measure_filter_cut_state(query, pairs(shallow))
        deep_state = measure_filter_cut_state(query, pairs(deep))
        assert deep_state.max_state_bits > shallow_state.max_state_bits
