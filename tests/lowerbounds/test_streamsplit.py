"""Tests for the stream-splitting helpers used by the lower-bound constructions."""

import pytest

from repro.lowerbounds import event_spans, slice_between, split_around
from repro.xmlstream import EndElement, StartElement, parse_document


class TestEventSpans:
    def test_spans_point_at_matching_tags(self):
        document = parse_document("<a><b>1</b><c><d/></c></a>")
        events, spans = event_spans(document)
        for node in document.iter_elements():
            start, end = spans[id(node)]
            assert isinstance(events[start], StartElement)
            assert isinstance(events[end], EndElement)
            assert events[start].name == node.name == events[end].name

    def test_spans_nest_like_the_tree(self):
        document = parse_document("<a><b><c/></b></a>")
        _, spans = event_spans(document)
        a, b, c = document.iter_elements()
        assert spans[id(a)][0] < spans[id(b)][0] < spans[id(c)][0]
        assert spans[id(c)][1] < spans[id(b)][1] < spans[id(a)][1]

    def test_every_element_has_a_span(self):
        document = parse_document("<a><b/><c>x<d/></c></a>")
        _, spans = event_spans(document)
        assert len(spans) == document.node_count()


class TestSplitAround:
    def test_three_way_split_reassembles(self):
        document = parse_document("<a><b>1</b><c/></a>")
        target = [n for n in document.iter_elements() if n.name == "b"][0]
        before, middle, after = split_around(document, target)
        assert before + middle + after == document.events()
        assert middle[0] == StartElement("b")
        assert middle[-1] == EndElement("b")

    def test_split_around_top_element(self):
        document = parse_document("<a><b/></a>")
        top = document.top_element()
        before, middle, after = split_around(document, top)
        assert [e.compact() for e in before] == ["<$>"]
        assert [e.compact() for e in after] == ["</$>"]


class TestSliceBetween:
    def test_events_strictly_between_two_siblings(self):
        document = parse_document("<a><b/><x>1</x><y/><c/></a>")
        elements = {n.name: n for n in document.iter_elements()}
        between = slice_between(document, elements["b"], elements["c"])
        assert [e.compact() for e in between] == ["<x>", "1", "</x>", "<y>", "</y>"]

    def test_adjacent_siblings_give_empty_slice(self):
        document = parse_document("<a><b/><c/></a>")
        elements = {n.name: n for n in document.iter_elements()}
        assert slice_between(document, elements["b"], elements["c"]) == []

    def test_wrong_order_raises(self):
        document = parse_document("<a><b/><c/></a>")
        elements = {n.name: n for n in document.iter_elements()}
        with pytest.raises(ValueError):
            slice_between(document, elements["c"], elements["b"])
