"""End-to-end tests of the TCP front end: real sockets, real server, real client.

Every test drives a live localhost :class:`~repro.net.WireServer` through
:class:`~repro.net.WireClient` — subscribe, publish (request-response, pipelined
and streamed), pushed match notifications, error isolation, graceful drain, and
the snapshot/restore reconnect path the demo exercises.  Everything runs through
``asyncio.run`` so the suite needs no asyncio pytest plugin.
"""

import asyncio

import pytest

from repro.net import (
    ConnectionClosedError,
    RemoteError,
    WireClient,
    WireServer,
)

CATALOG = "<catalog><book><price>12</price></book></catalog>"
PRICEY = "<catalog><book><price>90</price></book></catalog>"


def run(coro):
    return asyncio.run(coro)


class TestBasics:
    def test_subscribe_publish_match_notification(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                alice = await WireClient.connect(host, port, client_id="alice")
                bob = await WireClient.connect(host, port)
                canonical = await alice.subscribe(
                    "cheap", "/catalog/book[price < 20]")
                assert canonical == "/catalog/book[price < 20]"
                await bob.subscribe("books", "/catalog/book")
                result = await alice.publish(CATALOG)
                assert result.matched == ("alice:cheap",
                                          f"{bob.client_id}:books")
                assert result.document_id == 1
                note = await alice.next_match(timeout=2)
                assert (note.document_id, note.matched) == (1, ("cheap",))
                assert (await bob.next_match(timeout=2)).matched == ("books",)
                # non-matching document: no push for alice
                await alice.publish(PRICEY)
                assert (await bob.next_match(timeout=2)).matched == ("books",)
                assert alice.pending_matches() == 0
                await alice.close()
                await bob.close()
        run(scenario())

    def test_fresh_ids_are_assigned_and_hello_metadata(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                one = await WireClient.connect(host, port)
                two = await WireClient.connect(host, port)
                assert one.client_id != two.client_id
                assert not one.resumed and one.server_subscriptions == []
                await one.close()
                await two.close()
        run(scenario())

    def test_duplicate_client_id_is_refused(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                first = await WireClient.connect(host, port, client_id="c")
                with pytest.raises(RemoteError,
                                   match="already has a live connection") \
                        as excinfo:
                    await WireClient.connect(host, port, client_id="c")
                # the typed rejection of the adopt race, not a generic
                # duplicate-name ValueError
                assert excinfo.value.error_type == "SessionBusyError"
                await first.close()
        run(scenario())

    def test_unsubscribe_stops_matching(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/catalog/book")
                assert (await client.publish(CATALOG)).matched
                await client.unsubscribe("q")
                assert (await client.publish(CATALOG)).matched == ()
                with pytest.raises(RemoteError, match="KeyError"):
                    await client.unsubscribe("q")
                await client.close()
        run(scenario())

    def test_disconnect_closes_the_session(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="gone")
                await client.subscribe("q", "/catalog/book")
                await client.close()
                for _ in range(50):  # teardown runs behind the event loop
                    if not server.service.sessions():
                        break
                    await asyncio.sleep(0.01)
                assert server.service.sessions() == []
                assert len(server.service.bank) == 0
        run(scenario())


class TestPipelining:
    def test_publish_many_preserves_order_and_results(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="c")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                results = await client.publish_many(
                    [CATALOG, PRICEY, CATALOG, PRICEY, CATALOG])
                assert [bool(result.matched) for result in results] == \
                    [True, False, True, False, True]
                ids = [result.document_id for result in results]
                assert ids == sorted(ids)  # submission order
                await client.close()
        run(scenario())

    def test_error_isolation_inside_a_pipelined_burst(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="c")
                await client.subscribe("q", "/catalog/book")
                futures = [client.submit(CATALOG),
                           client.submit("<bad><nesting></bad>"),
                           client.submit(CATALOG)]
                await client.drain()
                good_first = await futures[0]
                with pytest.raises(RemoteError, match="XMLParseError"):
                    await futures[1]
                good_last = await futures[2]
                assert good_first.matched and good_last.matched
                # the connection survived the malformed document
                assert (await client.publish(CATALOG)).matched
                await client.close()
        run(scenario())

    def test_pipelined_error_surfaces_after_burst_settles(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                with pytest.raises(RemoteError):
                    await client.publish_many([CATALOG, "</broken>", CATALOG])
                await client.close()
        run(scenario())


class TestStreaming:
    def test_stream_chunks_frame_documents_server_side(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="c")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                text = CATALOG + PRICEY + CATALOG
                for size in (1, 3, 7, 1000):
                    chunks = [text[i:i + size]
                              for i in range(0, len(text), size)]
                    results = await client.publish_stream(chunks)
                    assert [bool(result.matched) for result in results] == \
                        [True, False, True]
                await client.close()
        run(scenario())

    def test_stream_byte_chunks_split_multibyte_characters(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/a[b = \"héllo\"]")
                payload = "<a><b>héllo</b></a>".encode("utf-8")
                chunks = [payload[i:i + 2]
                          for i in range(0, len(payload), 2)]
                results = await client.publish_stream(chunks)
                assert len(results) == 1 and results[0].matched
                await client.close()
        run(scenario())

    def test_async_iterable_of_chunks(self):
        async def scenario():
            async def chunks():
                for piece in (CATALOG[:10], CATALOG[10:], PRICEY):
                    yield piece

            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/catalog/book")
                results = await client.publish_stream(chunks())
                assert len(results) == 2
                await client.close()
        run(scenario())

    def test_framing_error_fails_the_stream_not_the_connection(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="c")
                await client.subscribe("q", "/catalog/book")
                with pytest.raises(RemoteError, match="XMLParseError"):
                    await client.publish_stream([CATALOG, "<a></b>"])
                # documents framed before the error were still filtered …
                note = await client.next_match(timeout=2)
                assert note.matched == ("q",)
                # … and the connection takes fresh streams afterwards
                results = await client.publish_stream([CATALOG])
                assert len(results) == 1 and results[0].matched
                await client.close()
        run(scenario())

    def test_failed_stream_tail_is_discarded_not_published(self):
        """Once a stream has failed, documents in its still-in-flight tail
        chunks must NOT be silently published — the client was told the whole
        stream failed."""
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="c")
                await client.subscribe("q", "/catalog/book")
                with pytest.raises(RemoteError, match="XMLParseError"):
                    # chunk 1 poisons the stream; chunk 2 is a complete,
                    # well-formed document riding behind it
                    await client.publish_stream(["<a></b>", CATALOG])
                sentinel = await client.publish(CATALOG)
                # the tail document was dropped: the first (and only) push is
                # the sentinel's, and nothing else was ever published
                note = await client.next_match(timeout=2)
                assert note.document_id == sentinel.document_id
                assert server.service.metrics()["published"] == 1
                await client.close()
        run(scenario())

    def test_concurrent_streams_serialize_instead_of_dying(self):
        """Two tasks streaming on one connection must both complete (the
        client serializes send phases; the server allows one open stream)."""
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="c")
                await client.subscribe("q", "/catalog/book")
                first, second = await asyncio.gather(
                    client.publish_stream([CATALOG, PRICEY]),
                    client.publish_stream([PRICEY, CATALOG]))
                assert len(first) == 2 and len(second) == 2
                assert (await client.publish(CATALOG)).matched  # still alive
                await client.close()
        run(scenario())

    def test_unclosed_document_at_stream_end_fails(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                with pytest.raises(RemoteError, match="mid-document"):
                    await client.publish_stream(["<catalog><book>"])
                await client.close()
        run(scenario())


class TestSnapshotReconnect:
    def test_reconnect_restores_subscriptions_from_snapshot(self):
        """The acceptance-criterion path: subscribe → publish → match → server
        gone → restore from snapshot → reconnect → still matching, no
        re-subscribe on the wire."""
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="alice")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                await client.subscribe("all", "/catalog/book")
                assert (await client.publish(CATALOG)).matched == \
                    ("alice:cheap", "alice:all")
                assert (await client.next_match(timeout=2)).matched == \
                    ("cheap", "all")
                snapshot = await client.snapshot()
                await client.close()

            restored = WireServer.restore(snapshot)
            await restored.start()
            try:
                host, port = restored.address
                client = await WireClient.connect(host, port,
                                                  client_id="alice")
                assert client.resumed
                assert client.server_subscriptions == ["cheap", "all"]
                result = await client.publish(CATALOG)
                assert result.matched == ("alice:cheap", "alice:all")
                note = await client.next_match(timeout=2)
                assert note.matched == ("cheap", "all")
                await client.close()
            finally:
                await restored.stop()
        run(scenario())

    def test_unknown_id_on_restored_server_gets_a_fresh_session(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
                await client.subscribe("q", "/catalog/book")
                snapshot = await client.snapshot()
                await client.close()
            restored = WireServer.restore(snapshot)
            await restored.start()
            try:
                host, port = restored.address
                stranger = await WireClient.connect(host, port,
                                                    client_id="other")
                assert not stranger.resumed
                assert stranger.server_subscriptions == []
                # the restored 'a' session still matches independently
                result = await stranger.publish(CATALOG)
                assert result.matched == ("a:q",)
                await stranger.close()
            finally:
                await restored.stop()
        run(scenario())


class TestLifecycleAndErrors:
    def test_server_stop_fails_cleanly_for_connected_clients(self):
        async def scenario():
            server = WireServer()
            await server.start()
            host, port = server.address
            client = await WireClient.connect(host, port)
            await client.subscribe("q", "/catalog/book")
            await server.stop()
            with pytest.raises((ConnectionClosedError, RemoteError,
                                ConnectionError)):
                await client.publish(CATALOG)
            await client.close()
            assert server.connection_count() == 0
        run(scenario())

    def test_stop_is_idempotent_and_context_manager_stops(self):
        async def scenario():
            server = WireServer()
            async with server:
                assert server.address[1] > 0
            await server.stop()
        run(scenario())

    def test_unknown_message_type_kills_the_connection(self):
        async def scenario():
            from repro.net.protocol import encode_frame
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                client._writer.write(encode_frame({"type": "bogus"}))
                await client.drain()
                with pytest.raises(ConnectionClosedError):
                    while True:
                        await client.next_match(timeout=2)
                await client.close()
        run(scenario())

    def test_subscribe_errors_are_reported_not_fatal(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                with pytest.raises(RemoteError, match="XPathSyntaxError"):
                    await client.subscribe("bad", "///")
                with pytest.raises(RemoteError, match="UnsupportedQueryError"):
                    await client.subscribe("bad", "//a[not(b)]")
                await client.subscribe("good", "/catalog/book")
                with pytest.raises(RemoteError, match="ValueError"):
                    await client.subscribe("good", "/catalog/book")
                assert (await client.publish(CATALOG)).matched
                await client.close()
        run(scenario())

    def test_requests_after_close_raise(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.close()
                with pytest.raises(ConnectionClosedError):
                    await client.publish(CATALOG)
        run(scenario())

    def test_sharded_service_config_passes_through(self):
        """The wire layer composes with the sharded bank exactly like the
        in-process service does."""
        async def scenario():
            async with WireServer(shards=2) as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("a", "/catalog/book")
                await client.subscribe("b", "/catalog/book[price < 20]")
                result = await client.publish(CATALOG)
                assert len(result.matched) == 2
                await client.close()
        run(scenario())
