"""Frame-level tests of the wire protocol (no sockets involved)."""

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.protocol import (
    MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
)


def run(coro):
    return asyncio.run(coro)


class TestEncodeDecode:
    def test_roundtrip(self):
        header = {"type": "publish", "seq": 7}
        frame = encode_frame(header, b"<a/>")
        (length,) = struct.unpack("!I", frame[:4])
        assert length == len(frame) - 4
        decoded_header, body = decode_payload(frame[4:])
        assert decoded_header == header
        assert body == b"<a/>"

    def test_empty_body_and_unicode_header(self):
        frame = encode_frame({"type": "error", "message": "héllo\nwörld"})
        header, body = decode_payload(frame[4:])
        assert header["message"] == "héllo\nwörld"  # \n escaped inside JSON
        assert body == b""

    def test_body_may_contain_newlines_and_binary(self):
        body = b"\n\x00\xff<doc/>\n"
        _header, decoded = decode_payload(encode_frame({"type": "x"}, body)[4:])
        assert decoded == body

    def test_oversized_frame_refused_on_send(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "publish"}, b"x" * (MAX_FRAME + 1))

    def test_send_limit_is_configurable_like_the_receive_limit(self):
        """An endpoint configured for larger frames must be able to SEND them
        too — the limit is symmetric, not hard-coded at the default."""
        big = b"x" * (MAX_FRAME + 1)
        frame = encode_frame({"type": "publish"}, big,
                             max_frame=MAX_FRAME * 2)
        _header, body = decode_payload(frame[4:])
        assert body == big
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "publish"}, b"x" * 100, max_frame=50)

    def test_malformed_payloads_raise(self):
        with pytest.raises(ProtocolError, match="separator"):
            decode_payload(b'{"type":"x"}')  # no newline at all
        with pytest.raises(ProtocolError, match="JSON"):
            decode_payload(b"{not json\nbody")
        with pytest.raises(ProtocolError, match="type"):
            decode_payload(b'{"no_type":1}\n')
        with pytest.raises(ProtocolError, match="type"):
            decode_payload(b'[1,2]\n')  # header must be an object


class TestFrameDecoder:
    def test_multiple_frames_in_one_chunk(self):
        data = encode_frame({"type": "a"}) + encode_frame({"type": "b"}, b"x")
        frames = FrameDecoder().feed(data)
        assert [header["type"] for header, _body in frames] == ["a", "b"]
        assert frames[1][1] == b"x"

    def test_one_byte_at_a_time(self):
        data = encode_frame({"type": "publish", "seq": 1}, b"<a>&amp;</a>")
        decoder = FrameDecoder()
        frames = []
        for index in range(len(data)):
            frames.extend(decoder.feed(data[index:index + 1]))
            # the frame must complete exactly at the last byte, never before
            assert bool(frames) == (index == len(data) - 1)
        assert frames[0][1] == b"<a>&amp;</a>"
        assert decoder.at_boundary

    def test_boundary_tracking(self):
        decoder = FrameDecoder()
        assert decoder.at_boundary
        decoder.feed(b"\x00")
        assert not decoder.at_boundary
        decoder.feed(encode_frame({"type": "a"})[1:])
        assert decoder.at_boundary

    def test_oversized_length_prefix_refused(self):
        decoder = FrameDecoder(max_frame=64)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(struct.pack("!I", 65))

    @settings(max_examples=30, deadline=None)
    @given(bodies=st.lists(st.binary(max_size=40), min_size=1, max_size=5),
           size=st.integers(min_value=1, max_value=11))
    def test_any_chunking_yields_the_same_frames(self, bodies, size):
        data = b"".join(encode_frame({"type": "publish", "seq": index}, body)
                        for index, body in enumerate(bodies))
        decoder = FrameDecoder()
        frames = []
        for start in range(0, len(data), size):
            frames.extend(decoder.feed(data[start:start + size]))
        assert [body for _header, body in frames] == bodies
        assert decoder.at_boundary


class TestReadFrame:
    """The asyncio reader front end agrees with the sans-IO decoder."""

    @staticmethod
    def _reader(data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_reads_frames_then_clean_eof(self):
        async def scenario():
            data = encode_frame({"type": "a"}) + encode_frame({"type": "b"})
            reader = self._reader(data)
            first = await read_frame(reader)
            second = await read_frame(reader)
            assert (first[0]["type"], second[0]["type"]) == ("a", "b")
            assert await read_frame(reader) is None  # EOF between frames
        run(scenario())

    def test_eof_inside_prefix_or_payload_raises(self):
        async def scenario():
            whole = encode_frame({"type": "a"}, b"body")
            with pytest.raises(ProtocolError, match="length"):
                await read_frame(self._reader(whole[:2]))
            with pytest.raises(ProtocolError, match="into a frame"):
                await read_frame(self._reader(whole[:-1]))
        run(scenario())

    def test_oversized_frame_refused(self):
        async def scenario():
            reader = self._reader(struct.pack("!I", 1024) + b"x" * 1024)
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame(reader, max_frame=100)
        run(scenario())

    def test_decode_error_propagates(self):
        async def scenario():
            payload = b"{broken\n"
            reader = self._reader(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="JSON"):
                await read_frame(reader)
        run(scenario())
