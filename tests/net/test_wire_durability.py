"""Durable delivery over the wire: acks, reconnect, duplicates, abandonment.

Covers the client-side cursor protocol (auto-ack and manual), the in-place
``reconnect`` that adopts the same session with backlog preserved, the typed
``SessionBusyError`` rejection of the adopt race, at-least-once re-delivery
flagged ``duplicate`` after a server crash + ``recover()``, the
``PublishAbandonedError`` frames a timed-out stop drain now emits instead of
silently dropping queued publishes, and the snapshot hygiene of a session that
disconnected mid ``publish_stream`` (no partial framer state may leak).
"""

import asyncio

import pytest

from repro.net import (
    RemoteError,
    WireClient,
    WireServer,
)
from repro.net.protocol import decode_payload, encode_frame, read_frame
from repro.service import PubSubService

CATALOG = "<catalog><book><price>12</price></book></catalog>"
PRICEY = "<catalog><book><price>90</price></book></catalog>"


def run(coro):
    return asyncio.run(coro)


class TestCursorProtocol:
    def test_auto_ack_advances_the_server_cursor(self, tmp_path):
        async def scenario():
            async with WireServer(durable_dir=str(tmp_path)) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                await client.publish(CATALOG)
                note = await client.next_match(timeout=2)
                assert note.document_id == 1
                assert not note.duplicate
                assert client.cursor == 1
                # the fire-and-forget cursor frame reaches the service
                session = server.service.session("a")
                for _ in range(100):
                    if session.cursor == 1:
                        break
                    await asyncio.sleep(0.01)
                assert session.cursor == 1
                assert server.service.metrics()["acks"] == 1
                await client.close()
        run(scenario())

    def test_manual_ack_moves_the_boundary_explicitly(self, tmp_path):
        async def scenario():
            async with WireServer(durable_dir=str(tmp_path)) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a",
                                                  auto_ack=False)
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                await client.publish(CATALOG)
                await client.next_match(timeout=2)
                assert client.cursor == 0  # nothing acked yet
                client.ack(1)
                assert client.cursor == 1
                session = server.service.session("a")
                for _ in range(100):
                    if session.cursor == 1:
                        break
                    await asyncio.sleep(0.01)
                assert session.cursor == 1
                await client.close()
        run(scenario())


class TestReconnect:
    def test_reconnect_adopts_the_session_and_preserves_backlog(self):
        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                publisher = await WireClient.connect(host, port)
                await publisher.publish(CATALOG)
                # receive but do not consume: the match sits in the backlog
                for _ in range(100):
                    if client.pending_matches() == 1:
                        break
                    await asyncio.sleep(0.01)
                assert client.pending_matches() == 1
                # the transport dies abruptly (no goodbye)
                client._writer.transport.abort()
                await client.reconnect(retries=4)
                assert client.resumed
                assert client.server_subscriptions == ["cheap"]
                # the un-consumed match survived the swap
                note = await client.next_match(timeout=2)
                assert (note.document_id, note.matched) == (1, ("cheap",))
                # and the revived connection is fully live
                result = await publisher.publish(CATALOG)
                assert result.matched == ("a:cheap",)
                assert (await client.next_match(timeout=2)).document_id == 2
                await client.close()
                await publisher.close()
        run(scenario())

    def test_reconnect_retries_with_backoff_until_the_server_returns(self):
        async def scenario():
            service = PubSubService()
            server = WireServer(service, close_service=False,
                                retain_sessions=True)
            await server.start()
            host, port = server.address
            client = await WireClient.connect(host, port, client_id="a")
            await client.subscribe("cheap", "/catalog/book[price < 20]")
            # the server goes away entirely; the service survives
            await server.stop()
            revived = WireServer(service, close_service=False, host=host,
                                 port=port, retain_sessions=True)

            async def bring_back():
                await asyncio.sleep(0.2)
                await revived.start()

            task = asyncio.get_running_loop().create_task(bring_back())
            try:
                # the first dials hit a dead port: only the retry loop's
                # backoff survives until bring_back rebinds it
                await client.reconnect(retries=10, backoff_base=0.05,
                                       jitter=0.0)
            finally:
                await task
            assert client.resumed
            assert client.server_subscriptions == ["cheap"]
            await client.close()
            await revived.stop()
            await service.stop()
        run(scenario())

    def test_reconnect_gives_up_after_capped_retries(self):
        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
            # the server (and its listener) are gone for good
            with pytest.raises((ConnectionError, OSError)):
                await client.reconnect(retries=2, backoff_base=0.01,
                                       jitter=0.0)
        run(scenario())


class TestAdoptRace:
    def test_second_hello_for_a_live_session_is_typed_busy(self):
        """Satellite: racing a live connection must yield SessionBusyError,
        never a silent adopt (two connections sharing one delivery queue)."""
        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                first = await WireClient.connect(host, port, client_id="s")
                with pytest.raises(RemoteError) as excinfo:
                    await WireClient.connect(host, port, client_id="s")
                assert excinfo.value.error_type == "SessionBusyError"
                assert "live connection" in excinfo.value.message
                # the rejection is not retried by the backoff loop: a second
                # attempt with retries on fails just as fast
                with pytest.raises(RemoteError):
                    await WireClient.connect(host, port, client_id="s",
                                             retries=5, backoff_base=5.0)
                # once the first connection leaves, the name adopts cleanly
                await first.close()
                for _ in range(100):
                    if server.connection_count() == 0:
                        break
                    await asyncio.sleep(0.01)
                second = await WireClient.connect(host, port, client_id="s")
                assert second.resumed  # retained session, not a fresh one
                await second.close()
        run(scenario())


class TestDuplicateRedelivery:
    def test_unacked_matches_redeliver_flagged_after_crash_recovery(
            self, tmp_path):
        async def before_crash():
            service = PubSubService(durable_dir=str(tmp_path))
            async with WireServer(service) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a",
                                                  auto_ack=False)
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                service.save_snapshot()
                await client.publish(CATALOG)
                note = await client.next_match(timeout=2)
                client.ack(note.document_id)  # document 1 durably consumed
                await client.publish(PRICEY)   # no match: nothing to ack
                await client.publish(CATALOG)  # match received, never acked
                await client.next_match(timeout=2)
                for _ in range(100):
                    if service.session("a").cursor == 1:
                        break
                    await asyncio.sleep(0.01)
                await client.close()
            # the WireServer stop() was graceful, but the WAL is what the
            # recovery reads — the fault-injection suite covers kill -9

        async def after_crash():
            service = PubSubService.recover(str(tmp_path))
            async with WireServer(service) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
                assert client.resumed
                assert client.cursor == 1  # the hello ack announced it
                note = await client.next_match(timeout=2)
                assert note.document_id == 3
                assert note.duplicate
                # document 1 was acked: exactly-once below the cursor
                with pytest.raises(asyncio.TimeoutError):
                    await client.next_match(timeout=0.2)
                await client.close()

        run(before_crash())
        run(after_crash())


class TestAbandonedPublishes:
    def test_timed_out_drain_fails_queued_publishes_with_typed_errors(self):
        """Satellite: a stop drain that times out must answer every queued
        publish with a PublishAbandonedError frame and count it, instead of
        abandoning the seqs silently."""
        async def scenario():
            # flush_interval holds the ingest batch open, so outcomes are
            # still pending when the (tiny) drain window expires
            server = WireServer(batch_max=64, flush_interval=0.5,
                                drain_timeout=0.05)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(encode_frame(
                    {"type": "hello", "seq": 0, "client": "raw"}))
                await writer.drain()
                hello = await read_frame(reader)
                assert hello[0]["type"] == "ack"
                for seq in (1, 2, 3):
                    writer.write(encode_frame(
                        {"type": "publish", "seq": seq},
                        CATALOG.encode("utf-8")))
                await writer.drain()
                # give the reader loop a beat to submit all three
                await asyncio.sleep(0.1)
                await server.stop()
                assert server.dropped_on_stop == 3
                frames = []
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    frames.append(frame[0])
                errors = [f for f in frames if f["type"] == "error"]
                assert sorted(e["seq"] for e in errors) == [1, 2, 3]
                assert all(e["error"] == "PublishAbandonedError"
                           for e in errors)
            finally:
                writer.close()
        run(scenario())

    def test_graceful_drain_still_answers_everything(self):
        """The abandonment path must not fire when the drain succeeds."""
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                results = await client.publish_many([CATALOG] * 5)
                assert len(results) == 5
                await client.close()
            assert server.dropped_on_stop == 0
        run(scenario())


class TestMidStreamDisconnect:
    def test_snapshot_of_a_session_that_died_mid_stream_is_clean(self):
        """Satellite: a connection severed inside ``publish_stream`` leaves a
        half-fed framer on the *connection*; the session snapshot must carry
        only subscriptions — restoring it yields a service with no trace of
        the partial document."""
        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                # open a stream and abandon it mid-document
                client._writer.write(encode_frame(
                    {"type": "publish_stream", "seq": 99},
                    b"<catalog><book><price>1"))
                await client.drain()
                await asyncio.sleep(0.1)  # let the server feed its framer
                client._writer.transport.abort()
                for _ in range(100):
                    if server.connection_count() == 0:
                        break
                    await asyncio.sleep(0.01)
                snapshot = server.service.snapshot()
                published_before = server.service.metrics()["published"]

            restored = PubSubService.restore(snapshot)
            async with restored:
                session = restored.session("a")
                assert session.subscription_queries() == {
                    "cheap": "/catalog/book[price < 20]"}
                # no partial framer state leaked: nothing was ever published,
                # and fresh traffic behaves as on a clean service
                assert restored.metrics()["published"] == 0
                result = await restored.publish(CATALOG)
                assert result.matched == ("a:cheap",)
            assert published_before == 0
        run(scenario())

    def test_reconnect_after_mid_stream_death_starts_a_fresh_stream(self):
        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port, client_id="a")
                await client.subscribe("cheap", "/catalog/book[price < 20]")
                client._writer.write(encode_frame(
                    {"type": "publish_stream", "seq": 99},
                    b"<catalog><book><price>1"))
                await client.drain()
                await asyncio.sleep(0.1)
                client._writer.transport.abort()
                await client.reconnect(retries=4)
                assert client.resumed
                # the new connection's framer is pristine: a whole stream
                # round-trips, unpolluted by the abandoned half document
                results = await client.publish_stream([CATALOG, PRICEY])
                assert [r.matched for r in results] == [("a:cheap",), ()]
                await client.close()
        run(scenario())


def test_decode_payload_is_importable():  # keeps the explicit import honest
    header, body = decode_payload(encode_frame({"type": "x"}, b"b")[4:])
    assert header["type"] == "x" and body == b"b"
