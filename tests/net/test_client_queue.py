"""The client's pushed-match queue is bounded and lossy-oldest (regression).

The wire client's socket reader used to enqueue match pushes into an
*unbounded* queue: a consumer that stopped calling ``next_match`` grew client
memory without limit.  The queue is now bounded (``max_pending_matches``) with
the same lossy-oldest overflow policy as the service's session delivery
queues; these tests pin the eviction order, the drop counter, and the one
invariant that policy must never break — the end-of-stream sentinel is not
counted as a dropped match and consumers still wake on it.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.client import _EOS, WireClient, WireMatch


def _client(max_pending_matches):
    # the reader/writer are never touched by the delivery path under test
    return WireClient(reader=None, writer=None, max_frame=1 << 16,
                      max_pending_matches=max_pending_matches)


def _match(document_id):
    return WireMatch(document_id=document_id, matched=("s",))


class TestLossyOldestDelivery:
    def test_overflow_drops_the_oldest_and_counts(self):
        client = _client(3)
        for document_id in range(5):
            client._deliver_match(_match(document_id))
        kept = [client._matches.get_nowait().document_id for _ in range(3)]
        assert kept == [2, 3, 4]  # newest three survive, oldest two dropped
        assert client.dropped_matches == 2

    def test_no_drops_when_the_consumer_keeps_up(self):
        client = _client(2)
        for document_id in range(10):
            client._deliver_match(_match(document_id))
            assert client._matches.get_nowait().document_id == document_id
        assert client.dropped_matches == 0

    def test_queue_floor_is_one_slot(self):
        client = _client(0)  # silly value: clamped, never unbounded-or-zero
        client._deliver_match(_match(1))
        client._deliver_match(_match(2))
        assert client._matches.get_nowait().document_id == 2
        assert client.dropped_matches == 1

    def test_evicted_sentinel_is_not_counted_as_a_drop(self):
        client = _client(1)
        client._deliver_match(_EOS)
        client._deliver_match(_match(7))  # evicts the sentinel
        assert client._matches.get_nowait().document_id == 7
        assert client.dropped_matches == 0

    def test_sentinel_lands_even_on_a_full_queue(self):
        client = _client(2)
        for document_id in range(4):
            client._deliver_match(_match(document_id))
        client._deliver_match(_EOS)
        first = client._matches.get_nowait()
        second = client._matches.get_nowait()
        assert first.document_id == 3  # one real match had to make room
        assert second is _EOS
        assert client.dropped_matches == 3


class TestConsumerVisibleBehavior:
    def test_next_match_sees_newest_after_overflow(self):
        async def scenario():
            client = _client(2)
            for document_id in range(5):
                client._deliver_match(_match(document_id))
            return [await client.next_match() for _ in range(2)]

        matches = asyncio.run(scenario())
        assert [m.document_id for m in matches] == [3, 4]

    def test_next_match_still_ends_on_sentinel_after_drops(self):
        async def scenario():
            client = _client(1)
            client._deliver_match(_match(1))
            client._deliver_match(_match(2))
            client._closed = True
            client._deliver_match(_EOS)  # what _read_loop does on shutdown
            with pytest.raises(Exception):
                await client.next_match()
            return client.dropped_matches

        # matches 1 and 2 were both displaced (2 by the sentinel): 2 drops
        assert asyncio.run(scenario()) == 2
