"""Overload on the wire: the ``overloaded`` frame end to end.

A governed service behind a real :class:`~repro.net.WireServer` rejects
publishes and new hellos with the dedicated ``overloaded`` frame type; the
:class:`~repro.net.WireClient` surfaces it as a typed, retryable
:class:`~repro.net.OverloadedError` carrying the server's ``retry_after``
hint, which the connect/reconnect backoff loops honor.  Construction-time
configuration validation of the wire server rides along (PR 8 satellite).
"""

import asyncio

import pytest

from repro.core.errors import ConfigError
from repro.net import (
    ConnectionClosedError,
    OverloadedError,
    WireClient,
    WireServer,
)
from repro.service import MemoryBudget, PubSubService, ResourceGovernor

CATALOG = "<catalog><book><price>12</price></book></catalog>"


def run(coro):
    return asyncio.run(coro)


def governed_service(*, service_kwargs=None, **governor_kwargs):
    """A service whose governor trips HARD on the first subscribed sample."""
    governor_kwargs.setdefault("sample_interval", 0.0)
    governor_kwargs.setdefault("retry_after", 0.01)
    governor = ResourceGovernor(MemoryBudget(soft_bits=1, hard_bits=2),
                                **governor_kwargs)
    return PubSubService(governor=governor, **(service_kwargs or {}))


class TestServerValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_pipeline": 0},
        {"max_frame": 10},
        {"drain_timeout": -1.0},
    ])
    def test_bad_configuration_fails_construction(self, kwargs):
        with pytest.raises(ConfigError):
            WireServer(**kwargs)

    def test_service_config_is_validated_through_the_front_end(self):
        # **service_config flows into PubSubService, whose own construction
        # validation fires before any socket is bound
        with pytest.raises(ConfigError):
            WireServer(batch_max=0)


class TestPublishRejection:
    def test_overloaded_publish_raises_typed_retryable_error(self):
        async def scenario():
            async with WireServer(governed_service(),
                                  close_service=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/catalog/book")
                # admitted before the governor's first sample; its batch
                # trips HARD
                first = await client.publish(CATALOG)
                assert first.matched == (f"{client.client_id}:q",)
                with pytest.raises(OverloadedError) as info:
                    await client.publish(CATALOG)
                assert info.value.retry_after == 0.01
                # the rejection is per-request: the connection survives and
                # control traffic still flows
                await client.unsubscribe("q")
                assert server.service.metrics()["publishes_rejected"] == 1
                await client.close()
        run(scenario())

    def test_pipelined_burst_fails_only_the_rejected_tail(self):
        async def scenario():
            # queue_limit=1 + batch_max=1 force the server's submits to
            # overlap the worker's sampling: the head of the burst is
            # admitted before the first sample, the tail rejected after it
            service = governed_service(
                service_kwargs={"queue_limit": 1, "batch_max": 1})
            async with WireServer(service, close_service=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/catalog/book")
                futures = [client.submit(CATALOG) for _ in range(4)]
                await client.drain()
                settled = await asyncio.gather(*futures,
                                               return_exceptions=True)
                rejected = [r for r in settled
                            if isinstance(r, OverloadedError)]
                admitted = [r for r in settled
                            if not isinstance(r, Exception)]
                # the head of the burst was admitted, the tail rejected, and
                # nothing hung: every future settled one way or the other
                assert admitted and rejected
                assert len(admitted) + len(rejected) == 4
                await client.close()
        run(scenario())


class TestHandshakeRejection:
    def test_new_sessions_are_refused_while_overloaded(self):
        async def scenario():
            async with WireServer(governed_service(),
                                  close_service=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/catalog/book")
                await client.publish(CATALOG)  # trips HARD
                with pytest.raises(OverloadedError):
                    await WireClient.connect(host, port)
                await client.close()
        run(scenario())

    def test_connect_retries_honor_retry_after(self):
        async def scenario():
            async with WireServer(governed_service(retry_after=0.01),
                                  close_service=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port)
                await client.subscribe("q", "/catalog/book")
                await client.publish(CATALOG)  # trips HARD
                # retries=2 sleeps through two rejections before giving up
                started = asyncio.get_running_loop().time()
                with pytest.raises(OverloadedError):
                    await WireClient.connect(host, port, retries=2,
                                             backoff_base=0.001, jitter=0.0)
                elapsed = asyncio.get_running_loop().time() - started
                assert elapsed >= 0.02  # two retry_after waits were honored
                await client.close()
        run(scenario())

    def test_evicted_session_gets_notice_and_client_recovers(self):
        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port,
                                                  client_id="laggard")
                await client.subscribe("q", "/catalog/book")
                await client.publish(CATALOG)
                await client.next_match(timeout=2)
                # drive the governor's eviction path directly (the service
                # integration tests cover *when* it fires; this test covers
                # what the wire does with it): notice frame, then the cut
                service = server.service
                session = service.session("laggard")
                await service._evict_session(
                    asyncio.get_running_loop(), session)
                with pytest.raises(ConnectionClosedError):
                    await client.next_match(timeout=2)
                assert client.evicted  # the push explained the cut
                await client.reconnect(retries=8)
                assert client.client_id == "laggard"
                assert not client.evicted
                # the evicted session's subscriptions were shed with it
                assert client.server_subscriptions == []
                await client.subscribe("q", "/catalog/book")
                result = await client.publish(CATALOG)
                assert result.matched == ("laggard:q",)
                await client.close()
        run(scenario())

    def test_adoption_is_still_allowed_while_overloaded(self):
        async def scenario():
            service = governed_service()
            async with WireServer(service, close_service=True,
                                  retain_sessions=True) as server:
                host, port = server.address
                client = await WireClient.connect(host, port,
                                                  client_id="resumer")
                await client.subscribe("q", "/catalog/book")
                await client.publish(CATALOG)  # trips HARD
                await client.close()  # retained: the session stays adoptable
                # a NEW session is refused, but the resuming client is how
                # the backlog drains — adoption must stay open
                with pytest.raises(OverloadedError):
                    await WireClient.connect(host, port)
                back = await WireClient.connect(host, port,
                                                client_id="resumer")
                assert back.resumed
                assert back.server_subscriptions == ["q"]
                await back.close()
        run(scenario())
