"""Subsumption verdicts are *sound*: True must mean match-set containment.

``query_contains(A, B)`` claims every document matched by B is matched by A.
A wrong True verdict would let an optimizer drop a live subscription, so the
hypothesis suite generates structurally related query pairs (a query and a
mutated generalization — axes widened, labels wildcarded, predicates dropped
or loosened), and for every True verdict cross-checks the claim against the
reference evaluator on random documents.  False verdicts carry no claim
(the prover is deliberately incomplete), so only directed cases pin them.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis.subsumption import find_subsumptions, query_contains
from repro.semantics import bool_eval
from repro.xpath import parse_query

from ..strategies import LABELS, documents

CONTAINED = [
    # (container, contained): the homomorphism prover must say True
    ("/a/b", "/a/b"),
    ("/a//b", "/a/b"),              # child specializes descendant
    ("//a//b", "/a/c/b"),           # deeper chain under both closures
    ("/a/*", "/a/b"),               # wildcard generalizes a label
    ("/a", "/a[b]"),                # dropping a predicate generalizes
    ("/a[b]", "/a[b and c]"),       # dropping one conjunct generalizes
    ("/a[.//b]", "/a/c[b]"),        # predicate chain found deeper down
    ("/a[b > 5]", "/a[b > 7]"),     # numeric loosening: > over >
    ("/a[b > 5]", "/a[b >= 6]"),    # > over >=
    ("/a[b > 5]", "/a[b = 9]"),     # equality implies strict bound
    ("/a[b != 3]", "/a[b = 5]"),    # equality implies disequality
    ("/a[b < 10]", "/a[b <= 9]"),   # < over <=
]

NOT_CONTAINED = [
    # (container, contained): False — either provably wrong or unprovable
    ("/a/b", "/a/c"),               # different labels
    ("/a/b", "/a//b"),              # descendant is strictly more general
    ("/a/b", "/a/*"),               # concrete cannot contain a wildcard
    ("/a[b]", "/a"),                # extra predicate narrows, not widens
    ("/a[b > 7]", "/a[b > 5]"),     # numeric tightening
    ("/a[b = 9]", "/a[b > 5]"),     # equality does not cover a range
    ("/a[b or c]", "/a[b]"),        # disjunctive container: prover bails
    ("/a[not(b)]", "/a"),           # negated container: prover bails
    ("/a/b/c", "/a/b"),             # longer path cannot embed
]


class TestDirectedVerdicts:
    @pytest.mark.parametrize("container, contained", CONTAINED)
    def test_containment_proved(self, container, contained):
        assert query_contains(parse_query(container), parse_query(contained))

    @pytest.mark.parametrize("container, contained", NOT_CONTAINED)
    def test_containment_not_claimed(self, container, contained):
        assert not query_contains(parse_query(container),
                                  parse_query(contained))

    @pytest.mark.parametrize("container, contained", CONTAINED)
    def test_directed_verdicts_are_semantically_sound(self, container,
                                                      contained):
        """Spot-check each directed True pair against the evaluator on the
        contained query's own shape (a document it certainly matches)."""
        a, b = parse_query(container), parse_query(contained)
        rng = random.Random(1234)
        checked = 0
        for _ in range(200):
            document = _random_document(rng)
            if bool_eval(b, document):
                checked += 1
                assert bool_eval(a, document), (container, contained,
                                                document.serialize())
        assert checked, f"no random document matched {contained}"


def _random_document(rng):
    """A small random document biased toward the directed fixtures' labels."""
    from repro.xmlstream import XMLDocument, XMLNode

    def build(depth):
        node = XMLNode.element(rng.choice(LABELS))
        if rng.random() < 0.5:
            node.append_child(XMLNode.text(str(rng.choice((3, 5, 6, 7, 9)))))
        if depth < 4:
            for _ in range(rng.randint(0, 3)):
                node.append_child(build(depth + 1))
        return node

    root = XMLNode.element("a")
    for _ in range(rng.randint(0, 3)):
        root.append_child(build(1))
    if rng.random() < 0.5:
        root.append_child(XMLNode.text(str(rng.choice((3, 5, 7)))))
    return XMLDocument.from_top_element(root)


@st.composite
def generalization_pairs(draw):
    """A random query plus a structural generalization of it.

    The mutations mirror exactly the rewrites the prover claims to handle:
    widening a child axis to descendant, wildcarding a label, dropping the
    value predicate, or loosening its numeric threshold.
    """
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    depth = rng.randint(1, 3)
    contained_steps, container_steps = [], []
    for index in range(depth):
        label = rng.choice(LABELS)
        axis = "//" if rng.random() < 0.3 else "/"
        contained_steps.append(f"{axis}{label}")
        general_axis = "//" if axis == "//" or rng.random() < 0.4 else "/"
        general_label = "*" if rng.random() < 0.25 else label
        container_steps.append(f"{general_axis}{general_label}")
    contained_text = "".join(contained_steps)
    container_text = "".join(container_steps)
    if rng.random() < 0.6:
        leaf = rng.choice(LABELS)
        threshold = rng.choice((2, 5, 7))
        contained_text += f"[{leaf} > {threshold}]"
        keep = rng.random()
        if keep < 0.4:
            pass  # container drops the predicate entirely
        elif keep < 0.7:
            container_text += f"[{leaf} > {threshold}]"
        else:
            container_text += f"[{leaf} > {threshold - 1}]"  # loosened
    return parse_query(container_text), parse_query(contained_text)


class TestRandomizedSoundness:
    @settings(max_examples=80, deadline=None)
    @given(pair=generalization_pairs(),
           docs=st.lists(documents(), min_size=1, max_size=4))
    def test_true_verdicts_imply_matchset_containment(self, pair, docs):
        container, contained = pair
        if not query_contains(container, contained):
            return  # False carries no claim
        for document in docs:
            if bool_eval(contained, document):
                assert bool_eval(container, document), (
                    container.to_xpath(), contained.to_xpath(),
                    document.serialize())

    @settings(max_examples=60, deadline=None)
    @given(pair=generalization_pairs())
    def test_constructed_generalizations_are_proved(self, pair):
        """Completeness on the mutation set: every pair built from rewrites
        the prover documents as supported must come back True."""
        container, contained = pair
        assert query_contains(container, contained), (
            container.to_xpath(), contained.to_xpath())


class TestFindSubsumptions:
    def test_kinds_and_registration_order(self):
        named = [
            ("first", parse_query("/a/b[c = 1]")),
            ("dup", parse_query("/a/b[c = 1]")),
            ("wider", parse_query("/a//b")),
            ("other", parse_query("/d/e")),
        ]
        findings = find_subsumptions(named)
        by_kind = {}
        for finding in findings:
            by_kind.setdefault(finding.kind, []).append(finding)
        assert [(f.container, f.contained) for f in by_kind["duplicate"]] == [
            ("first", "dup")]
        assert ("wider", "first") in [
            (f.container, f.contained) for f in by_kind["subsumed"]]
        assert all(finding.contained != "other" and finding.container != "other"
                   for finding in findings)

    def test_equivalent_kind_for_mutual_containment(self):
        named = [
            ("one", parse_query("/a[b > 5]")),
            ("two", parse_query("/a[b>5]")),
        ]
        findings = find_subsumptions(named)
        # same canonical form -> interned as a duplicate, not 'equivalent'
        assert [f.kind for f in findings] == ["duplicate"]

    def test_pair_limit_truncates(self):
        named = [(f"q{i}", parse_query(f"/a/b{i}")) for i in range(6)]
        unlimited = find_subsumptions(named)
        limited = find_subsumptions(named, pair_limit=3)
        assert unlimited == []  # pairwise-disjoint labels: nothing subsumed
        assert limited == []

        nested = [("outer", parse_query("/a//b")),
                  ("inner", parse_query("/a/b")),
                  ("unrelated", parse_query("/x/y"))]
        assert find_subsumptions(nested, pair_limit=0) == []
        assert len(find_subsumptions(nested)) == 1

    def test_finding_roundtrips_to_dict(self):
        named = [("w", parse_query("/a//b")), ("n", parse_query("/a/b"))]
        (finding,) = find_subsumptions(named)
        data = finding.to_dict()
        assert data["kind"] == "subsumed"
        assert data["container"] == "w" and data["contained"] == "n"
        assert data["container_query"] == "/a//b"
