"""ASY104 fixture: spawned tasks that nobody retains (every variant caught)."""

import asyncio


async def orphan_direct(work):
    asyncio.create_task(work())  # line 7


async def orphan_ensure(work):
    asyncio.ensure_future(work())  # line 11


async def orphan_via_loop(work):
    loop = asyncio.get_event_loop()
    loop.create_task(work())  # line 16: method call on a non-asyncio name


async def orphan_via_running_loop(work):
    asyncio.get_running_loop().create_task(work())  # line 20: chained call


async def retained_is_fine(work):
    task = asyncio.create_task(work())
    await task


async def gathered_is_fine(work):
    await asyncio.gather(asyncio.create_task(work()))  # used as an argument
