"""ASY103 fixture: blocking calls inside coroutines (every variant caught)."""

import subprocess
import time
import time as clock


async def sleepy():
    time.sleep(1)  # line 9
    clock.sleep(1)  # line 10: aliased module import


async def shells_out():
    subprocess.run(["true"])  # line 14


async def reads_a_file(path):
    with open(path) as handle:  # line 18
        return handle.read()


def sync_helper_is_fine():
    time.sleep(0)  # sync context: not the event loop's problem


async def nested_sync_def_is_fine():
    def helper():
        time.sleep(0)  # runs only if called; a sync def is its own context
    return helper
