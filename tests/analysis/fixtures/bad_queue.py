"""ASY101 fixture: unbounded asyncio queues (every variant must be caught)."""

import asyncio
from asyncio import Queue as AliasedQueue

plain = asyncio.Queue()  # line 6: no maxsize at all
explicit_zero = asyncio.Queue(maxsize=0)  # line 7: constant-falsy bound
positional_zero = asyncio.LifoQueue(0)  # line 8: positional constant-falsy
from_import = AliasedQueue()  # line 9: resolved through the import table

bounded = asyncio.Queue(maxsize=128)  # fine
positional_bound = asyncio.PriorityQueue(16)  # fine
dynamic_bound = asyncio.Queue(maxsize=max(1, 0))  # non-constant: benefit of doubt
