"""Clean fixture: async code obeying every rule, including explicit waivers."""

import asyncio
import contextlib
import time


async def bounded_delivery():
    queue = asyncio.Queue(maxsize=64)
    await queue.put("item")
    return await queue.get()


async def cancellation_aware(task):
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        if not task.cancelled():
            raise
    except Exception:
        pass


async def narrow_suppression(writer):
    with contextlib.suppress(ConnectionError, TimeoutError):
        await writer.drain()


async def retained_background(work, registry):
    task = asyncio.create_task(work())
    registry.add(task)
    task.add_done_callback(registry.discard)


async def waived_unbounded_queue():
    # a test-only queue whose producer is strictly bounded elsewhere
    return asyncio.Queue()  # lint-async: allow[ASY101]


async def waived_on_previous_line(work):
    # lint-async: allow[ASY104]
    asyncio.create_task(work())


def sync_sleep_is_allowed():
    time.sleep(0)
