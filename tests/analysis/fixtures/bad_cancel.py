"""ASY102 fixture: swallowed task cancellation (every variant must be caught)."""

import asyncio
import contextlib


async def suppress_cancelled(task):
    with contextlib.suppress(asyncio.CancelledError):  # line 8
        await task


async def suppress_base(task):
    with contextlib.suppress(ValueError, BaseException):  # line 13
        await task


async def except_cancelled(task):
    try:
        await task
    except asyncio.CancelledError:  # line 20: no re-raise
        pass


async def bare_except(task):
    try:
        await task
    except:  # noqa: E722  line 27: catches everything, no re-raise
        pass


async def except_exception_is_fine(task):
    try:
        await task
    except Exception:  # CancelledError is a BaseException: not caught here
        pass


async def reraising_handler_is_fine(task):
    try:
        await task
    except asyncio.CancelledError:
        if not task.cancelled():
            raise
