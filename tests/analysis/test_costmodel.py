"""The static cost model: facts are right, and the memory bound is *sound*.

Soundness is the load-bearing claim: for any supported query and any document,
the engine's measured high-water marks (``peak_frontier_records``,
``peak_memory_bits`` from the Theorem 8.8 ``observe_bits`` accounting) must
sit under the static prediction instantiated at the document's actual depth.
That is checked three ways: directed facts on paper queries, the fooling-set
families from ``repro.lowerbounds`` (the worst documents the paper knows how
to build for a query's frontier), and hypothesis-random query/document pairs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis.costmodel import (
    analyze_query,
    predicted_frontier_records,
    predicted_memory_bits,
)
from repro.core import CompiledFilterBank, query_frontier_size
from repro.lowerbounds import build_frontier_family
from repro.xpath import parse_query

from ..strategies import documents, supported_queries

#: text-size assumption safely above anything the shared strategies generate
B = 256


def _measure(query, document):
    """Per-query high-water stats from the instrumented compiled engine."""
    bank = CompiledFilterBank(stats=True)
    bank.register("q", query)
    result = bank.filter_document(document)
    return result.per_query_stats["q"]


class TestDirectedFacts:
    def test_closure_free_record_bound_is_frontier_plus_root(self):
        query = parse_query("/a[c[e and f] and b > 5]")
        facts = analyze_query(query)
        assert facts.closure_free
        assert facts.frontier_size == query_frontier_size(query)
        assert facts.predicted_frontier_records == facts.frontier_size + 1

    def test_closure_chain_multiplies_by_depth(self):
        # //a//b: both steps are depth-exposed, so records scale with D per
        # level of the chain — 1 (root) + D (a) + D^2 (b)
        query = parse_query("//a//b")
        assert predicted_frontier_records(query, max_depth=5) == 1 + 5 + 25
        assert predicted_frontier_records(query, max_depth=1) == 3

    def test_depth_sensitivity_flags(self):
        assert analyze_query(parse_query("/a/b")).depth_sensitive is False
        assert analyze_query(parse_query("//a[b and c]")).depth_sensitive
        assert analyze_query(parse_query("/a[.//b]")).depth_sensitive

    def test_fast_path_and_value_facts(self):
        facts = analyze_query(parse_query("/a/b[value > 7]"))
        assert facts.fast_path_eligible
        assert facts.value_tests == 1
        assert facts.wildcard_steps == 0
        wild = analyze_query(parse_query("/a/*[b]"))
        assert wild.wildcard_steps == 1

    def test_memory_bits_monotone_in_assumptions(self):
        query = parse_query("//a[b and .//c]")
        base = predicted_memory_bits(query, max_depth=8, max_text_chars=32)
        assert predicted_memory_bits(query, max_depth=16,
                                     max_text_chars=32) > base
        assert predicted_memory_bits(query, max_depth=8,
                                     max_text_chars=512) > base
        facts = analyze_query(query, max_depth=8, max_text_chars=32)
        assert facts.predicted_bytes_per_subscription == (
            facts.predicted_memory_bits + 7) // 8

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            predicted_frontier_records(parse_query("/a"), max_depth=0)


class TestFoolingFamilies:
    """The bound must survive the paper's own worst-case documents."""

    FAMILY_QUERIES = [
        "/a[c[.//e and f] and b > 5]",   # Theorem 4.2's query
        "/r[c0 and c1 and c2]",          # flat conjunction, FS = 3
        "//a[b and c]",                  # recursive query, FS = 2
        "/a[b > 12 and .//b < 3]",       # value-separated same-name leaves
    ]

    @pytest.mark.parametrize("text", FAMILY_QUERIES)
    def test_measured_high_water_under_static_bound(self, text):
        query = parse_query(text)
        family = build_frontier_family(query, max_subsets=8)
        for pair in family.pairs:
            document = family.document_for(pair)
            if document is None:
                continue
            stats = _measure(query, document)
            depth = document.depth()
            records = predicted_frontier_records(query, max_depth=depth)
            bits = predicted_memory_bits(query, max_depth=depth,
                                         max_text_chars=B)
            assert stats.peak_buffer_chars <= B
            assert stats.peak_frontier_records <= records, pair.label
            assert stats.peak_memory_bits <= bits, pair.label

    def test_closure_free_bound_is_reached(self):
        """FS + 1 is tight, not just safe: the full-subset fooling document
        drives the engine to exactly the predicted record count."""
        query = parse_query("/r[c0 and c1 and c2]")
        family = build_frontier_family(query)
        peaks = []
        for pair in family.pairs:
            document = family.document_for(pair)
            if document is not None:
                peaks.append(_measure(query, document).peak_frontier_records)
        assert max(peaks) == predicted_frontier_records(query, max_depth=4)


class TestRandomizedSoundness:
    @settings(max_examples=60, deadline=None)
    @given(query=supported_queries(), document=documents())
    def test_measured_never_exceeds_prediction(self, query, document):
        stats = _measure(query, document)
        depth = document.depth()
        records = predicted_frontier_records(query, max_depth=max(depth, 1))
        bits = predicted_memory_bits(query, max_depth=max(depth, 1),
                                     max_text_chars=B)
        assert stats.peak_buffer_chars <= B
        assert stats.peak_frontier_records <= records, query.to_xpath()
        assert stats.peak_memory_bits <= bits, query.to_xpath()
