"""The async-discipline linter: fixtures must trip it, the real tree must not.

The linter (``repro.analysis.astlint``) is a CI gate, so its two failure modes
are both tested here: *missing* a violation (each fixture file in
``fixtures/`` exists to demonstrably fail with the expected rule codes at the
expected lines) and *inventing* one (the clean fixture and — the actual
shipped invariant — the entire ``src/repro`` tree must pass with zero
findings).
"""

from __future__ import annotations

import os
import textwrap

from repro.analysis.astlint import LintFinding, lint_paths, lint_source

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
SRC_REPRO = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)))), "src", "repro")


def _codes_by_line(findings):
    return sorted((finding.line, finding.code) for finding in findings)


def _lint_fixture(name: str):
    return lint_paths([os.path.join(FIXTURES, name)])


class TestFixturesFail:
    def test_unbounded_queues_every_variant(self):
        assert _codes_by_line(_lint_fixture("bad_queue.py")) == [
            (6, "ASY101"), (7, "ASY101"), (8, "ASY101"), (9, "ASY101")]

    def test_swallowed_cancellation_every_variant(self):
        assert _codes_by_line(_lint_fixture("bad_cancel.py")) == [
            (8, "ASY102"), (13, "ASY102"), (20, "ASY102"), (27, "ASY102")]

    def test_blocking_calls_every_variant(self):
        assert _codes_by_line(_lint_fixture("bad_blocking.py")) == [
            (9, "ASY103"), (10, "ASY103"), (14, "ASY103"), (18, "ASY103")]

    def test_orphaned_tasks_every_variant(self):
        assert _codes_by_line(_lint_fixture("bad_orphan.py")) == [
            (7, "ASY104"), (11, "ASY104"), (16, "ASY104"), (20, "ASY104")]


class TestCleanCode:
    def test_clean_fixture_passes(self):
        assert _lint_fixture("clean.py") == []

    def test_shipped_tree_is_lint_clean(self):
        """The invariant CI enforces: src/repro has no async-discipline
        violations (bounded queues, propagated cancellation, no blocking
        calls in coroutines, every spawned task retained)."""
        findings = lint_paths([SRC_REPRO])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestMechanics:
    def test_waiver_comment_suppresses_only_the_named_code(self):
        source = textwrap.dedent("""\
            import asyncio
            q = asyncio.Queue()  # lint-async: allow[ASY101]
            r = asyncio.Queue()  # lint-async: allow[ASY104]
        """)
        findings = lint_source(source)
        assert _codes_by_line(findings) == [(3, "ASY101")]

    def test_waiver_on_the_previous_line(self):
        source = textwrap.dedent("""\
            import asyncio
            # lint-async: allow[ASY101, ASY104]
            q = asyncio.Queue()
        """)
        assert lint_source(source) == []

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path="oops.py")
        assert len(findings) == 1
        assert findings[0].code == "ASY000"
        assert findings[0].path == "oops.py"

    def test_import_aliases_are_resolved(self):
        source = textwrap.dedent("""\
            import time as clock
            from asyncio import Queue

            async def spin():
                clock.sleep(1)
                Queue()
        """)
        assert sorted(f.code for f in lint_source(source)) == [
            "ASY101", "ASY103"]

    def test_finding_format_is_clickable(self):
        finding = LintFinding("src/x.py", 12, 4, "ASY101", "message")
        assert finding.format() == "src/x.py:12:4: ASY101 message"

    def test_findings_are_sorted_and_stable(self):
        findings = _lint_fixture("bad_queue.py")
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.code))
