"""Whole-bank analysis: the report aggregates correctly and the CLI gates.

``CompiledFilterBank.analyze()`` must mirror the bank's own interning (one
cost-facts entry per distinct canonical plan, fanned out to names), report the
trie-sharing factor against the real trie, and serialize to the JSON shape
``scripts/analyze_bank.py`` emits; the CLI itself is exercised end-to-end,
including its ``--self-check`` mode on a workload with injected redundancy.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.bank import analyze_queries
from repro.core import CompiledFilterBank
from repro.xpath import parse_query

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _bank(*texts):
    bank = CompiledFilterBank()
    for index, text in enumerate(texts):
        bank.register(f"q{index}", parse_query(text))
    return bank


class TestBankAnalysis:
    def test_plans_are_interned_by_canonical_form(self):
        bank = _bank("/a/b[c = 1]", "/a/b[c=1]", "/a//b")
        analysis = bank.analyze()
        assert analysis.subscription_count == 3
        assert analysis.distinct_plan_count == 2
        assert analysis.subscriptions["q0"] == analysis.subscriptions["q1"]
        assert analysis.facts_for("q0") is analysis.facts_for("q1")

    def test_trie_sharing_factor_matches_the_real_trie(self):
        bank = _bank("/a/b/c", "/a/b/d", "/a/b/e")
        analysis = bank.analyze()
        assert analysis.trie_size == bank.trie_size()
        # 9 unshared steps over a 5-node trie (a, b shared; c, d, e split)
        assert analysis.unshared_step_count == 9
        assert analysis.trie_sharing_factor == pytest.approx(9 / 5)

    def test_summary_counts_and_totals(self):
        bank = _bank("/a/b", "//a[b and .//c]")
        summary = bank.analyze().summary()
        assert summary["subscription_count"] == 2
        assert summary["closure_free_subscriptions"] == 1
        assert summary["depth_sensitive_subscriptions"] == 1
        assert summary["predicted_total_bytes"] == (
            bank.analyze().predicted_total_bytes())
        assert summary["max_frontier_size"] >= 2  # the conjunctive query

    def test_report_is_json_serializable(self):
        analysis = _bank("/a/b[c > 5]", "/a//b").analyze()
        report = json.loads(json.dumps(analysis.to_dict()))
        assert report["assumptions"] == {"max_depth": 32,
                                         "max_text_chars": 256}
        assert set(report["plans"]) == set(analysis.plans)
        for facts in report["plans"].values():
            assert facts["frontier_size"] >= 1
            assert facts["predicted_memory_bits"] > 0

    def test_subsumption_can_be_disabled_and_limited(self):
        bank = _bank("/a//b", "/a/b")
        assert bank.analyze(subsumption=False).subsumptions == []
        limited = bank.analyze(pair_limit=0)
        assert limited.subsumption_truncated
        assert limited.subsumptions == []
        full = bank.analyze()
        assert not full.subsumption_truncated
        assert [f.kind for f in full.subsumptions] == ["subsumed"]

    def test_duplicate_names_rejected_without_a_bank(self):
        with pytest.raises(ValueError, match="duplicate subscription name"):
            analyze_queries([("q", parse_query("/a")),
                             ("q", parse_query("/b"))])

    def test_empty_bank_analyzes_cleanly(self):
        analysis = CompiledFilterBank().analyze()
        assert analysis.subscription_count == 0
        assert analysis.summary()["max_frontier_size"] == 0
        json.dumps(analysis.to_dict())


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, os.path.join(ROOT, "scripts", "analyze_bank.py"),
         *args],
        capture_output=True, text=True, cwd=ROOT)


class TestAnalyzeBankCli:
    def test_generated_workload_report(self):
        proc = _run_cli("--count", "40", "--inject-duplicates")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["summary"]["subscription_count"] == 42
        assert "injected_duplicate" in report["subscriptions"]
        kinds = report["summary"]["subsumption_findings"]
        assert kinds.get("duplicate", 0) >= 1

    def test_self_check_passes_on_small_injected_workload(self):
        # the CI job runs the full 1000-subscription default; the suite keeps
        # it small — the assertions are size-independent except the floor,
        # so only verify the wiring end-to-end here
        proc = _run_cli("--count", "30", "--inject-duplicates",
                        "--summary-only")
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["subsumption_findings"].get("duplicate", 0) >= 1
        assert summary["trie_sharing_factor"] > 1.0

    def test_queries_file_mode(self, tmp_path):
        queries = tmp_path / "subs.txt"
        queries.write_text("# comment\n/a/b\n\n/a//b\n")
        proc = _run_cli("--queries", str(queries), "--summary-only")
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["subscription_count"] == 2
        assert summary["subsumption_findings"] == {"subsumed": 1}

    def test_output_file(self, tmp_path):
        target = tmp_path / "report.json"
        proc = _run_cli("--count", "5", "--output", str(target))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(target.read_text())
        assert report["summary"]["subscription_count"] == 5
