"""The publish log's replay and compaction invariants.

The service's at-least-once contract reduces to three properties of this layer:
a scan returns every logged document in publish order with the latest cursor
per client, cursors never regress, and compaction never discards a document
above the minimum live cursor (so nothing a client might still need to
re-receive can be lost to a rewrite).
"""

import pytest

from repro.durable import DEFAULT_COMPACT_THRESHOLD, PublishLog


def _log(tmp_path, **kwargs):
    return PublishLog(str(tmp_path / "publish.wal"), **kwargs)


class TestScan:
    def test_documents_come_back_in_publish_order(self, tmp_path):
        with _log(tmp_path) as log:
            for doc_id in (1, 2, 3):
                log.append_document(doc_id, f"<d>{doc_id}</d>")
            scan = log.scan()
        assert [(d.document_id, d.text) for d in scan.documents] == \
            [(1, "<d>1</d>"), (2, "<d>2</d>"), (3, "<d>3</d>")]
        assert scan.cursors == {}

    def test_latest_cursor_per_client_wins(self, tmp_path):
        with _log(tmp_path) as log:
            log.append_cursor("a", 3)
            log.append_cursor("b", 1)
            log.append_cursor("a", 7)
            assert log.scan().cursors == {"a": 7, "b": 1}
            assert log.cursor("a") == 7
            assert log.cursor("unknown") == 0

    def test_stale_cursor_records_never_regress_the_cursor(self, tmp_path):
        with _log(tmp_path) as log:
            log.append_cursor("a", 9)
            log.append_cursor("a", 4)  # a re-ack after replay: logged, ignored
            assert log.cursor("a") == 9
            assert log.scan().cursors == {"a": 9}

    def test_cursors_survive_reopen(self, tmp_path):
        with _log(tmp_path) as log:
            log.append_document(1, "<d/>")
            log.append_cursor("a", 1)
        with _log(tmp_path) as log:
            assert log.cursor("a") == 1
            assert log.cursors() == {"a": 1}
            scan = log.scan()
            assert [d.document_id for d in scan.documents] == [1]

    def test_unicode_documents_round_trip(self, tmp_path):
        text = "<d a=\"q&quot;uote\">café ☃</d>"
        with _log(tmp_path) as log:
            log.append_document(1, text)
            assert log.scan().documents[0].text == text


class TestCompaction:
    def _seed(self, log, docs=6):
        for doc_id in range(1, docs + 1):
            log.append_document(doc_id, f"<d>{doc_id}</d>")

    def test_compact_drops_documents_at_or_below_the_minimum_cursor(
            self, tmp_path):
        with _log(tmp_path) as log:
            self._seed(log)
            log.append_cursor("a", 4)
            log.append_cursor("b", 2)
            freed = log.compact(["a", "b"])
            assert freed > 0
            scan = log.scan()
            # the floor is min(4, 2) = 2: documents 1-2 are gone, 3-6 kept
            assert [d.document_id for d in scan.documents] == [3, 4, 5, 6]
            assert scan.cursors == {"a": 4, "b": 2}

    def test_compact_keeps_only_the_latest_cursor_record_per_client(
            self, tmp_path):
        with _log(tmp_path) as log:
            for doc_id in (1, 2, 3):
                log.append_document(doc_id, "<d/>")
                log.append_cursor("a", doc_id)
            log.compact(["a"])
        # reopen and re-scan from disk: one cursor record survived
        with _log(tmp_path) as log:
            assert log.cursor("a") == 3
            assert log.scan().documents == []

    def test_client_without_cursor_pins_everything(self, tmp_path):
        """A live client that never acked has cursor 0: nothing may be
        discarded, because it might still need every document."""
        with _log(tmp_path) as log:
            self._seed(log)
            log.append_cursor("a", 6)
            log.compact(["a", "never-acked"])
            assert [d.document_id for d in log.scan().documents] == \
                [1, 2, 3, 4, 5, 6]

    def test_departed_clients_do_not_pin_the_log(self, tmp_path):
        """Restricting the floor to live clients lets a gone client's low
        cursor be ignored — its records stay but stop bounding retention."""
        with _log(tmp_path) as log:
            self._seed(log)
            log.append_cursor("gone", 1)
            log.append_cursor("live", 5)
            log.compact(["live"])
            assert [d.document_id for d in log.scan().documents] == [6]

    def test_no_cursor_evidence_keeps_everything(self, tmp_path):
        with _log(tmp_path) as log:
            self._seed(log)
            assert log.compact() == 0
            assert len(log.scan().documents) == 6

    def test_maybe_compact_is_size_gated(self, tmp_path):
        with _log(tmp_path, compact_threshold=200) as log:
            log.append_document(1, "<d/>")
            log.append_cursor("a", 1)
            assert log.maybe_compact(["a"]) == 0  # under the threshold
            self._seed(log)
            log.append_document(99, "x" * 300)
            log.append_cursor("a", 99)
            assert log.maybe_compact(["a"]) > 0
            assert log.scan().documents == []

    def test_forget_unpins_a_disconnected_client(self, tmp_path):
        with _log(tmp_path) as log:
            self._seed(log)
            log.append_cursor("a", 1)
            log.append_cursor("b", 6)
            log.forget("a")
            log.compact()  # no live list: every *remembered* cursor counts
            assert [d.document_id for d in log.scan().documents] == []

    def test_default_threshold_is_a_megabyte(self):
        assert DEFAULT_COMPACT_THRESHOLD == 1 << 20

    def test_replay_still_correct_after_compaction_and_reopen(self, tmp_path):
        """The end-to-end shape recovery relies on: compaction then crash then
        reopen yields exactly the documents above the floor."""
        with _log(tmp_path) as log:
            self._seed(log, docs=10)
            log.append_cursor("a", 7)
            log.compact(["a"])
            log.append_document(11, "<d>11</d>")
        with _log(tmp_path) as log:
            scan = log.scan()
            assert [d.document_id for d in scan.documents] == [8, 9, 10, 11]
            assert scan.cursors == {"a": 7}


class TestRobustness:
    def test_foreign_records_in_the_wal_are_skipped(self, tmp_path):
        """A future record type (or garbage body) must not break the scan of
        the records this version understands."""
        path = str(tmp_path / "publish.wal")
        with PublishLog(path) as log:
            log.append_document(1, "<d/>")
        from repro.durable import WriteAheadLog
        with WriteAheadLog(path) as wal:
            wal.append(b"Z" + b"\x00" * 8 + b"future record type")
            wal.append(b"D")  # too short to carry a document id
        with PublishLog(path) as log:
            scan = log.scan()
            assert [d.document_id for d in scan.documents] == [1]
            log.append_document(2, "<d/>")
            assert [d.document_id for d in log.scan().documents] == [1, 2]

    def test_bad_fsync_policy_propagates(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            _log(tmp_path, fsync="bogus")


class TestForgetCompaction:
    """``forget()`` re-checks compaction itself (PR 8 satellite): a departed
    laggard whose low cursor pinned the log must release that space at the
    moment it is forgotten, not whenever the next ack happens by."""

    def test_forget_compacts_opportunistically(self, tmp_path):
        with PublishLog(str(tmp_path / "publish.wal"),
                        compact_threshold=64) as log:
            for doc_id in range(1, 6):
                log.append_document(doc_id, "<d>" + "x" * 50 + "</d>")
            log.append_cursor("laggard", 1)   # pins docs 2..5
            log.append_cursor("ahead", 5)
            before = log.size_bytes
            freed = log.forget("laggard")
            assert freed > 0
            assert log.size_bytes == before - freed
            # the floor rose to "ahead"'s cursor: nothing left to replay
            assert log.scan().documents == []
            assert log.cursors() == {"ahead": 5}

    def test_forget_is_still_size_gated(self, tmp_path):
        with PublishLog(str(tmp_path / "publish.wal"),
                        compact_threshold=1 << 20) as log:
            log.append_document(1, "<d/>")
            log.append_cursor("laggard", 1)
            assert log.forget("laggard") == 0  # under the threshold: no rewrite
            assert len(log.scan().documents) == 1

    def test_forget_of_unknown_client_is_a_noop(self, tmp_path):
        with PublishLog(str(tmp_path / "publish.wal"),
                        compact_threshold=0) as log:
            log.append_document(1, "<d/>")
            assert log.forget("nobody") == 0
            assert len(log.scan().documents) == 1
