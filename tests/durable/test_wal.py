"""The write-ahead log must survive exactly the crashes it promises to survive.

Every durability claim the service layer builds on is pinned here at the record
level: round trips, strictly monotonic LSNs across reopen and rewrite, and —
the load-bearing one — torn-tail tolerance: a log truncated or corrupted at any
byte of its final record yields every record before it and not one byte after.
"""

import os
import struct

import pytest

from repro.durable import WalError, WalRecord, WriteAheadLog, scan_wal


def _wal(tmp_path, **kwargs):
    return WriteAheadLog(str(tmp_path / "test.wal"), **kwargs)


class TestRoundTrip:
    def test_append_and_read_back(self, tmp_path):
        with _wal(tmp_path) as wal:
            lsns = [wal.append(f"record {i}".encode()) for i in range(5)]
            assert lsns == [1, 2, 3, 4, 5]
            records = wal.records()
        assert [r.lsn for r in records] == lsns
        assert [r.body for r in records] == [f"record {i}".encode()
                                             for i in range(5)]

    def test_missing_file_scans_empty(self, tmp_path):
        assert list(scan_wal(str(tmp_path / "absent.wal"))) == []

    def test_empty_bodies_and_binary_bodies_round_trip(self, tmp_path):
        bodies = [b"", bytes(range(256)), b"\x00" * 100]
        with _wal(tmp_path) as wal:
            for body in bodies:
                wal.append(body)
            assert [r.body for r in wal.records()] == bodies

    def test_lsns_continue_across_reopen(self, tmp_path):
        with _wal(tmp_path) as wal:
            wal.append(b"one")
            wal.append(b"two")
        with _wal(tmp_path) as wal:
            assert wal.next_lsn == 3
            assert wal.append(b"three") == 3
            assert [r.lsn for r in wal.records()] == [1, 2, 3]

    def test_size_bytes_tracks_the_file(self, tmp_path):
        with _wal(tmp_path) as wal:
            assert wal.size_bytes == 0
            wal.append(b"x" * 10)
            assert wal.size_bytes == os.path.getsize(wal.path)

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = _wal(tmp_path)
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            wal.append(b"late")

    def test_bad_fsync_policy_is_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            _wal(tmp_path, fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_every_policy_round_trips(self, tmp_path, policy):
        with _wal(tmp_path, fsync=policy) as wal:
            wal.append(b"body")
            wal.sync()
        assert [r.body for r in scan_wal(str(tmp_path / "test.wal"))] == \
            [b"body"]


class TestTornTail:
    def _written(self, tmp_path, count=4):
        path = str(tmp_path / "test.wal")
        with WriteAheadLog(path) as wal:
            for i in range(count):
                wal.append(f"record {i}".encode())
        return path

    @pytest.mark.parametrize("cut", [1, 3, 7, 9, 14])
    def test_truncation_at_any_offset_of_the_last_record_loses_only_it(
            self, tmp_path, cut):
        """Cut the file ``cut`` bytes into the final record: the reader must
        return exactly the first three records, byte-for-byte intact."""
        path = self._written(tmp_path)
        size = os.path.getsize(path)
        record_bytes = size // 4
        with open(path, "r+b") as handle:
            handle.truncate(size - record_bytes + cut)
        records = list(scan_wal(path))
        assert [r.body for r in records] == [b"record 0", b"record 1",
                                             b"record 2"]

    def test_corrupt_crc_stops_the_scan_there(self, tmp_path):
        path = self._written(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 1)  # last byte of the last record's body
            handle.write(b"\xff")
        assert [r.body for r in scan_wal(path)] == [b"record 0", b"record 1",
                                                    b"record 2"]

    def test_corruption_mid_log_hides_everything_after_it(self, tmp_path):
        """No resynchronization: a corrupt record ends the log even when valid
        records follow it (they are unreachable without trusting garbage)."""
        path = self._written(tmp_path)
        record_bytes = os.path.getsize(path) // 4
        with open(path, "r+b") as handle:
            handle.seek(record_bytes + 8)  # inside record 1
            handle.write(b"\xff\xff")
        assert [r.body for r in scan_wal(path)] == [b"record 0"]

    def test_garbage_length_prefix_stops_the_scan(self, tmp_path):
        path = self._written(tmp_path, count=1)
        with open(path, "ab") as handle:
            handle.write(struct.pack("!II", 2 ** 31, 0))  # absurd length
        assert [r.body for r in scan_wal(path)] == [b"record 0"]

    def test_reopen_truncates_the_torn_tail_before_appending(self, tmp_path):
        """New records must never land after garbage — they would be invisible
        behind the reader's corruption stop."""
        path = self._written(tmp_path, count=2)
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x10partial")  # torn record
        with WriteAheadLog(path) as wal:
            assert wal.next_lsn == 3
            wal.append(b"after the tear")
            assert [r.body for r in wal.records()] == \
                [b"record 0", b"record 1", b"after the tear"]

    def test_non_monotonic_lsn_is_treated_as_corruption(self, tmp_path):
        path = str(tmp_path / "test.wal")
        with WriteAheadLog(path) as wal:
            wal.append(b"one")
            tail = wal.records()[0]
        with open(path, "ab") as handle:
            # duplicate the first record verbatim: valid CRC, repeated LSN
            payload = struct.pack("!Q", tail.lsn) + tail.body
            handle.write(struct.pack("!II", len(payload),
                                     __import__("zlib").crc32(payload)))
            handle.write(payload)
        assert [r.body for r in scan_wal(path)] == [b"one"]


class TestRewrite:
    def test_rewrite_keeps_a_subsequence_and_lsns_never_regress(self, tmp_path):
        with _wal(tmp_path) as wal:
            for i in range(6):
                wal.append(f"r{i}".encode())
            keep = [r for r in wal.records() if r.lsn in (3, 5)]
            wal.rewrite(keep)
            assert [(r.lsn, r.body) for r in wal.records()] == \
                [(3, b"r2"), (5, b"r4")]
            # the next append continues above the pre-rewrite maximum even
            # though the rewrite dropped record 6
            assert wal.append(b"new") == 7

    def test_rewrite_to_empty(self, tmp_path):
        with _wal(tmp_path) as wal:
            wal.append(b"gone")
            wal.rewrite([])
            assert wal.records() == []
            assert wal.size_bytes == 0
            assert wal.append(b"fresh") == 2

    def test_rewrite_rejects_unsorted_records(self, tmp_path):
        with _wal(tmp_path) as wal:
            wal.append(b"a")
            wal.append(b"b")
            records = wal.records()
            with pytest.raises(WalError, match="strictly increasing"):
                wal.rewrite(reversed(records))

    def test_rewrite_survives_reopen(self, tmp_path):
        path = str(tmp_path / "test.wal")
        with WriteAheadLog(path) as wal:
            for i in range(4):
                wal.append(f"r{i}".encode())
            wal.rewrite([r for r in wal.records() if r.lsn > 2])
        with WriteAheadLog(path) as wal:
            assert [r.lsn for r in wal.records()] == [3, 4]
            assert wal.next_lsn == 5

    def test_rewritten_records_stay_scannable_without_the_writer(self, tmp_path):
        with _wal(tmp_path) as wal:
            lsn = wal.append(b"kept")
            wal.rewrite([WalRecord(lsn, b"kept")])
        assert [r.body for r in scan_wal(str(tmp_path / "test.wal"))] == \
            [b"kept"]
