"""End-to-end integration tests: every layer of the library working together."""

import pytest

from repro import (
    bool_eval,
    build_canonical_document,
    classify,
    filter_document,
    filter_with_statistics,
    parse_document,
    parse_query,
    query_frontier_size,
    trace_run,
)
from repro.baselines import EagerDFAFilter, NaiveDOMFilter
from repro.core import path_recursion_depth, text_width
from repro.lowerbounds import (
    build_frontier_family,
    build_simple_recursion_family,
    measure_filter_cut_state,
    verify_frontier_family,
    verify_recursion_family,
)
from repro.workloads import book_catalog, dissemination_queries, nested_sections


class TestPublicAPI:
    def test_quickstart_from_readme(self):
        query = parse_query("/catalog/book[price < 20]")
        document = parse_document(
            "<catalog><book><price>12</price></book>"
            "<book><price>55</price></book></catalog>"
        )
        assert filter_document(query, document)
        assert bool_eval(query, document)

    def test_classification_and_frontier(self):
        query = parse_query("/a[c[.//e and f] and b > 5]")
        info = classify(query)
        assert info.redundancy_free
        assert query_frontier_size(query) == 3

    def test_canonical_document_pipeline(self):
        query = parse_query("/a[c[.//e and f] and b > 5]")
        canonical = build_canonical_document(query)
        assert filter_document(query, canonical.document)
        assert bool_eval(query, canonical.document)

    def test_trace_pipeline(self):
        query = parse_query("/a[c[.//e and f] and b]")
        document = parse_document("<a><c><d/><e/><f/></c><b/><c/></a>")
        trace = trace_run(query, document)
        assert trace.final_root_matched() is True
        assert trace.max_frontier_tuples() == 3


class TestCrossLayerConsistency:
    def test_upper_bound_formula_holds_on_datasets(self):
        """The Theorem 8.8 shape: peak frontier tuples <= |Q| * r (+ the root tuple)."""
        documents = [book_catalog(10), nested_sections(5)]
        for text in dissemination_queries():
            query = parse_query(text)
            for document in documents:
                decision, stats = filter_with_statistics(query, document)
                assert decision == bool_eval(query, document)
                r = max(path_recursion_depth(query, document), 1)
                assert stats.peak_frontier_records <= query.size() * r + 1
                assert stats.peak_buffer_chars <= max(
                    text_width(query, document),
                    stats.peak_buffer_chars and text_width(query, document),
                )

    def test_lower_and_upper_bounds_sandwich_the_filter(self):
        """On the Theorem 4.2 adversarial family the filter's cut state is at least
        FS(Q) tuples (lower bound) and at most FS(Q) + 1 tuples (Theorem 8.8 upper
        bound for this path-consistency-free query on non-recursive documents)."""
        query = parse_query("/a[c[.//e and f] and b > 5]")
        family = build_frontier_family(query)
        assert verify_frontier_family(family).valid
        measurement = measure_filter_cut_state(
            query, family.pairs, [True] * len(family.pairs)
        )
        fs = query_frontier_size(query)
        assert fs <= measurement.max_frontier_tuples <= fs + 1

    def test_recursion_bound_and_filter_agree(self):
        family = build_simple_recursion_family(5, max_instances=32)
        assert verify_recursion_family(family).valid
        measurement = measure_filter_cut_state(
            family.query, family.instances,
            [i.intersecting for i in family.instances],
        )
        assert measurement.decisions_correct
        assert measurement.max_frontier_tuples >= family.r

    def test_filter_vs_baselines_on_shared_workload(self):
        query = parse_query("//section//title")
        document = nested_sections(5)
        expected = bool_eval(query, document)
        assert filter_document(query, document) == expected
        assert NaiveDOMFilter(query).run_document(document) == expected
        assert EagerDFAFilter(query).run_document(document) == expected

    def test_streaming_filter_handles_large_document(self):
        query = parse_query("/catalog/book[price < 10]")
        catalog = book_catalog(400, seed=3)
        decision, stats = filter_with_statistics(query, catalog)
        assert decision == bool_eval(query, catalog)
        # memory stays tiny even though the catalog has hundreds of elements
        assert stats.peak_frontier_records <= 6
