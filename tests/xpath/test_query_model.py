"""Edge-case tests for the query tree model (structure, validation, rendering)."""

import pytest

from repro.xpath import Query, QueryNode, parse_query
from repro.xpath.ast import NodeRef
from repro.xpath.query import CHILD, collect_leaves, iter_succession_chain


class TestQueryNodeInvariants:
    def test_at_most_one_successor(self):
        parent = QueryNode(CHILD, "a")
        parent.add_child(QueryNode(CHILD, "b"), successor=True)
        with pytest.raises(ValueError):
            parent.add_child(QueryNode(CHILD, "c"), successor=True)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            QueryNode("following-sibling", "a")

    def test_query_root_must_have_no_parent(self):
        root = QueryNode.root()
        child = root.add_child(QueryNode(CHILD, "a"), successor=True)
        with pytest.raises(ValueError):
            Query(child)

    def test_depth_and_path(self):
        q = parse_query("/a/b/c")
        c = q.output_node()
        assert c.depth() == 3
        assert [n.ntest for n in c.path_from_root()[1:]] == ["a", "b", "c"]

    def test_iter_succession_chain(self):
        q = parse_query("/a[x]/b/c")
        chain = list(iter_succession_chain(q.root.successor))
        assert [n.ntest for n in chain] == ["a", "b", "c"]

    def test_collect_leaves(self):
        q = parse_query("/a[b and c[d]]")
        assert sorted(n.ntest for n in collect_leaves(q)) == ["b", "d"]

    def test_is_ancestor_of(self):
        q = parse_query("/a[b[c]]")
        a = q.root.successor
        c = [n for n in q.non_root_nodes() if n.ntest == "c"][0]
        assert a.is_ancestor_of(c)
        assert not c.is_ancestor_of(a)


class TestValidation:
    def test_predicate_leaf_must_point_at_own_child(self):
        q = parse_query("/a[b]")
        a = q.root.successor
        foreign = QueryNode(CHILD, "z")
        a.predicate = NodeRef(foreign)
        with pytest.raises(ValueError):
            q.validate()

    def test_unreferenced_predicate_child_is_rejected(self):
        q = parse_query("/a[b]")
        a = q.root.successor
        a.add_child(QueryNode(CHILD, "orphan"))
        with pytest.raises(ValueError):
            q.validate()

    def test_two_leaves_pointing_at_same_child_rejected(self):
        from repro.xpath.ast import And

        q = parse_query("/a[b]")
        a = q.root.successor
        b = a.predicate_children()[0]
        a.predicate = And(NodeRef(b), NodeRef(b))
        with pytest.raises(ValueError):
            q.validate()


class TestRendering:
    def test_step_string(self):
        q = parse_query("//a[b > 5]/c")
        a = q.root.successor
        assert a.step_string() == "//a[b > 5]"
        assert q.root.step_string() == ""

    def test_relative_path_rendering_in_predicates(self):
        q = parse_query("/a[.//b/c > 5 and @id = 3]")
        text = q.to_xpath()
        reparsed = parse_query(text)
        assert reparsed.size() == q.size()
        assert ".//b/c" in text
        assert "@id" in text

    def test_query_depth(self):
        assert parse_query("/a[b[c]]/d").depth() == 3

    def test_source_is_preserved(self):
        q = parse_query("/a/b")
        assert q.source == "/a/b"
