"""Tests for the XPath tokenizer."""

import pytest

from repro.xpath.lexer import (
    COMPARE,
    DOT_DOUBLE_SLASH,
    DOUBLE_SLASH,
    NAME,
    NUMBER,
    SLASH,
    STAR,
    STRING,
    TokenStream,
    XPathSyntaxError,
    tokenize,
)


class TestTokenize:
    def test_simple_path(self):
        kinds = [t.kind for t in tokenize("/a//b")][:-1]
        assert kinds == [SLASH, NAME, DOUBLE_SLASH, NAME]

    def test_dot_double_slash_is_one_token(self):
        kinds = [t.kind for t in tokenize(".//e")][:-1]
        assert kinds == [DOT_DOUBLE_SLASH, NAME]

    def test_comparison_operators(self):
        for text in ("=", "!=", "<", "<=", ">", ">="):
            tokens = tokenize(f"a {text} 5")
            assert tokens[1].kind == COMPARE
            assert tokens[1].text == text

    def test_numbers_and_strings(self):
        tokens = tokenize('5 3.25 "hi" \'there\'')
        assert [t.kind for t in tokens[:-1]] == [NUMBER, NUMBER, STRING, STRING]

    def test_function_names_with_hyphens_lex_as_single_name(self):
        tokens = tokenize("fn:starts-with(b, \"A\")")
        assert tokens[0].kind == NAME
        assert tokens[0].text == "fn:starts-with"

    def test_wildcard(self):
        assert tokenize("*")[0].kind == STAR

    def test_unknown_character_raises(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("/a[b ? 5]")

    def test_positions_are_recorded(self):
        tokens = tokenize("/abc/d")
        assert tokens[1].position == 1
        assert tokens[3].position == 5


class TestTokenStream:
    def test_peek_and_next(self):
        stream = TokenStream.from_text("/a")
        assert stream.peek().kind == SLASH
        assert stream.next().kind == SLASH
        assert stream.peek().kind == NAME

    def test_accept_returns_none_on_mismatch(self):
        stream = TokenStream.from_text("/a")
        assert stream.accept(NAME) is None
        assert stream.accept(SLASH) is not None

    def test_expect_raises_on_mismatch(self):
        stream = TokenStream.from_text("/a")
        with pytest.raises(XPathSyntaxError):
            stream.expect(NAME)

    def test_end_is_sticky(self):
        stream = TokenStream.from_text("a")
        stream.next()
        assert stream.at_end()
        assert stream.next().kind == "END"
        assert stream.at_end()
