"""Tests for value conversions (EBV, casts, comparisons) and the function library."""

import math

import pytest

from repro.xpath import call_function, lookup_function, UnknownFunctionError
from repro.xpath.values import (
    arithmetic_atomic,
    cartesian_sequences,
    compare_atomic,
    effective_boolean_value,
    negate_atomic,
    to_number,
    to_string,
)


class TestConversions:
    def test_to_number_of_numeric_strings(self):
        assert to_number("6") == 6.0
        assert to_number(" 3.5 ") == 3.5
        assert to_number("-2") == -2.0

    def test_to_number_of_garbage_is_nan(self):
        assert math.isnan(to_number("hello"))
        assert math.isnan(to_number(""))

    def test_to_number_of_sequence_uses_first(self):
        assert to_number(["7", "9"]) == 7.0
        assert math.isnan(to_number([]))

    def test_to_string_of_numbers(self):
        assert to_string(5.0) == "5"
        assert to_string(5.5) == "5.5"
        assert to_string(True) == "true"

    def test_effective_boolean_value_of_sequences(self):
        assert effective_boolean_value(["anything"]) is True
        assert effective_boolean_value([]) is False
        assert effective_boolean_value(["", ""]) is True  # non-empty sequence

    def test_effective_boolean_value_of_atomics(self):
        assert effective_boolean_value("x") is True
        assert effective_boolean_value("") is False
        assert effective_boolean_value(0.0) is False
        assert effective_boolean_value(3.0) is True
        assert effective_boolean_value(float("nan")) is False


class TestComparisons:
    def test_numeric_comparisons_on_strings(self):
        assert compare_atomic(">", "6", 5.0)
        assert not compare_atomic(">", "4", 5.0)
        assert compare_atomic("<=", "5", 5.0)
        assert compare_atomic("!=", "5", 6.0)

    def test_string_comparison_when_not_numeric(self):
        assert compare_atomic("=", "hello", "hello")
        assert not compare_atomic("=", "hello", "world")
        assert compare_atomic("<", "abc", "abd")

    def test_nan_comparisons_are_false(self):
        assert not compare_atomic(">", "hello", 5.0)
        assert not compare_atomic("<", "hello", 5.0)
        assert not compare_atomic("=", "hello", 5.0)

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            compare_atomic("~", "1", "2")


class TestArithmetic:
    def test_basic_operators(self):
        assert arithmetic_atomic("+", "2", "3") == 5.0
        assert arithmetic_atomic("-", "2", "3") == -1.0
        assert arithmetic_atomic("*", "2", "3") == 6.0
        assert arithmetic_atomic("div", "7", "2") == 3.5
        assert arithmetic_atomic("idiv", "7", "2") == 3.0
        assert arithmetic_atomic("mod", "7", "2") == 1.0

    def test_division_by_zero_is_nan(self):
        assert math.isnan(arithmetic_atomic("div", "1", "0"))

    def test_nan_propagates(self):
        assert math.isnan(arithmetic_atomic("+", "hello", "1"))

    def test_negation(self):
        assert negate_atomic("5") == -5.0
        assert math.isnan(negate_atomic("x"))


class TestCartesian:
    def test_cartesian_order_is_lexicographic(self):
        combos = list(cartesian_sequences([["1", "2"], ["a", "b"]]))
        assert combos == [["1", "a"], ["1", "b"], ["2", "a"], ["2", "b"]]

    def test_cartesian_with_empty_sequence_is_empty(self):
        assert list(cartesian_sequences([["1"], []])) == []

    def test_cartesian_of_nothing_is_single_empty_combo(self):
        assert list(cartesian_sequences([])) == [[]]


class TestFunctionLibrary:
    def test_string_predicates(self):
        assert call_function("contains", ["hello", "ell"]) is True
        assert call_function("starts-with", ["hello", "he"]) is True
        assert call_function("ends-with", ["hello", "lo"]) is True
        assert call_function("fn:matches", ["AxB", "^A.*B$"]) is True
        assert call_function("matches", ["hello", "^A"]) is False

    def test_matches_with_invalid_regex_is_false(self):
        assert call_function("matches", ["x", "["]) is False

    def test_string_constructors(self):
        assert call_function("concat", ["a", "b", "c"]) == "abc"
        assert call_function("upper-case", ["abc"]) == "ABC"
        assert call_function("substring", ["hello", 2.0, 3.0]) == "ell"
        assert call_function("substring", ["hello", 3.0]) == "llo"
        assert call_function("string-length", ["hello"]) == 5.0
        assert call_function("normalize-space", ["  a  b "]) == "a b"

    def test_numeric_functions(self):
        assert call_function("abs", ["-3"]) == 3.0
        assert call_function("floor", ["3.7"]) == 3.0
        assert call_function("ceiling", ["3.2"]) == 4.0
        assert call_function("round", ["3.5"]) == 4.0
        assert call_function("number", ["12"]) == 12.0

    def test_boolean_constants(self):
        assert call_function("true", []) is True
        assert call_function("false", []) is False

    def test_fn_prefix_is_equivalent(self):
        assert lookup_function("contains") is lookup_function("fn:contains")

    def test_boolean_output_flags(self):
        assert lookup_function("contains").boolean_output
        assert not lookup_function("concat").boolean_output

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            call_function("no-such-function", [])

    def test_wrong_arity_raises(self):
        with pytest.raises(UnknownFunctionError):
            call_function("contains", ["only-one"])
