"""Direct tests of the generic predicate-expression evaluator (the PEVAL rules)."""

import math

from repro.xpath import parse_predicate
from repro.xpath.ast import NodeRef
from repro.xpath.evalexpr import evaluate_expression, evaluate_predicate
from repro.xpath.query import CHILD, QueryNode


def make_resolver(values_by_name):
    """Resolver mapping a NodeRef to the configured value sequence of its target name."""

    def resolver(ref: NodeRef):
        return list(values_by_name.get(ref.target.ntest, []))

    return resolver


def parse_with_owner(text):
    owner = QueryNode(CHILD, "owner")
    expr = parse_predicate(text, owner)
    return expr


class TestRuleByRule:
    def test_constant_rule(self):
        expr = parse_with_owner("5 = 5")
        assert evaluate_predicate(expr, make_resolver({})) is True

    def test_noderef_rule_returns_sequence(self):
        expr = parse_with_owner("b")
        value = evaluate_expression(expr, make_resolver({"b": ["x", "y"]}))
        assert value == ["x", "y"]

    def test_empty_selection_is_false_via_ebv(self):
        expr = parse_with_owner("b")
        assert evaluate_predicate(expr, make_resolver({"b": []})) is False

    def test_boolean_operators_use_ebv(self):
        expr = parse_with_owner("b and c")
        assert evaluate_predicate(expr, make_resolver({"b": ["1"], "c": ["2"]})) is True
        assert evaluate_predicate(expr, make_resolver({"b": ["1"], "c": []})) is False

    def test_or_and_not(self):
        expr = parse_with_owner("b or not(c)")
        assert evaluate_predicate(expr, make_resolver({"b": [], "c": []})) is True
        assert evaluate_predicate(expr, make_resolver({"b": [], "c": ["x"]})) is False

    def test_existential_comparison_rule(self):
        """Rule 4: a comparison is true iff SOME pair of argument values satisfies it."""
        expr = parse_with_owner("b > 5")
        assert evaluate_predicate(expr, make_resolver({"b": ["1", "9", "2"]})) is True
        assert evaluate_predicate(expr, make_resolver({"b": ["1", "2"]})) is False

    def test_existential_function_rule(self):
        expr = parse_with_owner('fn:contains(b, "x")')
        assert evaluate_predicate(expr, make_resolver({"b": ["aaa", "axa"]})) is True
        assert evaluate_predicate(expr, make_resolver({"b": ["aaa"]})) is False

    def test_cartesian_arithmetic_rule(self):
        """Rule 5: arithmetic over sequences maps over the cartesian product."""
        expr = parse_with_owner("b + 2 = 5")
        # b has values 1 and 3: 1+2=3 (no), 3+2=5 (yes) -> existentially true
        assert evaluate_predicate(expr, make_resolver({"b": ["1", "3"]})) is True
        assert evaluate_predicate(expr, make_resolver({"b": ["1", "2"]})) is False

    def test_atomic_arithmetic_stays_atomic(self):
        expr = parse_with_owner("2 + 3")
        assert evaluate_expression(expr, make_resolver({})) == 5.0

    def test_unary_minus(self):
        expr = parse_with_owner("-b = -3")
        assert evaluate_predicate(expr, make_resolver({"b": ["3"]})) is True

    def test_nan_results_are_falsy(self):
        expr = parse_with_owner("b + 1")
        value = evaluate_expression(expr, make_resolver({"b": ["hello"]}))
        values = value if isinstance(value, list) else [value]
        assert all(math.isnan(v) for v in values)

    def test_nested_function_composition(self):
        expr = parse_with_owner('fn:string-length(fn:concat(b, "xy")) > 3')
        assert evaluate_predicate(expr, make_resolver({"b": ["ab"]})) is True
        assert evaluate_predicate(expr, make_resolver({"b": ["a"]})) is False
