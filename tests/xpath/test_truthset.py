"""Tests for truth sets (Definition 5.6) and witness search."""

from repro.xpath import (
    UniversalTruthSet,
    find_prefix_witness,
    is_value_restricted,
    parse_query,
    truth_set,
)


def node_by_ntest(query, ntest, *, leaf_only=False):
    for node in query.non_root_nodes():
        if node.ntest == ntest and (not leaf_only or node.is_leaf()):
            return node
    raise AssertionError(f"no node with ntest {ntest}")


class TestTruthSetDefinition:
    def test_paper_example_truth_sets(self):
        """Section 5.3 example: in /a[b/c > 5 and d] the truth set of a, b, d is S and
        the truth set of c is (5, infinity)."""
        q = parse_query("/a[b/c > 5 and d]")
        assert truth_set(node_by_ntest(q, "a")).is_universal()
        assert truth_set(node_by_ntest(q, "b")).is_universal()
        assert truth_set(node_by_ntest(q, "d")).is_universal()
        c_set = truth_set(node_by_ntest(q, "c"))
        assert c_set.contains("6") and c_set.contains("100.5")
        assert not c_set.contains("5") and not c_set.contains("hello")

    def test_non_succession_leaf_has_universal_truth_set(self):
        q = parse_query("/a[b/c > 5]")
        assert isinstance(truth_set(node_by_ntest(q, "b")), UniversalTruthSet)

    def test_bare_existence_predicate_gives_universal_set(self):
        q = parse_query("/a[b]")
        assert truth_set(node_by_ntest(q, "b")).is_universal()

    def test_output_chain_has_universal_truth_set(self):
        q = parse_query("/a[b > 5]/c")
        assert truth_set(node_by_ntest(q, "c")).is_universal()

    def test_string_equality_truth_set(self):
        q = parse_query('/a[b = "north"]')
        b_set = truth_set(node_by_ntest(q, "b"))
        assert b_set.contains("north")
        assert not b_set.contains("south")

    def test_function_truth_set(self):
        q = parse_query('/a[fn:ends-with(b, "B")]')
        b_set = truth_set(node_by_ntest(q, "b"))
        assert b_set.contains("AB") and b_set.contains("B")
        assert not b_set.contains("BA")

    def test_arithmetic_truth_set(self):
        q = parse_query("/a[b + 2 = 5]")
        b_set = truth_set(node_by_ntest(q, "b"))
        assert b_set.contains("3")
        assert not b_set.contains("4")


class TestValueRestriction:
    def test_value_restricted_leaf(self):
        q = parse_query("/a[b > 5]")
        assert is_value_restricted(node_by_ntest(q, "b"))
        assert not is_value_restricted(node_by_ntest(q, "a"))

    def test_leaf_without_predicate_is_not_value_restricted(self):
        q = parse_query("/a[b]")
        assert not is_value_restricted(node_by_ntest(q, "b"))


class TestWitnessSearch:
    def test_member_excluding_disjoint_intervals(self):
        q = parse_query("/a[b > 12 and c < 30]")
        b_set = truth_set(node_by_ntest(q, "b"))
        c_set = truth_set(node_by_ntest(q, "c"))
        witness = b_set.find_member_excluding([c_set])
        assert witness is not None
        assert b_set.contains(witness) and not c_set.contains(witness)

    def test_member_excluding_impossible_when_contained(self):
        """b > 6 is a subset of b > 5, so no witness of (b > 6) outside (b > 5) exists."""
        q = parse_query("/a[b > 6 and c > 5]")
        tighter = truth_set(node_by_ntest(q, "b"))
        looser = truth_set(node_by_ntest(q, "c"))
        assert tighter.find_member_excluding([looser]) is None
        assert looser.find_member_excluding([tighter]) is not None

    def test_prefix_witness_against_numeric_sets(self):
        q = parse_query("/a[b > 5 and c < 9]")
        sets = [truth_set(node_by_ntest(q, "b")), truth_set(node_by_ntest(q, "c"))]
        witness = find_prefix_witness(sets)
        assert witness is not None
        # the witness must not be a numeric prefix: it contains a letter that cannot
        # appear in any number
        assert any(ch.isalpha() and ch not in "infaeINFAE" for ch in witness)

    def test_prefix_witness_fails_against_ends_with(self):
        """Every string is a prefix of some member of an ends-with truth set (the
        paper's strong-subsumption-freeness counterexample)."""
        q = parse_query('/a[fn:ends-with(b, "B")]')
        sets = [truth_set(node_by_ntest(q, "b"))]
        assert find_prefix_witness(sets) is None

    def test_prefix_witness_against_string_equality(self):
        q = parse_query('/a[b = "AB"]')
        sets = [truth_set(node_by_ntest(q, "b"))]
        witness = find_prefix_witness(sets)
        assert witness is not None
        assert not "AB".startswith(witness)

    def test_excludes_prefix_for_starts_with(self):
        q = parse_query('/a[fn:starts-with(b, "AB")]')
        b_set = truth_set(node_by_ntest(q, "b"))
        assert b_set.excludes_prefix("XY")
        assert not b_set.excludes_prefix("A")      # "A" is a prefix of "AB..."
        assert not b_set.excludes_prefix("ABC")    # "ABC" is itself a member

    def test_universal_set_is_never_proper(self):
        assert not UniversalTruthSet().is_proper()
        assert UniversalTruthSet().contains("anything")
