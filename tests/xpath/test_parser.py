"""Tests for the Forward XPath parser and the query tree it produces."""

import pytest

from repro.xpath import (
    And,
    Comparison,
    Constant,
    FunctionCall,
    NodeRef,
    Not,
    Or,
    XPathSyntaxError,
    parse_query,
)
from repro.xpath.query import CHILD, DESCENDANT


class TestMainPath:
    def test_single_step(self):
        q = parse_query("/a")
        assert q.size() == 1
        step = q.root.successor
        assert step.axis == CHILD and step.ntest == "a"

    def test_descendant_axis(self):
        q = parse_query("//a/b")
        first, second = q.root.successor, q.root.successor.successor
        assert first.axis == DESCENDANT
        assert second.axis == CHILD
        assert q.output_node() is second

    def test_wildcard_step(self):
        q = parse_query("/a/*/b")
        middle = q.root.successor.successor
        assert middle.is_wildcard()

    def test_attribute_axis_lowered_to_child_with_prefix(self):
        q = parse_query("/a/@id")
        attr = q.output_node()
        assert attr.axis == CHILD
        assert attr.ntest == "@id"

    def test_leading_dollar_is_accepted(self):
        assert parse_query("$/a/b").size() == 2

    def test_empty_query_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a]")

    def test_reserved_word_as_node_test_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/and")


class TestPredicates:
    def test_existence_predicate_creates_predicate_child(self):
        q = parse_query("/a[b]")
        a = q.root.successor
        assert len(a.predicate_children()) == 1
        assert isinstance(a.predicate, NodeRef)
        assert a.predicate.target is a.predicate_children()[0]

    def test_comparison_predicate(self):
        q = parse_query("/a[b > 5]")
        a = q.root.successor
        assert isinstance(a.predicate, Comparison)
        assert a.predicate.op == ">"
        assert isinstance(a.predicate.right, Constant)
        assert a.predicate.right.value == 5.0

    def test_conjunction(self):
        q = parse_query("/a[b and c and d]")
        a = q.root.successor
        assert isinstance(a.predicate, And)
        assert len(a.predicate_children()) == 3

    def test_disjunction_and_negation(self):
        q = parse_query("/a[b or not(c)]")
        a = q.root.successor
        assert isinstance(a.predicate, Or)
        assert isinstance(a.predicate.right, Not)

    def test_nested_predicates(self):
        q = parse_query("/a[c[.//e and f] and b > 5]")
        a = q.root.successor
        c = a.predicate_children()[0]
        assert c.ntest == "c"
        e, f = c.predicate_children()
        assert e.axis == DESCENDANT and e.ntest == "e"
        assert f.axis == CHILD and f.ntest == "f"

    def test_relative_path_chain_uses_successors(self):
        q = parse_query("/a[b/c//d > 5]")
        a = q.root.successor
        b = a.predicate_children()[0]
        assert b.successor.ntest == "c"
        assert b.successor.successor.ntest == "d"
        assert b.successor.successor.axis == DESCENDANT
        assert b.succession_leaf().ntest == "d"

    def test_wildcard_relative_path(self):
        q = parse_query("/a[*/b > 5]")
        star = q.root.successor.predicate_children()[0]
        assert star.is_wildcard()
        assert star.successor.ntest == "b"

    def test_function_call_predicate(self):
        q = parse_query('/a[fn:starts-with(b, "A")]')
        a = q.root.successor
        assert isinstance(a.predicate, FunctionCall)
        assert a.predicate.name == "fn:starts-with"
        assert len(a.predicate_children()) == 1

    def test_unknown_function_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a[position() = 1]")

    def test_arithmetic_in_predicate(self):
        q = parse_query("/a[b + 2 = 5]")
        a = q.root.successor
        assert isinstance(a.predicate, Comparison)

    def test_parentheses_for_grouping(self):
        q = parse_query("/a[(b and c) or d]")
        assert isinstance(q.root.successor.predicate, Or)

    def test_string_literals(self):
        q = parse_query('/a[b = "hello"]')
        assert q.root.successor.predicate.right.value == "hello"

    def test_attribute_in_predicate(self):
        q = parse_query("/a[@id = 7]")
        attr = q.root.successor.predicate_children()[0]
        assert attr.ntest == "@id"


class TestQueryStructure:
    def test_fig2_structure(self):
        """The Fig. 2 example: successors, predicate children, output node."""
        q = parse_query("/a[c[.//e and f] and b > 5]/b")
        a = q.root.successor
        assert a.ntest == "a"
        output = q.output_node()
        assert output.ntest == "b" and output is a.successor
        predicate_names = sorted(child.ntest for child in a.predicate_children())
        assert predicate_names == ["b", "c"]

    def test_validate_accepts_parsed_queries(self):
        parse_query("/a[c[.//e and f] and b > 5]/b").validate()

    def test_size_counts_non_root_nodes(self):
        assert parse_query("/a[b and c]/d").size() == 4

    def test_max_wildcard_chain(self):
        assert parse_query("/a/*/*/b").max_wildcard_chain() == 2
        assert parse_query("/a/b").max_wildcard_chain() == 0

    def test_succession_roots_and_leaves(self):
        q = parse_query("/a[b/c]/d")
        a = q.root.successor
        b = a.predicate_children()[0]
        assert b.is_succession_root()
        assert not b.successor.is_succession_root()
        assert b.succession_leaf().ntest == "c"
        assert q.root.succession_leaf().ntest == "d"

    def test_element_names_and_node_tests(self):
        q = parse_query("/a[*/b]")
        assert sorted(q.element_names()) == ["a", "b"]
        assert "*" in q.node_tests()


class TestSerialization:
    @pytest.mark.parametrize("text", [
        "/a",
        "//a/b",
        "/a[b and c]",
        "/a[b > 5]/c",
        "/a[c[.//e and f] and b > 5]/b",
        "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
        "//d[f and a[b and c]]",
    ])
    def test_roundtrip_through_serializer(self, text):
        query = parse_query(text)
        reparsed = parse_query(query.to_xpath())
        assert reparsed.to_xpath() == query.to_xpath()
        assert reparsed.size() == query.size()
