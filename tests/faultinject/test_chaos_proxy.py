"""Transport chaos: frames split into slivers, delayed, and severed cold.

The :class:`ChaosProxy` sits between a real client and a real server and
misbehaves at the TCP layer only — the wire protocol's length-prefix framing
and the client's reconnect loop are what is under test.  The kill -9 +
recovery composition lives in ``test_kill9_recovery.py``; here the server
stays alive the whole time, so these runs double as the lossless baseline the
crash harness's superset invariant refers to.
"""

import asyncio

import pytest

from repro.net import ConnectionClosedError, WireClient, WireError, WireServer
from repro.net.protocol import ProtocolError
from repro.workloads import publish_burst

from .chaosproxy import ChaosProxy

QUERY = "/feed/topic0[score0 > 0]"  # matches every burst document
PHASE_TIMEOUT = 60.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, PHASE_TIMEOUT))


class TestSplitAndDelay:
    def test_sliced_frames_reassemble_losslessly(self):
        """Three-byte TCP segments: every frame boundary lands mid-slice,
        yet the burst round-trips exactly as over a clean socket."""
        docs = publish_burst(80, seed=1)

        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                async with ChaosProxy(host, port, chunk=3) as proxy:
                    client = await WireClient.connect(*proxy.address,
                                                      client_id="c")
                    await client.subscribe("all", QUERY)
                    results = await client.publish_many(docs)
                    assert [r.document_id for r in results] == \
                        list(range(1, len(docs) + 1))
                    assert all(r.matched == ("c:all",) for r in results)
                    delivered = []
                    for _ in docs:
                        delivered.append(await client.next_match(timeout=5))
                    assert [n.document_id for n in delivered] == \
                        list(range(1, len(docs) + 1))
                    assert not any(n.duplicate for n in delivered)
                    await client.close()
        run(scenario())

    def test_delayed_slices_stretch_frames_across_time(self):
        """Each frame arrives as a drip-feed over many event-loop beats; the
        server must never act on a half-received frame."""
        docs = publish_burst(5, seed=2)

        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                async with ChaosProxy(host, port, chunk=16,
                                      delay=0.002) as proxy:
                    client = await WireClient.connect(*proxy.address,
                                                      client_id="c")
                    await client.subscribe("all", QUERY)
                    results = await client.publish_many(docs)
                    assert all(r.matched == ("c:all",) for r in results)
                    await client.close()
        run(scenario())


class TestSever:
    def test_sever_mid_burst_then_reconnect_resumes_the_session(self):
        """A yanked cable mid-pipeline: in-flight publishes fail loudly, the
        retained session survives server-side, and one reconnect through the
        same proxy address resumes it — subscriptions, cursor, and all."""
        docs = publish_burst(200, seed=3)

        async def scenario():
            async with WireServer(retain_sessions=True) as server:
                host, port = server.address
                async with ChaosProxy(host, port, chunk=64) as proxy:
                    client = await WireClient.connect(*proxy.address,
                                                      client_id="c")
                    await client.subscribe("all", QUERY)
                    futures, consumed = [], []
                    try:
                        for index, text in enumerate(docs):
                            futures.append(client.submit(text))
                            if index == 49:
                                while sum(f.done() for f in futures) < 25:
                                    await asyncio.sleep(0.005)
                                proxy.sever_all()
                        await client.drain()
                    except (ConnectionError, OSError, WireError):
                        pass
                    # drain the match backlog received before the cut
                    while True:
                        try:
                            consumed.append(
                                await client.next_match(timeout=0.5))
                        except (asyncio.TimeoutError, ConnectionClosedError):
                            break
                    await asyncio.gather(*futures, return_exceptions=True)
                    acked = [f for f in futures if not f.cancelled()
                             and f.exception() is None]
                    failed = len(futures) - len(acked)
                    assert failed > 0, "the sever landed after the burst"
                    assert len(acked) >= 25

                    await client.reconnect(retries=10, backoff_base=0.05)
                    assert client.resumed
                    assert client.server_subscriptions == ["all"]
                    # at least one fresh dial (more if the first reconnect
                    # attempt raced the server's reaping of the dead binding)
                    assert proxy.accepted >= 2
                    # the cursor survived with the session: already-consumed
                    # matches stay consumed, and fresh traffic flows
                    assert server.service.session("c").cursor >= 0
                    result = await client.publish(docs[0])
                    assert result.matched == ("c:all",)
                    note = await client.next_match(timeout=5)
                    assert note.document_id == result.document_id
                    assert not note.duplicate
                    await client.close()
                # every ack the client ever saw names a publish the service
                # really performed — severing cannot fabricate or lose acks
                assert server.service.metrics()["published"] >= len(acked)
        run(scenario())

    def test_sever_during_handshake_is_a_clean_connection_error(self):
        async def scenario():
            async with WireServer() as server:
                host, port = server.address
                proxy = ChaosProxy(host, port, chunk=1, delay=0.05)
                await proxy.start()
                try:
                    async def cut():
                        await asyncio.sleep(0.02)  # mid-hello, mid-slice
                        proxy.sever_all()
                    task = asyncio.get_running_loop().create_task(cut())
                    with pytest.raises((ConnectionError, OSError,
                                        ConnectionClosedError,
                                        ProtocolError)):
                        await WireClient.connect(*proxy.address,
                                                 client_id="c")
                    await task
                finally:
                    await proxy.stop()
        run(scenario())
