"""Subprocess entrypoint: a durable WireServer the harness can kill -9.

Usage (spawned by the fault-injection tests, never run by pytest itself)::

    python server_proc.py DURABLE_DIR [--recover] [--port N] [--governed]

Starts a :class:`~repro.net.WireServer` over a durable
:class:`~repro.service.PubSubService` (fsync policy ``interval`` — the mode
whose crash window the harness is probing), prints ``PORT <port>`` on stdout
once the listener is accepting, then serves until the process is killed.  A
background task snapshots the service every 50 ms so sessions and
subscriptions survive a SIGKILL the same way the WAL-logged publishes do.

With ``--recover`` the service is rebuilt via
:meth:`~repro.service.PubSubService.recover`, replaying the WAL tail above
the durable cursor floor before the port line is printed — by the time the
harness reconnects, re-deliveries are already queued.

With ``--governed`` the service runs under a backlog-driven
:class:`~repro.service.ResourceGovernor` budget: each undelivered
notification is charged one unit and the hard watermark sits at 80 of them,
so a subscriber that never consumes drags the service to HARD after a
deterministic prefix of admitted documents.  A small ingest queue keeps the
publisher from outrunning the sampler.  The overload chaos round kills the
process while it is actively shedding load, then audits the WAL for the
admitted/rejected split.
"""

import asyncio
import sys


async def _snapshot_loop(service) -> None:
    while True:
        await asyncio.sleep(0.05)
        try:
            service.save_snapshot()
        except Exception:
            return  # service stopped (or stopping): the loop's job is done


async def _main(durable_dir: str, port: int, recover: bool,
                governed: bool) -> None:
    from repro.net import WireServer
    from repro.service import MemoryBudget, PubSubService, ResourceGovernor

    kwargs = {"fsync": "interval"}
    if governed:
        unit = 1 << 20
        kwargs["governor"] = ResourceGovernor(
            MemoryBudget(soft_bits=40 * unit, hard_bits=80 * unit),
            sample_interval=0.01, retry_after=0.05, stall_grace=30.0,
            notification_bits=unit)
        kwargs["session_queue_size"] = 128
        kwargs["queue_limit"] = 16
    if recover:
        service = PubSubService.recover(durable_dir, **kwargs)
    else:
        service = PubSubService(durable_dir=durable_dir, **kwargs)
    server = WireServer(service, port=port, retain_sessions=True)
    await server.start()
    if governed:
        # an in-process subscriber that never consumes: its delivery queue is
        # the backlog that drags the governor to HARD (a wire client cannot
        # play this role — the notify pump drains server-side queues into the
        # socket as fast as documents match)
        stall = await service.connect("stall")
        await stall.subscribe("pin", "/feed/topic0[score0 > 0]")
    snapshotter = asyncio.get_running_loop().create_task(
        _snapshot_loop(service))
    print(f"PORT {server.address[1]}", flush=True)
    try:
        await asyncio.Event().wait()  # serve until killed
    finally:  # pragma: no cover - only on polite interruption
        snapshotter.cancel()
        await server.stop()


if __name__ == "__main__":
    args = sys.argv[1:]
    listen_port = 0
    if "--port" in args:
        at = args.index("--port")
        listen_port = int(args[at + 1])
        del args[at:at + 2]
    asyncio.run(_main(args[0], listen_port, "--recover" in args,
                      "--governed" in args))
