"""Subprocess entrypoint: a durable WireServer the harness can kill -9.

Usage (spawned by the fault-injection tests, never run by pytest itself)::

    python server_proc.py DURABLE_DIR [--recover] [--port N]

Starts a :class:`~repro.net.WireServer` over a durable
:class:`~repro.service.PubSubService` (fsync policy ``interval`` — the mode
whose crash window the harness is probing), prints ``PORT <port>`` on stdout
once the listener is accepting, then serves until the process is killed.  A
background task snapshots the service every 50 ms so sessions and
subscriptions survive a SIGKILL the same way the WAL-logged publishes do.

With ``--recover`` the service is rebuilt via
:meth:`~repro.service.PubSubService.recover`, replaying the WAL tail above
the durable cursor floor before the port line is printed — by the time the
harness reconnects, re-deliveries are already queued.
"""

import asyncio
import sys


async def _snapshot_loop(service) -> None:
    while True:
        await asyncio.sleep(0.05)
        try:
            service.save_snapshot()
        except Exception:
            return  # service stopped (or stopping): the loop's job is done


async def _main(durable_dir: str, port: int, recover: bool) -> None:
    from repro.net import WireServer
    from repro.service import PubSubService

    if recover:
        service = PubSubService.recover(durable_dir, fsync="interval")
    else:
        service = PubSubService(durable_dir=durable_dir, fsync="interval")
    server = WireServer(service, port=port, retain_sessions=True)
    await server.start()
    snapshotter = asyncio.get_running_loop().create_task(
        _snapshot_loop(service))
    print(f"PORT {server.address[1]}", flush=True)
    try:
        await asyncio.Event().wait()  # serve until killed
    finally:  # pragma: no cover - only on polite interruption
        snapshotter.cancel()
        await server.stop()


if __name__ == "__main__":
    args = sys.argv[1:]
    listen_port = 0
    if "--port" in args:
        at = args.index("--port")
        listen_port = int(args[at + 1])
        del args[at:at + 2]
    asyncio.run(_main(args[0], listen_port, "--recover" in args))
