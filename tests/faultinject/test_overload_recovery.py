"""The overload chaos round: kill -9 a server while it is shedding load.

A ``--governed`` server process (see ``server_proc.py``) runs a
backlog-driven governor: the harness's client subscribes to the pinned-topic
query but never consumes, so admitted documents pile up as undelivered
notifications until the hard watermark trips and the tail of the burst is
rejected with ``overloaded`` frames.  The server is then killed with
``kill -9`` mid-shed, and the WAL is audited offline:

- every **admitted** publish (its future resolved with a result) is in the
  WAL — the append strictly precedes the ack;
- every **rejected** publish (its future raised
  :class:`~repro.net.OverloadedError`) is absent — the rejection happens
  before the document draws an id or touches the log, so the WAL's id
  sequence stays dense;
- after an (ungoverned) recovery of the same directory, every WAL document
  is re-delivered above the never-advanced cursor, flagged ``duplicate`` —
  load shedding costs availability, never acked data.
"""

import asyncio
import os
import signal

from repro.durable import PublishLog
from repro.net import OverloadedError, WireClient, WireError
from repro.service.server import WAL_FILENAME
from repro.workloads import publish_burst

from .test_kill9_recovery import _reap, _spawn_server

BURST = 400
DOCS = publish_burst(BURST, seed=77)
QUERY = "/feed/topic0[score0 > 0]"  # matches every burst document
PHASE_TIMEOUT = 60.0


async def _shed_until_killed(port, pid):
    """Pipeline the burst into a shedding server, then SIGKILL it."""
    client = await WireClient.connect("127.0.0.1", port, client_id="c",
                                      max_pending_matches=2048)
    await client.subscribe("all", QUERY)
    await asyncio.sleep(0.15)  # let a snapshot capture the subscription
    # no consumer: the backlog is what drags the governor to HARD
    futures = []
    try:
        for index, text in enumerate(DOCS):
            futures.append(client.submit(text))
            if index % 25 == 24:
                await client.drain()
        settled = await asyncio.gather(*futures, return_exceptions=True)
    except (ConnectionError, OSError, WireError) as exc:
        raise AssertionError(f"the burst died before the kill: {exc!r}")
    # the kill lands while the governor is still latched at HARD: the
    # stalled subscriber pins its queue, so nothing can have recovered
    os.kill(pid, signal.SIGKILL)
    admitted, rejected = [], []
    for outcome in settled:
        if isinstance(outcome, OverloadedError):
            rejected.append(outcome)
        elif isinstance(outcome, Exception):
            raise AssertionError(f"unexpected failure: {outcome!r}")
        else:
            admitted.append(outcome.document_id)
    try:
        await client.close()
    except (ConnectionError, OSError, WireError):
        pass
    return sorted(admitted), rejected


async def _drain_recovery(port, expected):
    """Reconnect to the recovered server and drain the full replay."""
    client = await WireClient.connect("127.0.0.1", port, client_id="c",
                                      retries=10, backoff_base=0.05,
                                      max_pending_matches=2048)
    assert client.resumed
    assert client.server_subscriptions == ["all"]
    # the shedding phase never consumed, so the durable cursor never moved
    assert client.cursor == 0
    redelivered = []
    while len(redelivered) < expected:
        redelivered.append(await client.next_match(timeout=5.0))
    # a recovered server is live, not a read-only replayer
    fresh = await client.publish(DOCS[0])
    await client.close()
    return redelivered, fresh


def test_kill9_while_shedding_is_exact_about_the_split(tmp_path):
    durable_dir = tmp_path / "durable"
    proc, port = _spawn_server(durable_dir, "--governed")
    try:
        admitted, rejected = asyncio.run(asyncio.wait_for(
            _shed_until_killed(port, proc.pid), PHASE_TIMEOUT))
        assert proc.wait(timeout=10) != 0  # SIGKILL, not a clean exit
    finally:
        _reap(proc)

    # the burst split both ways: a real prefix was admitted before the hard
    # watermark, a real tail was shed after it
    assert admitted and rejected
    assert len(admitted) + len(rejected) == BURST
    assert all(exc.retry_after > 0 for exc in rejected)

    # ground truth: scan the WAL offline, with the process dead
    scan = PublishLog(str(durable_dir / WAL_FILENAME)).scan()
    wal_ids = sorted(doc.document_id for doc in scan.documents)
    # every admitted document is durable, every rejected one absent, and
    # rejected documents never drew an id — the WAL sequence has no gaps
    assert wal_ids == admitted
    assert wal_ids == list(range(1, len(admitted) + 1))

    recovered, rport = _spawn_server(durable_dir, "--recover")
    try:
        redelivered, fresh = asyncio.run(asyncio.wait_for(
            _drain_recovery(rport, len(wal_ids)), PHASE_TIMEOUT))
    finally:
        _reap(recovered)

    # at-least-once: with the cursor still at zero, recovery replays the
    # entire WAL — shedding rejected *new* work but lost nothing accepted
    redelivered_ids = [note.document_id for note in redelivered]
    assert redelivered_ids == wal_ids
    assert all(note.duplicate for note in redelivered)
    # and new publishes resume the id sequence above everything replayed
    assert fresh.document_id == wal_ids[-1] + 1
