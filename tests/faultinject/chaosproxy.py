"""A TCP chaos proxy for the fault-injection harness.

The proxy sits between a :class:`~repro.net.WireClient` and a
:class:`~repro.net.WireServer` and forwards bytes in both directions while
misbehaving on purpose:

- **split**: forwarded data is re-chunked into tiny slices (``chunk`` bytes),
  so every frame crosses the wire fragmented across many TCP segments —
  length-prefix framing must reassemble it regardless.
- **delay**: an ``asyncio.sleep(delay)`` between slices stretches each frame
  over time, interleaving the two directions.
- **sever**: :meth:`sever_all` aborts every live link mid-flight (no FIN
  handshake, like a yanked cable), while the listener keeps accepting new
  connections — exactly the shape a client reconnect must survive.

The proxy never inspects frames; it is chaos at the transport layer only.
"""

import asyncio
from typing import List, Tuple


class ChaosProxy:
    """Forward TCP to ``(target_host, target_port)`` with injected chaos."""

    def __init__(self, target_host: str, target_port: int, *,
                 chunk: int = 7, delay: float = 0.0) -> None:
        if chunk < 1:
            raise ValueError("chunk must be at least 1 byte")
        self._target = (target_host, target_port)
        self._chunk = chunk
        self._delay = delay
        self._server = None
        self._links: List[Tuple[asyncio.StreamWriter,
                                asyncio.StreamWriter]] = []
        self._tasks: List[asyncio.Task] = []
        #: how many client connections the proxy has accepted over its life
        self.accepted = 0

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        self.accepted += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self._target)
        except OSError:
            client_writer.close()
            return
        self._links.append((client_writer, upstream_writer))
        loop = asyncio.get_running_loop()
        self._tasks.append(loop.create_task(
            self._pump(client_reader, upstream_writer)))
        self._tasks.append(loop.create_task(
            self._pump(upstream_reader, client_writer)))

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                # the chaos: re-chunk into tiny slices, pause between them
                for start in range(0, len(data), self._chunk):
                    writer.write(data[start:start + self._chunk])
                    await writer.drain()
                    if self._delay:
                        await asyncio.sleep(self._delay)
        except (ConnectionError, OSError):
            pass  # a severed or vanished peer ends the pump, not the proxy
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def sever_all(self) -> int:
        """Abort every live link (both sockets, no FIN); returns the count.

        The listener stays up: a reconnecting client dials the same proxy
        address and gets a fresh link to the target.
        """
        severed = 0
        for client_writer, upstream_writer in self._links:
            for writer in (client_writer, upstream_writer):
                transport = writer.transport
                if transport is not None and not transport.is_closing():
                    transport.abort()
                    severed += 1
        self._links.clear()
        return severed

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.sever_all()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()
