"""The tentpole acceptance harness: SIGKILL a durable server mid-burst.

A real ``WireServer`` process (``server_proc.py``) is killed with ``kill -9``
while a client is pipelining a 1000-document burst into it, then a second
process recovers the same durable directory and the client reconnects —
through a splitting/delaying :class:`ChaosProxy`, so the recovery stream also
crosses a hostile transport.  The at-least-once contract is then checked
against the WAL itself (scanned offline, after both processes are dead):

- phase-1 deliveries are a dense, ordered, duplicate-free prefix;
- nothing at or below the recovered cursor is re-delivered (exactly-once);
- everything the WAL holds **above** the cursor is re-delivered, flagged
  ``duplicate`` (at-least-once);
- every acked publish made it into the WAL, and the union of both phases'
  deliveries covers the whole log — the delivered-match multiset is a
  superset of what a lossless run over the same accepted publishes yields.

No pytest-timeout dependency: every async phase is wrapped in its own
``asyncio.wait_for`` so a hang fails the test instead of wedging the run.
"""

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.durable import PublishLog
from repro.net import ConnectionClosedError, WireClient, WireError
from repro.service.server import WAL_FILENAME
from repro.workloads import publish_burst

from .chaosproxy import ChaosProxy

SRC = Path(__file__).resolve().parents[2] / "src"
SERVER_PROC = Path(__file__).resolve().parent / "server_proc.py"

BURST = 1000
DOCS = publish_burst(BURST, seed=42)
QUERY = "/feed/topic0[score0 > 0]"  # matches every burst document
PHASE_TIMEOUT = 60.0


def _spawn_server(durable_dir, *extra):
    """Start a server process; block until it announces its port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(SERVER_PROC), str(durable_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
        text=True)
    line = proc.stdout.readline()
    if not line.startswith("PORT "):
        proc.kill()
        raise AssertionError(f"server process failed to start: {line!r}")
    return proc, int(line.split()[1])


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    proc.stdout.close()


async def _burst_until_killed(port, pid):
    """Pipeline the burst, SIGKILL the server mid-flight, report the wreck."""
    client = await WireClient.connect("127.0.0.1", port, client_id="c",
                                      max_pending_matches=2048)
    await client.subscribe("all", QUERY)
    await asyncio.sleep(0.15)  # let a snapshot capture the subscription
    delivered = []

    async def consume():
        while True:
            try:
                delivered.append(await client.next_match(timeout=5))
            except (asyncio.TimeoutError, ConnectionClosedError):
                return

    consumer = asyncio.get_running_loop().create_task(consume())
    futures = []
    killed = False
    try:
        for index, text in enumerate(DOCS):
            futures.append(client.submit(text))
            if index % 25 == 24:
                await client.drain()
            if not killed and index == BURST // 2:
                # half the burst is in flight; wait until a decent prefix is
                # durably acked, then pull the plug with no warning at all
                while sum(f.done() for f in futures) < BURST // 4:
                    await asyncio.sleep(0.005)
                os.kill(pid, signal.SIGKILL)
                killed = True
    except (ConnectionError, OSError, WireError):
        pass  # the dead transport surfaces wherever the next write lands
    assert killed, "the whole burst was acked before the kill could land"
    await consumer
    acked = []
    for future in futures:
        if future.done() and not future.cancelled() \
                and future.exception() is None:
            acked.append(future.result().document_id)
    try:
        await client.close()
    except (ConnectionError, OSError, WireError):
        pass
    return delivered, sorted(acked)


async def _drain_recovery(port):
    """Reconnect through chaos and drain every re-delivered match."""
    async with ChaosProxy("127.0.0.1", port, chunk=5) as proxy:
        proxy_host, proxy_port = proxy.address
        client = await WireClient.connect(proxy_host, proxy_port,
                                          client_id="c", retries=10,
                                          backoff_base=0.05,
                                          max_pending_matches=2048)
        assert client.resumed
        assert client.server_subscriptions == ["all"]
        cursor = client.cursor  # the hello ack announces the durable cursor
        redelivered = []
        while True:
            try:
                redelivered.append(await client.next_match(timeout=1.0))
            except asyncio.TimeoutError:
                break
        await client.close()
    return cursor, redelivered


def test_kill9_mid_burst_is_at_least_once(tmp_path):
    durable_dir = tmp_path / "durable"
    proc, port = _spawn_server(durable_dir)
    try:
        delivered, acked = asyncio.run(asyncio.wait_for(
            _burst_until_killed(port, proc.pid), PHASE_TIMEOUT))
        assert proc.wait(timeout=10) != 0  # SIGKILL, not a clean exit
    finally:
        _reap(proc)

    recovered, rport = _spawn_server(durable_dir, "--recover")
    try:
        cursor, redelivered = asyncio.run(asyncio.wait_for(
            _drain_recovery(rport), PHASE_TIMEOUT))
    finally:
        _reap(recovered)

    # ground truth: scan the WAL offline, with both processes dead
    scan = PublishLog(str(durable_dir / WAL_FILENAME)).scan()
    wal_ids = sorted(doc.document_id for doc in scan.documents)
    assert wal_ids, "the burst never reached the WAL"
    assert len(wal_ids) < BURST, "the kill landed after the whole burst"

    # phase 1: a dense, ordered, duplicate-free prefix of the burst
    first_ids = [note.document_id for note in delivered]
    assert first_ids == list(range(1, len(first_ids) + 1))
    assert not any(note.duplicate for note in delivered)

    # every acked publish is durable: the ack only ever follows the append
    assert set(acked) <= set(wal_ids)

    # exactly-once at or below the durable cursor ...
    assert 0 <= cursor <= len(first_ids)
    redelivered_ids = [note.document_id for note in redelivered]
    assert all(document_id > cursor for document_id in redelivered_ids)
    # ... and at-least-once above it: the replay covers the WAL tail past the
    # cursor, in order, every re-delivery flagged as a possible duplicate
    expected_tail = [i for i in wal_ids if i > cursor]
    assert redelivered_ids == expected_tail
    assert all(note.duplicate for note in redelivered)
    assert redelivered, "the kill left nothing above the cursor to replay"

    # the two phases together cover everything a lossless run would have
    # delivered for the same accepted publishes: a multiset superset with no
    # gaps below the acked cursor
    assert set(wal_ids) <= set(first_ids) | set(redelivered_ids)


def test_recovered_server_accepts_new_publishes(tmp_path):
    """After recovery the service is live, not a read-only replayer: new
    publishes get fresh document ids above everything the WAL has seen."""
    durable_dir = tmp_path / "durable"
    proc, port = _spawn_server(durable_dir)

    async def seed_phase():
        client = await WireClient.connect("127.0.0.1", port, client_id="c")
        await client.subscribe("all", QUERY)
        await asyncio.sleep(0.15)
        results = await client.publish_many(DOCS[:5])
        for _ in range(5):
            await client.next_match(timeout=5)
        return [r.document_id for r in results]

    try:
        seeded = asyncio.run(asyncio.wait_for(seed_phase(), PHASE_TIMEOUT))
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        _reap(proc)
    assert seeded == [1, 2, 3, 4, 5]

    recovered, rport = _spawn_server(durable_dir, "--recover")

    async def resume_phase():
        client = await WireClient.connect("127.0.0.1", rport, client_id="c",
                                          retries=10, backoff_base=0.05)
        assert client.resumed
        result = await client.publish(DOCS[5])
        assert result.document_id > max(seeded)
        note = await client.next_match(timeout=5)
        while note.duplicate:  # skip any replayed tail first
            note = await client.next_match(timeout=5)
        assert note.document_id == result.document_id
        await client.close()

    try:
        asyncio.run(asyncio.wait_for(resume_phase(), PHASE_TIMEOUT))
    finally:
        _reap(recovered)
