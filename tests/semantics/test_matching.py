"""Tests for matchings, structural matchings and path matchings."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import (
    bool_eval,
    count_matchings,
    find_matching,
    has_matching,
    iter_matchings,
    node_matches,
    path_matches,
)
from repro.xmlstream import parse_document
from repro.xpath import parse_query

from ..strategies import documents, supported_queries


def node_by_ntest(query, ntest):
    for node in query.non_root_nodes():
        if node.ntest == ntest:
            return node
    raise AssertionError(f"no node {ntest}")


def doc_nodes_named(document, name):
    return [n for n in document.iter_elements() if n.name == name]


class TestMatchingBasics:
    def test_fig7_two_matchings(self):
        """Fig. 7: the document with two b children above 5 has exactly two matchings."""
        q = parse_query("/a[b > 5]")
        doc = parse_document("<a><b>7</b><b>3</b><b>9</b></a>")
        assert count_matchings(q, doc) == 2

    def test_matching_respects_values(self):
        q = parse_query("/a[b > 5]")
        assert not has_matching(q, parse_document("<a><b>3</b></a>"))
        assert has_matching(q, parse_document("<a><b>9</b></a>"))

    def test_structural_matching_ignores_values(self):
        q = parse_query("/a[b > 5]")
        doc = parse_document("<a><b>3</b></a>")
        assert not has_matching(q, doc)
        assert has_matching(q, doc, structural=True)

    def test_matching_view_lookup(self):
        q = parse_query("/a[b and c]")
        doc = parse_document("<a><b/><c/></a>")
        matching = find_matching(q, doc)
        assert matching is not None
        assert matching(node_by_ntest(q, "b")).name == "b"
        assert matching(q.root).kind == "root"

    def test_leaf_preserving_detection(self):
        q = parse_query("/a[b]")
        leafy = find_matching(q, parse_document("<a><b/></a>"))
        assert leafy.is_leaf_preserving()
        non_leafy = find_matching(q, parse_document("<a><b><c/></b></a>"))
        assert not non_leafy.is_leaf_preserving()

    def test_descendant_axis_matching(self):
        q = parse_query("/a[.//e]")
        doc = parse_document("<a><x><e/></x><e/></a>")
        images = {m(node_by_ntest(q, "e")).parent.name for m in iter_matchings(q, doc)}
        assert images == {"x", "a"}

    def test_node_matches_specific_target(self):
        q = parse_query("//a[b and c]")
        doc = parse_document("<a><a><b/><c/></a></a>")
        a_query = node_by_ntest(q, "a")
        outer, inner = doc_nodes_named(doc, "a")
        assert node_matches(q, a_query, doc, inner)
        assert not node_matches(q, a_query, doc, outer)


class TestLemma510Equivalence:
    """Lemma 5.10: a document matches a query iff a matching exists."""

    CASES = [
        ("/a[c[.//e and f] and b > 5]", "<a><c><e/><f/></c><b>6</b></a>", True),
        ("/a[c[.//e and f] and b > 5]", "<a><c><e/><f/></c><b>4</b></a>", False),
        ("//a[b and c]", "<a><a><b/><c/></a></a>", True),
        ("//a[b and c]", "<a><b/><a><c/></a></a>", False),
        ("/a[b/c > 5 and d]", "<a><b><c>9</c></b><d/></a>", True),
        ("/a[b/c > 5 and d]", "<a><b><c>2</c></b><d/></a>", False),
        ("/a[*/b > 5]", "<a><x><b>8</b></x></a>", True),
    ]

    def test_fixed_cases(self):
        for query_text, document_text, expected in self.CASES:
            query = parse_query(query_text)
            document = parse_document(document_text)
            assert bool_eval(query, document) is expected
            assert has_matching(query, document) is expected

    @given(supported_queries(), documents())
    @settings(max_examples=80, deadline=None)
    def test_select_semantics_equals_matching_existence(self, query, document):
        assert bool_eval(query, document) == has_matching(query, document)


class TestPathMatching:
    def test_path_matching_ignores_subtree_requirements(self):
        q = parse_query("//a[b]")
        doc = parse_document("<a><a/></a>")
        a_query = node_by_ntest(q, "a")
        outer, inner = doc_nodes_named(doc, "a")
        # neither node matches (no b child anywhere) but both path match
        assert path_matches(a_query, outer)
        assert path_matches(a_query, inner)
        assert not has_matching(q, doc)

    def test_path_matching_respects_child_axis(self):
        q = parse_query("/a/b")
        doc = parse_document("<a><x><b/></x></a>")
        b_query = node_by_ntest(q, "b")
        b_doc = doc_nodes_named(doc, "b")[0]
        assert not path_matches(b_query, b_doc)

    def test_path_matching_respects_names(self):
        q = parse_query("/a/b")
        doc = parse_document("<a><c/></a>")
        assert not path_matches(node_by_ntest(q, "b"), doc_nodes_named(doc, "c")[0])

    def test_path_matching_with_descendant_gap(self):
        q = parse_query("/a//b")
        doc = parse_document("<a><x><y><b/></y></x></a>")
        assert path_matches(node_by_ntest(q, "b"), doc_nodes_named(doc, "b")[0])

    def test_paper_path_consistency_example(self):
        """Definition 8.5's example: in /a[.//b/c and b//c] a single document node can
        path match both c nodes."""
        q = parse_query("/a[.//b/c and b//c]")
        doc = parse_document("<a><b><c/></b></a>")
        c_doc = doc_nodes_named(doc, "c")[0]
        c_nodes = [n for n in q.non_root_nodes() if n.ntest == "c"]
        assert len(c_nodes) == 2
        assert all(path_matches(c, c_doc) for c in c_nodes)
