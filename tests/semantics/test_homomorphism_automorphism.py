"""Tests for document homomorphisms and structural query automorphisms."""

from repro.semantics import (
    documents_isomorphic,
    find_homomorphism,
    find_matching,
    has_nontrivial_automorphism,
    is_internal_node_preserving,
    iter_structural_automorphisms,
    natural_homomorphism,
    nontrivial_domination_pairs,
    structural_domination_leaves,
    structural_domination_set,
    structurally_subsumes,
    FULL,
    STRUCTURAL,
    WEAK,
)
from repro.xmlstream import parse_document
from repro.xpath import parse_query


def node_by_ntest(query, ntest, index=0):
    found = [n for n in query.non_root_nodes() if n.ntest == ntest]
    return found[index]


class TestHomomorphisms:
    def test_paper_weak_homomorphism_example(self):
        """The Definition 6.1 example: D maps weakly (but not fully) onto D'."""
        target = parse_document("<a><b>hello</b><c>world</c></a>")
        source = parse_document("<a><c>world</c><c>world</c><b>hello</b></a>")
        weak = find_homomorphism(source.root, target.root, flavor=WEAK)
        assert weak is not None and weak.is_valid()
        full = find_homomorphism(source.root, target.root, flavor=FULL)
        assert full is None  # the "a" string values differ in order, so no full hom.

    def test_structural_homomorphism_ignores_values(self):
        source = parse_document("<a><b>1</b></a>")
        target = parse_document("<a><b>2</b></a>")
        assert find_homomorphism(source.root, target.root, flavor=STRUCTURAL) is not None
        assert find_homomorphism(source.root, target.root, flavor=FULL) is None

    def test_no_homomorphism_when_structure_missing(self):
        source = parse_document("<a><b/><c/></a>")
        target = parse_document("<a><b/></a>")
        assert find_homomorphism(source.root, target.root, flavor=STRUCTURAL) is None

    def test_isomorphism_detection(self):
        one = parse_document("<a><b>1</b><c/></a>")
        two = parse_document("<a><c/><b>1</b></a>")
        three = parse_document("<a><b>1</b></a>")
        assert documents_isomorphic(one, two)
        assert not documents_isomorphic(one, three)

    def test_matching_transport_along_homomorphism(self):
        """Lemma 6.2/6.4 executable check: composing a matching with a homomorphism
        gives a matching of the target document."""
        query = parse_query("/a[b > 5 and c]")
        source = parse_document("<a><b>7</b><c/></a>")
        target = parse_document("<a><c/><b>7</b><d/></a>")
        hom = find_homomorphism(source.root, target.root, flavor=WEAK)
        matching = find_matching(query, source)
        assert hom is not None and matching is not None
        transported = {node.ntest or "$": hom(matching(node)) for node in query.nodes()}
        assert transported["b"].string_value() == "7"
        assert find_matching(query, target) is not None

    def test_natural_homomorphism_from_origin_map(self):
        original = parse_document("<a><b>1</b></a>")
        copy = original.copy()
        origins = {}
        for orig_node, copy_node in zip(original.iter_nodes(), copy.iter_nodes()):
            origins[id(copy_node)] = orig_node
        hom = natural_homomorphism(copy, original, lambda n: origins[id(n)], flavor=WEAK)
        assert hom.is_valid()
        assert is_internal_node_preserving(hom)


class TestAutomorphisms:
    def test_paper_automorphism_example(self):
        """Section 6.3 example: /a[b and .//b] has a non-trivial automorphism mapping
        the descendant-axis b onto the child-axis b."""
        q = parse_query("/a[b and .//b]")
        assert has_nontrivial_automorphism(q)
        child_b = [n for n in q.non_root_nodes() if n.ntest == "b" and n.axis == "child"][0]
        desc_b = [n for n in q.non_root_nodes()
                  if n.ntest == "b" and n.axis == "descendant"][0]
        assert structurally_subsumes(q, child_b, desc_b)
        assert not structurally_subsumes(q, desc_b, child_b)

    def test_identity_is_always_an_automorphism(self):
        q = parse_query("/a[b and c]")
        autos = list(iter_structural_automorphisms(q))
        assert any(a.is_identity() for a in autos)

    def test_no_nontrivial_automorphism_for_distinct_names(self):
        q = parse_query("/a[b and c]")
        assert not has_nontrivial_automorphism(q)
        assert nontrivial_domination_pairs(q) == []

    def test_domination_set_includes_self(self):
        q = parse_query("/a[b and c]")
        b = node_by_ntest(q, "b")
        assert structural_domination_set(q, b) == [b]

    def test_fig9_domination_structure(self):
        """In /a[*/b > 5 and c/b//d > 12 and .//d < 30] the second b structurally
        subsumes the first b, and the first d structurally subsumes the second d."""
        q = parse_query("/a[*/b > 5 and c/b//d > 12 and .//d < 30]")
        first_b = node_by_ntest(q, "b", 0)   # under the wildcard
        second_b = node_by_ntest(q, "b", 1)  # under c
        first_d = node_by_ntest(q, "d", 0)   # under the second b
        second_d = node_by_ntest(q, "d", 1)  # the .//d leaf
        assert structurally_subsumes(q, second_b, first_b)
        assert not structurally_subsumes(q, first_b, second_b)
        assert structurally_subsumes(q, first_d, second_d)
        assert not structurally_subsumes(q, second_d, first_d)
        assert second_d in structural_domination_leaves(q, first_d)

    def test_wildcard_node_can_be_mapped_anywhere(self):
        q = parse_query("/a[* and b]")
        star = [n for n in q.non_root_nodes() if n.is_wildcard()][0]
        b = node_by_ntest(q, "b")
        assert structurally_subsumes(q, b, star)

    def test_depth_never_decreases_under_automorphism(self):
        """Proposition 6.10."""
        q = parse_query("/a[b and .//b[c]]")
        for automorphism in iter_structural_automorphisms(q):
            for node, image in automorphism.items():
                assert image.depth() <= node.depth()
