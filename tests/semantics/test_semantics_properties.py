"""Cross-cutting property-based tests of the reference semantics."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import bool_eval, find_matching, full_eval, iter_matchings
from repro.xmlstream import interleave_children, parse_document
from repro.xpath import parse_query, truth_set

from ..strategies import documents, supported_queries


class TestEvaluatorProperties:
    @given(supported_queries(), documents())
    @settings(max_examples=60, deadline=None)
    def test_sibling_order_invariance(self, query, document):
        """Claim 4.3 generalized: reordering siblings never changes BOOLEVAL."""
        shuffled = interleave_children(document, random.Random(11))
        assert bool_eval(query, document) == bool_eval(query, shuffled)

    @given(supported_queries(), documents())
    @settings(max_examples=60, deadline=None)
    def test_output_nodes_are_selected_in_document_order(self, query, document):
        selected = full_eval(query, document)
        order = {id(node): index for index, node in enumerate(document.iter_nodes())}
        positions = [order[id(node)] for node in selected]
        assert positions == sorted(positions)

    @given(supported_queries(), documents())
    @settings(max_examples=60, deadline=None)
    def test_matchings_satisfy_all_constraints(self, query, document):
        """Every matching produced by the enumerator satisfies Definition 5.8."""
        from repro.semantics.evaluator import name_passes_node_test, relates_by_axis

        count = 0
        for matching in iter_matchings(query, document):
            count += 1
            for node in query.non_root_nodes():
                image = matching(node)
                assert name_passes_node_test(image.name, node.ntest)
                parent_image = matching(node.parent)
                assert relates_by_axis(image, parent_image, node.axis)
                assert truth_set(node).contains(image.string_value())
            if count >= 5:
                break

    @given(documents())
    @settings(max_examples=40, deadline=None)
    def test_adding_an_unrelated_subtree_preserves_matches(self, document):
        """Monotonicity: grafting extra content never destroys an existing match."""
        query = parse_query("//a[b]")
        before = bool_eval(query, document)
        grown = document.copy()
        from repro.xmlstream import XMLNode

        grown.top_element().append_child(XMLNode.element("unrelated"))
        after = bool_eval(query, grown)
        if before:
            assert after

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_recursive_nesting_matches_iff_some_level_complete(self, levels):
        query = parse_query("//a[b and c]")
        complete_level = levels  # the innermost level gets both children
        parts = []
        for level in range(1, levels + 1):
            parts.append("<a><b/>" if level != complete_level else "<a><b/><c/>")
        text = "".join(parts) + "</a>" * levels
        document = parse_document(text)
        assert bool_eval(query, document)
        matching = find_matching(query, document)
        a_node = [n for n in query.non_root_nodes() if n.ntest == "a"][0]
        assert matching(a_node).name == "a"
