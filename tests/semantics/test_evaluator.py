"""Tests for the reference evaluator (SELECT / PEVAL / FULLEVAL / BOOLEVAL)."""

import pytest

from repro.semantics import bool_eval, full_eval, full_eval_values
from repro.xmlstream import parse_document
from repro.xpath import parse_query


class TestBasicSelection:
    def test_child_axis(self):
        q = parse_query("/a/b")
        assert bool_eval(q, parse_document("<a><b/></a>"))
        assert not bool_eval(q, parse_document("<a><c><b/></c></a>"))

    def test_descendant_axis(self):
        q = parse_query("//b")
        assert bool_eval(q, parse_document("<a><c><b/></c></a>"))
        assert not bool_eval(q, parse_document("<a><c/></a>"))

    def test_descendant_axis_mid_path(self):
        q = parse_query("/a//b/c")
        assert bool_eval(q, parse_document("<a><x><b><c/></b></x></a>"))
        assert not bool_eval(q, parse_document("<a><x><b><d><c/></d></b></x></a>"))

    def test_wildcard_node_test(self):
        q = parse_query("/a/*/c")
        assert bool_eval(q, parse_document("<a><b><c/></b></a>"))
        assert bool_eval(q, parse_document("<a><x><c/></x></a>"))
        assert not bool_eval(q, parse_document("<a><c/></a>"))

    def test_output_sequence_in_document_order(self):
        q = parse_query("/a/b")
        doc = parse_document("<a><b>1</b><c/><b>2</b></a>")
        assert full_eval_values(q, doc) == ["1", "2"]

    def test_full_eval_returns_nodes(self):
        q = parse_query("/a/b")
        doc = parse_document("<a><b>1</b></a>")
        nodes = full_eval(q, doc)
        assert len(nodes) == 1 and nodes[0].name == "b"

    def test_no_match_returns_empty_sequence(self):
        q = parse_query("/a/z")
        assert full_eval(q, parse_document("<a><b/></a>")) == []

    def test_attribute_selection(self):
        q = parse_query("/book/@id")
        doc = parse_document('<book id="b1">x</book>')
        assert full_eval_values(q, doc) == ["b1"]


class TestPredicates:
    def test_existence_predicate(self):
        q = parse_query("/a[b]")
        assert bool_eval(q, parse_document("<a><b/></a>"))
        assert not bool_eval(q, parse_document("<a><c/></a>"))

    def test_numeric_comparison(self):
        q = parse_query("/a[b > 5]")
        assert bool_eval(q, parse_document("<a><b>6</b></a>"))
        assert not bool_eval(q, parse_document("<a><b>5</b></a>"))
        assert not bool_eval(q, parse_document("<a><b>hello</b></a>"))

    def test_existential_semantics_over_multiple_children(self):
        q = parse_query("/a[b > 5]")
        assert bool_eval(q, parse_document("<a><b>1</b><b>9</b></a>"))

    def test_paper_remark_example(self):
        """The remark after Definition 3.5: /a[b + 2 = 5] on <a><b>0</b><b>3</b></a>
        evaluates to true under the paper's existential semantics."""
        q = parse_query("/a[b + 2 = 5]")
        doc = parse_document("<a><b>0</b><b>3</b></a>")
        assert bool_eval(q, doc)

    def test_conjunction(self):
        q = parse_query("/a[b and c]")
        assert bool_eval(q, parse_document("<a><b/><c/></a>"))
        assert not bool_eval(q, parse_document("<a><b/></a>"))

    def test_disjunction(self):
        q = parse_query("/a[b or c]")
        assert bool_eval(q, parse_document("<a><c/></a>"))
        assert not bool_eval(q, parse_document("<a><d/></a>"))

    def test_negation(self):
        q = parse_query("/a[not(b)]")
        assert bool_eval(q, parse_document("<a><c/></a>"))
        assert not bool_eval(q, parse_document("<a><b/></a>"))

    def test_nested_predicate(self):
        q = parse_query("/a[b[c > 5]]")
        assert bool_eval(q, parse_document("<a><b><c>7</c></b></a>"))
        assert not bool_eval(q, parse_document("<a><b><c>3</c></b></a>"))
        assert not bool_eval(q, parse_document("<a><c>7</c></a>"))

    def test_relative_descendant_path_in_predicate(self):
        q = parse_query("/a[.//e]")
        assert bool_eval(q, parse_document("<a><x><y><e/></y></x></a>"))
        assert not bool_eval(q, parse_document("<a><x/></a>"))

    def test_string_equality_predicate(self):
        q = parse_query('/a[b = "north"]')
        assert bool_eval(q, parse_document("<a><b>north</b></a>"))
        assert not bool_eval(q, parse_document("<a><b>south</b></a>"))

    def test_function_predicate(self):
        q = parse_query('/a[fn:starts-with(b, "no")]')
        assert bool_eval(q, parse_document("<a><b>north</b></a>"))
        assert not bool_eval(q, parse_document("<a><b>south</b></a>"))

    def test_predicate_on_internal_value(self):
        q = parse_query("/a[b[c] > 5]")
        assert bool_eval(q, parse_document("<a><b>7<c/></b></a>"))
        assert not bool_eval(q, parse_document("<a><b>7</b></a>"))

    def test_string_value_concatenation_semantics(self):
        q = parse_query("/a[b > 5]")
        # STRVAL(b) is the concatenation "4" + "2" = "42" > 5
        assert bool_eval(q, parse_document("<a><b><x>4</x><y>2</y></b></a>"))

    def test_predicate_with_output_step(self):
        q = parse_query("/a[b > 5]/c")
        assert bool_eval(q, parse_document("<a><b>6</b><c/></a>"))
        assert not bool_eval(q, parse_document("<a><b>6</b></a>"))
        assert not bool_eval(q, parse_document("<a><b>4</b><c/></a>"))


class TestPaperExamples:
    def test_theorem_42_query_on_its_document(self):
        q = parse_query("/a[c[.//e and f] and b > 5]")
        assert bool_eval(q, parse_document("<a><c><e/><f/></c><b>6</b></a>"))
        # reordering children does not affect the result (Claim 4.3)
        assert bool_eval(q, parse_document("<a><b>6</b><c><f/><e/></c></a>"))
        # dropping a frontier subtree breaks the match (Claim 4.4)
        assert not bool_eval(q, parse_document("<a><b>6</b><c><f/><f/></c></a>"))

    def test_recursion_example(self):
        q = parse_query("//a[b and c]")
        assert bool_eval(q, parse_document("<a><b/><a/><c/></a>"))
        assert bool_eval(q, parse_document("<a><a><b/><c/></a></a>"))
        assert not bool_eval(q, parse_document("<a><b/><a><c/></a></a>"))

    def test_wildcard_descendant_remark_query(self):
        q = parse_query("/a[c[.//* and f] and b > 5]")
        assert bool_eval(q, parse_document("<a><c><f/><x/></c><b>7</b></a>"))

    def test_recursive_document_matches_at_inner_level_only(self):
        q = parse_query("//d[f and a[b and c]]")
        doc = parse_document("<Z><d><f/><a><b/></a><Z><d><f/><a><b/><c/></a></d></Z></d></Z>")
        assert bool_eval(q, doc)
