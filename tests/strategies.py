"""Shared hypothesis strategies and random generators for the test suite.

The strategies generate small documents and queries over a fixed label alphabet so
that cross-checking the streaming filter against the reference evaluator stays fast
while still exploring recursion, descendant axes, wildcards and value predicates.
"""

from __future__ import annotations

import random
from typing import List, Optional

from hypothesis import strategies as st

from repro.xmlstream import XMLDocument, XMLNode
from repro.xpath import Query, parse_query

LABELS = ("a", "b", "c", "d", "e")
VALUES = ("", "1", "3", "4", "6", "7", "10", "hello")


# --------------------------------------------------------------------------- documents
@st.composite
def document_nodes(draw, depth: int = 0, max_depth: int = 4) -> XMLNode:
    """A random element node with random children."""
    node = XMLNode.element(draw(st.sampled_from(LABELS)))
    if draw(st.booleans()):
        node.append_child(XMLNode.text(draw(st.sampled_from(VALUES))))
    if depth < max_depth:
        child_count = draw(st.integers(min_value=0, max_value=3))
        for _ in range(child_count):
            node.append_child(draw(document_nodes(depth=depth + 1, max_depth=max_depth)))
    return node


@st.composite
def documents(draw, max_depth: int = 4) -> XMLDocument:
    """A random small document over the fixed label set."""
    return XMLDocument.from_top_element(draw(document_nodes(max_depth=max_depth)))


# --------------------------------------------------------------------------- queries
def _random_name(rng: random.Random, allow_wildcard: bool) -> str:
    if allow_wildcard and rng.random() < 0.2:
        return "*"
    return rng.choice(LABELS)


def _random_step(rng: random.Random, depth: int, max_depth: int,
                 allow_wildcard: bool) -> str:
    name = _random_name(rng, allow_wildcard)
    axis = rng.choice(("/", "//"))
    predicates: List[str] = []
    if depth < max_depth and rng.random() < 0.6:
        count = rng.randint(1, 2)
        for _ in range(count):
            predicates.append(_random_relative(rng, depth + 1, max_depth,
                                               allow_wildcard))
    predicate_text = f"[{' and '.join(predicates)}]" if predicates else ""
    return f"{axis}{name}{predicate_text}"


def _random_relative(rng: random.Random, depth: int, max_depth: int,
                     allow_wildcard: bool = False) -> str:
    name = _random_name(rng, allow_wildcard)
    prefix = rng.choice(("", ".//"))
    choice = rng.random()
    if choice < 0.35:
        operator = rng.choice((">", "<", "=", ">=", "<=", "!="))
        constant = rng.choice((2, 5, 7))
        return f"{prefix}{name} {operator} {constant}"
    if choice < 0.55 and depth < max_depth:
        inner = _random_relative(rng, depth + 1, max_depth, allow_wildcard)
        return f"{prefix}{name}[{inner}]"
    if choice < 0.7:
        follow = _random_name(rng, allow_wildcard)
        axis = rng.choice(("/", "//"))
        return f"{prefix}{name}{axis}{follow}"
    return f"{prefix}{name}"


def random_supported_query(rng: random.Random, *, max_steps: int = 2,
                           max_depth: int = 2,
                           allow_wildcard: bool = False) -> Query:
    """A random univariate conjunctive leaf-only-value-restricted query.

    The generator only emits shapes the streaming filter supports: child/descendant
    axes, conjunctions, and single-variable comparisons against constants on leaves.
    With ``allow_wildcard`` some node tests become ``*`` (still supported).
    """
    steps = rng.randint(1, max_steps)
    text = "".join(_random_step(rng, 1, max_depth, allow_wildcard=allow_wildcard)
                   for _ in range(steps))
    return parse_query(text)


@st.composite
def supported_queries(draw, allow_wildcard: bool = False) -> Query:
    """Hypothesis wrapper over :func:`random_supported_query`."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return random_supported_query(random.Random(seed), allow_wildcard=allow_wildcard)
