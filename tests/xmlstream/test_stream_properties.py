"""Property-based tests for the XML substrate (round trips and well-formedness)."""

from hypothesis import given, settings

from repro.xmlstream import build_document, is_well_formed, parse_document, serialize_document

from ..strategies import documents


class TestRoundTrips:
    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_document_events_roundtrip(self, document):
        rebuilt = build_document(document.events())
        assert document.structurally_equal(rebuilt)

    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_document_events_are_well_formed(self, document):
        assert is_well_formed(document.events())

    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_preserves_element_structure(self, document):
        # text nodes with empty content are dropped by serialization, so compare the
        # element skeleton and the string values of elements instead of full equality
        reparsed = parse_document(serialize_document(document))
        original_names = [n.name for n in document.iter_elements()]
        reparsed_names = [n.name for n in reparsed.iter_elements()]
        assert original_names == reparsed_names
        assert document.top_element().string_value() == reparsed.top_element().string_value()

    @given(documents())
    @settings(max_examples=60, deadline=None)
    def test_depth_matches_event_depth(self, document):
        from repro.xmlstream import max_depth

        assert document.depth() == max_depth(document.events())
