"""The DocumentFramer splits one chunk stream into many complete documents."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlstream import DocumentFramer, XMLParseError, parse_events
from repro.xmlstream.parse import _token_to_event, document_tokens


def _frame_all(chunks):
    framer = DocumentFramer()
    return list(framer.frame(chunks))


def _events(tokens):
    """Compare frames semantically: zero-copy text tokens are views into
    whatever buffer they arrived in, so raw token tuples differ by buffer."""
    return [_token_to_event(token) for token in tokens]


class TestFraming:
    def test_single_document_equals_document_tokens(self):
        text = "<a><b>6</b><c x='1'/></a>"
        assert [_events(f) for f in _frame_all([text])] == \
            [_events(document_tokens(text))]

    def test_multiple_documents_in_one_chunk(self):
        frames = _frame_all(["<a><b/></a><c>5</c><d/>"])
        assert [f[1][1] for f in frames] == ["a", "c", "d"]
        assert _events(frames[1]) == _events(document_tokens("<c>5</c>"))

    def test_document_split_across_arbitrary_chunks(self):
        text = "<feed><topic1><score1>88</score1></topic1></feed><feed><x/></feed>"
        for size in (1, 3, 7, 1000):
            chunks = [text[i:i + size] for i in range(0, len(text), size)]
            frames = _frame_all(chunks)
            assert len(frames) == 2
            assert _events(frames[0]) == _events(document_tokens(text[:49]))
            assert _events(frames[1]) == \
                _events(document_tokens("<feed><x/></feed>"))

    def test_byte_chunks_with_split_multibyte_characters(self):
        payload = "<a>héllo wörld</a><b/>".encode("utf-8")
        chunks = [payload[i:i + 2] for i in range(0, len(payload), 2)]
        frames = _frame_all(chunks)
        events = [_token_to_event(t) for t in frames[0]]
        assert events == parse_events("<a>héllo wörld</a>")

    def test_whitespace_between_documents_is_ignored(self):
        frames = _frame_all(["<a/>\n  <b/>\n"])
        assert len(frames) == 2

    @settings(max_examples=30, deadline=None)
    @given(docs=st.lists(st.sampled_from(
        ["<a><b>6</b></a>", "<c/>", "<d x='2'>t</d>", "<e><e><e/></e></e>"]),
        min_size=1, max_size=6),
        size=st.integers(min_value=1, max_value=9))
    def test_any_concatenation_reframes_to_the_same_documents(self, docs, size):
        text = "".join(docs)
        chunks = [text[i:i + size] for i in range(0, len(text), size)]
        assert [_events(f) for f in _frame_all(chunks)] == \
            [_events(document_tokens(doc)) for doc in docs]


class TestSocketShapedChunkings:
    """Adversarial transport chunkings: the wire server feeds the framer
    whatever byte runs the kernel hands it, so framing must be invariant under
    1-byte reads, boundaries splitting tags/entities/attributes/comments, and
    multi-byte characters cut anywhere."""

    DOCS = [
        "<feed><topic1 kind='hot &amp; new'>h&lt;1&gt;</topic1></feed>",
        "<a><b>6</b><c x=\"q&quot;v\"/></a>",
        "<solo/>",
        "<t><!-- a comment, <not> a tag --><u>text &amp; more</u></t>",
    ]

    def _expected(self):
        return [_events(document_tokens(doc)) for doc in self.DOCS]

    def test_one_byte_reads(self):
        text = "".join(self.DOCS)
        frames = _frame_all([char for char in text])
        assert [_events(f) for f in frames] == self._expected()

    def test_one_byte_reads_over_utf8_bytes(self):
        docs = ["<a>héllo &amp; wörld</a>", "<b attr='ému'>☃</b>"]
        payload = "".join(docs).encode("utf-8")
        frames = _frame_all([payload[i:i + 1] for i in range(len(payload))])
        assert [_events(f) for f in frames] == \
            [_events(document_tokens(doc)) for doc in docs]

    def test_boundary_inside_an_entity_reference(self):
        # "&am" + "p;" must still decode to one '&' in the right text run
        frames = _frame_all(["<a>x&am", "p;y</a><b/>"])
        assert [_events(f) for f in frames] == \
            [_events(document_tokens("<a>x&amp;y</a>")),
             _events(document_tokens("<b/>"))]

    def test_boundary_inside_tags_attributes_and_comments(self):
        chunkings = [
            ["<fe", "ed><t ", "x='1", "'/></f", "eed>"],
            ["<a", "><!--", " split -", "-><b/>", "</a>"],
            ["<x y=\"a", "b\"></", "x>"],
        ]
        wholes = ["<feed><t x='1'/></feed>", "<a><b/></a>",
                  "<x y=\"ab\"></x>"]
        for chunks, whole in zip(chunkings, wholes):
            assert [_events(f) for f in _frame_all(chunks)] == \
                [_events(document_tokens(whole))]

    def test_document_boundary_split_from_next_document_start(self):
        # ">" of one document and "<" of the next arrive in separate reads
        frames = _frame_all(["<a></a", ">", "<b", "></b>"])
        assert [f[1][1] for f in frames] == ["a", "b"]

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), size=st.integers(min_value=1, max_value=6))
    def test_random_byte_chunkings_are_framing_invariant(self, data, size):
        docs = data.draw(st.lists(st.sampled_from(self.DOCS),
                                  min_size=1, max_size=4))
        payload = "".join(docs).encode("utf-8")
        chunks = [payload[i:i + size] for i in range(0, len(payload), size)]
        framer = DocumentFramer()
        frames = [frame for chunk in chunks for frame in framer.feed(chunk)]
        framer.close()
        assert [_events(f) for f in frames] == \
            [_events(document_tokens(doc)) for doc in docs]

    def test_salvage_after_a_poisoned_connection(self):
        """The wire server's stream-error path: everything completed before
        the poison is salvaged exactly once, the poisoned framer refuses all
        further use, and a fresh framer (fresh connection) starts clean —
        regardless of how the bytes around the error were chunked."""
        good = "<a><b>6</b></a><c/>"
        poison = "<d><e></wrong>"
        whole = good + poison
        for size in (1, 2, 5, len(whole)):
            framer = DocumentFramer()
            salvaged = []
            with pytest.raises(XMLParseError, match="mismatched"):
                for i in range(0, len(whole), size):
                    salvaged.extend(framer.feed(whole[i:i + size]))
            salvaged.extend(framer.take_completed())
            assert [_events(f) for f in salvaged] == \
                [_events(document_tokens("<a><b>6</b></a>")),
                 _events(document_tokens("<c/>"))]
            assert framer.take_completed() == []  # handed out exactly once
            with pytest.raises(XMLParseError, match="unusable"):
                framer.feed("<f/>")
            with pytest.raises(XMLParseError, match="unusable"):
                framer.close()
            # the reconnect path: a fresh framer is immediately serviceable
            replacement = DocumentFramer()
            assert [f[1][1] for f in replacement.feed("<g/>")] == ["g"]


class TestErrors:
    def test_mid_document_end_of_stream_raises(self):
        framer = DocumentFramer()
        framer.feed("<a><b>")
        assert framer.mid_document
        with pytest.raises(XMLParseError, match="mid-document"):
            framer.close()

    def test_mid_document_sees_buffered_partial_constructs(self):
        """A partial tag held by the tokenizer, or an undecoded multi-byte
        tail in the decoder, is truncation — not a clean boundary."""
        framer = DocumentFramer()
        framer.feed("<a/><b")  # partial tag, no open elements
        assert framer.mid_document
        framer = DocumentFramer()
        framer.feed("é".encode("utf-8")[:1])  # half a multi-byte character
        assert framer.mid_document
        framer = DocumentFramer()
        framer.feed("<a/>  \n")  # trailing whitespace would be dropped
        assert not framer.mid_document
        framer.close()

    def test_documents_completed_before_an_error_are_salvageable(self):
        """Delivery must not depend on chunk boundaries: a document fully
        received before a protocol error in the same chunk is retained."""
        framer = DocumentFramer()
        with pytest.raises(XMLParseError, match="mismatched"):
            framer.feed("<a></a><b></c>")
        salvaged = framer.take_completed()
        assert [_events(f) for f in salvaged] == \
            [_events(document_tokens("<a></a>"))]
        assert framer.take_completed() == []  # handed out exactly once

    def test_frame_yields_completed_documents_before_raising(self):
        framer = DocumentFramer()
        produced = []
        with pytest.raises(XMLParseError):
            for tokens in framer.frame(["<a/><b/>", "<c></d>"]):
                produced.append(tokens)
        assert [f[1][1] for f in produced] == ["a", "b"]

    def test_mismatched_and_unmatched_tags_raise(self):
        with pytest.raises(XMLParseError, match="mismatched"):
            DocumentFramer().feed("<a></b>")
        with pytest.raises(XMLParseError, match="unmatched"):
            DocumentFramer().feed("</a>")

    def test_character_data_between_documents_raises(self):
        framer = DocumentFramer()
        framer.feed("<a/>")
        with pytest.raises(XMLParseError, match="between documents"):
            framer.feed("stray text<b/>")

    def test_framing_error_poisons_the_framer(self):
        """After an error the nesting state is untrustworthy: continuing to
        feed must fail fast, never mis-frame a malformed stream as complete."""
        framer = DocumentFramer()
        with pytest.raises(XMLParseError, match="mismatched"):
            framer.feed("<a><b></x>")
        with pytest.raises(XMLParseError, match="unusable"):
            framer.feed("</a>")
        with pytest.raises(XMLParseError, match="unusable"):
            framer.close()

    def test_use_after_close_raises(self):
        framer = DocumentFramer()
        framer.feed("<a/>")
        framer.close()
        with pytest.raises(XMLParseError):
            framer.feed("<b/>")
        with pytest.raises(XMLParseError):
            framer.close()

    def test_clean_close_after_complete_documents(self):
        framer = DocumentFramer()
        assert len(framer.feed("<a/><b/>")) == 2
        assert not framer.mid_document
        framer.close()
