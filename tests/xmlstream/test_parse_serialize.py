"""Tests for XML parsing, building and serialization."""

import pytest

from repro.xmlstream import (
    MalformedStreamError,
    StartDocument,
    StartElement,
    Text,
    XMLParseError,
    build_document,
    parse_document,
    parse_events,
    parse_with_sax,
    serialize_document,
    serialize_events,
    tokenize,
    try_build_document,
    wrap_document,
)


class TestTokenizer:
    def test_tokenize_simple(self):
        events = tokenize("<a><b>6</b></a>")
        assert [e.compact() for e in events] == ["<a>", "<b>", "6", "</b>", "</a>"]

    def test_tokenize_self_closing(self):
        events = tokenize("<a><b/></a>")
        assert [e.compact() for e in events] == ["<a>", "<b>", "</b>", "</a>"]

    def test_tokenize_attributes_become_attribute_children(self):
        events = tokenize('<book id="b1">x</book>')
        assert [e.compact() for e in events] == [
            "<book>", "<@id>", "b1", "</@id>", "x", "</book>"
        ]

    def test_whitespace_only_text_is_dropped(self):
        events = tokenize("<a>\n  <b/>\n</a>")
        assert [e.compact() for e in events] == ["<a>", "<b>", "</b>", "</a>"]

    def test_comments_are_skipped(self):
        events = tokenize("<a><!-- c --></a>")
        assert [e.compact() for e in events] == ["<a>", "</a>"]

    def test_comment_containing_markup_is_skipped_whole(self):
        events = tokenize("<a><!-- <b>6</b> --></a>")
        assert [e.compact() for e in events] == ["<a>", "</a>"]

    def test_processing_instructions_are_skipped(self):
        events = tokenize('<?xml version="1.0"?><a><?target data?></a>')
        assert [e.compact() for e in events] == ["<a>", "</a>"]

    def test_doctype_is_skipped(self):
        events = tokenize("<!DOCTYPE a><a/>")
        assert [e.compact() for e in events] == ["<a>", "</a>"]

    def test_doctype_internal_subset_is_skipped(self):
        events = tokenize("<!DOCTYPE a [<!ELEMENT a (b)> <!ELEMENT b EMPTY>]><a><b/></a>")
        assert [e.compact() for e in events] == ["<a>", "<b>", "</b>", "</a>"]

    def test_comments_split_text_runs(self):
        events = tokenize("<a>x<!-- c -->y</a>")
        assert [e.compact() for e in events] == ["<a>", "x", "y", "</a>"]

    def test_parse_events_accepts_commented_document(self):
        # regression: this used to die with "mismatched closing tag: expected </!-->"
        events = parse_events("<a><!-- c --></a>")
        assert [e.compact() for e in events] == ["<$>", "<a>", "</a>", "</$>"]

    def test_unterminated_comment_stays_character_data(self):
        events = tokenize("<a>x</a><!-- open")
        assert [e.compact() for e in events] == ["<a>", "x", "</a>", "<!-- open"]

    def test_entities_are_decoded(self):
        events = tokenize("<a>1 &lt; 2 &amp; 3</a>")
        assert events[1].content == "1 < 2 & 3"


class TestParseDocument:
    def test_parse_roundtrips_through_events(self):
        doc = parse_document("<a><b>6</b><c/></a>")
        rebuilt = build_document(doc.events())
        assert doc.structurally_equal(rebuilt)

    def test_parse_rejects_mismatched_tags(self):
        with pytest.raises(XMLParseError):
            parse_events("<a><b></a></b>")

    def test_parse_rejects_unclosed_tag(self):
        with pytest.raises(XMLParseError):
            parse_events("<a><b>")

    def test_parse_rejects_stray_close(self):
        with pytest.raises(XMLParseError):
            parse_events("</a>")

    def test_parse_matches_sax_parser_on_regular_xml(self):
        text = "<a><b>6</b><c><d>x</d></c></a>"
        ours = parse_events(text)
        theirs = parse_with_sax(text)
        assert ours == theirs

    def test_parse_with_sax_handles_attributes(self):
        events = parse_with_sax('<a id="1"><b/></a>')
        assert StartElement("@id") in events
        assert Text("1") in events


class TestBuildDocument:
    def test_build_rejects_missing_envelope(self):
        with pytest.raises(MalformedStreamError):
            build_document([StartElement("a")])

    def test_build_rejects_unbalanced(self):
        events = [StartDocument(), StartElement("a")]
        assert try_build_document(events + [wrap_document([])[-1]]) is None

    def test_try_build_returns_none_for_malformed(self):
        assert try_build_document([]) is None

    def test_build_empty_document(self):
        doc = build_document(wrap_document([]))
        assert doc.node_count() == 0


class TestSerialize:
    def test_serialize_collapses_empty_elements(self):
        doc = parse_document("<a><b></b>x</a>")
        assert serialize_document(doc) == "<a><b/>x</a>"

    def test_serialize_escapes_special_characters(self):
        events = wrap_document([StartElement("a"), Text("1 < 2 & 3"), *wrap_document([])[1:-1]])
        text = serialize_events([events[0], events[1], events[2]])
        assert "&lt;" in text and "&amp;" in text

    def test_serialize_parse_roundtrip(self):
        original = "<a><b>6</b><c><d/>tail</c></a>"
        doc = parse_document(original)
        again = parse_document(serialize_document(doc))
        assert doc.structurally_equal(again)

    def test_compact_matches_paper_notation(self):
        doc = parse_document("<a><b>6</b></a>")
        assert doc.compact() == "<a><b>6</b></a>"
