"""Tests for the synthetic document generators."""

import random

from repro.xmlstream import (
    interleave_children,
    linear_chain,
    nested_recursive,
    padded_depth_document,
    random_document,
    wide_document,
    XMLNode,
)


class TestGenerators:
    def test_linear_chain_shape(self):
        doc = linear_chain(["a", "b", "c"], leaf_text="7")
        assert doc.depth() == 3
        assert doc.node_count() == 3
        assert doc.compact() == "<a><b><c>7</c></b></a>"

    def test_nested_recursive_depth(self):
        doc = nested_recursive("s", 5)
        assert doc.depth() == 5
        assert all(n.name == "s" for n in doc.iter_elements())

    def test_nested_recursive_with_children(self):
        doc = nested_recursive(
            "a", 3, child_factory=lambda level: [XMLNode.element("b")] if level == 2 else []
        )
        names = [n.name for n in doc.iter_elements()]
        assert names.count("a") == 3
        assert names.count("b") == 1

    def test_padded_depth_document(self):
        doc = padded_depth_document(["a"], "Z", 4, XMLNode.element("b"))
        assert doc.depth() == 6
        assert doc.compact() == "<a><Z><Z><Z><Z><b></b></Z></Z></Z></Z></a>"

    def test_wide_document(self):
        doc = wide_document("cat", "item", 10, text_for_child=lambda i: str(i))
        assert doc.node_count() == 11
        assert doc.depth() == 2

    def test_random_document_is_reproducible(self):
        one = random_document(random.Random(42))
        two = random_document(random.Random(42))
        assert one.structurally_equal(two)

    def test_interleave_children_preserves_multiset(self):
        doc = random_document(random.Random(7))
        shuffled = interleave_children(doc, random.Random(3))
        original_names = sorted(n.name for n in doc.iter_elements())
        shuffled_names = sorted(n.name for n in shuffled.iter_elements())
        assert original_names == shuffled_names
