"""Tests for the XML node and document model."""

import pytest

from repro.xmlstream import ELEMENT, ROOT, TEXT, XMLDocument, XMLNode, parse_document


class TestNodeConstruction:
    def test_element_requires_name(self):
        with pytest.raises(ValueError):
            XMLNode(ELEMENT)

    def test_text_requires_content(self):
        with pytest.raises(ValueError):
            XMLNode(TEXT)

    def test_root_is_unnamed(self):
        with pytest.raises(ValueError):
            XMLNode(ROOT, name="x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            XMLNode("comment", name="x")

    def test_text_node_cannot_have_children(self):
        text = XMLNode.text("hi")
        with pytest.raises(ValueError):
            text.append_child(XMLNode.element("a"))

    def test_attribute_nodes_get_at_prefix(self):
        attr = XMLNode.attribute("id", "7")
        assert attr.name == "@id"
        assert attr.string_value() == "7"


class TestStringValue:
    def test_strval_concatenates_descendant_text_in_document_order(self):
        doc = parse_document("<a><b>hel</b>lo<c><d>wor</d>ld</c></a>")
        top = doc.top_element()
        assert top.string_value() == "helloworld"

    def test_strval_of_leaf(self):
        doc = parse_document("<a><b>42</b></a>")
        b = doc.top_element().element_children()[0]
        assert b.string_value() == "42"

    def test_strval_cache_invalidation_on_append(self):
        a = XMLNode.element("a")
        a.append_child(XMLNode.text("x"))
        assert a.string_value() == "x"
        a.append_child(XMLNode.text("y"))
        assert a.string_value() == "xy"

    def test_strval_of_empty_element(self):
        assert XMLNode.element("a").string_value() == ""


class TestTraversal:
    def setup_method(self):
        self.doc = parse_document("<a><b><c/></b><d>1</d></a>")
        self.a = self.doc.top_element()
        self.b, self.d = self.a.element_children()
        self.c = self.b.element_children()[0]

    def test_document_order_traversal(self):
        names = [n.name for n in self.a.iter_descendants() if n.kind == ELEMENT]
        assert names == ["b", "c", "d"]

    def test_ancestors(self):
        assert [n.name for n in self.c.iter_ancestors() if n.kind == ELEMENT] == ["b", "a"]

    def test_path_from_root(self):
        path = self.c.path_from_root()
        assert path[0].kind == ROOT
        assert [n.name for n in path[1:]] == ["a", "b", "c"]

    def test_depth(self):
        assert self.a.depth() == 1
        assert self.c.depth() == 3

    def test_ancestor_descendant_predicates(self):
        assert self.a.is_ancestor_of(self.c)
        assert self.c.is_descendant_of(self.a)
        assert not self.c.is_ancestor_of(self.a)
        assert self.c.is_child_of(self.b)
        assert not self.c.is_child_of(self.a)

    def test_is_leaf_ignores_text_children(self):
        assert self.d.is_leaf()
        assert not self.a.is_leaf()

    def test_subtree_size_counts_all_kinds(self):
        # a, b, c, d and the text node under d, plus the root
        assert self.doc.size() == 6


class TestDocumentMetrics:
    def test_depth(self):
        assert parse_document("<a><b><c/></b></a>").depth() == 3
        assert parse_document("<a/>").depth() == 1

    def test_node_count(self):
        doc = parse_document("<a><b>1</b><c/></a>")
        assert doc.node_count() == 3

    def test_top_element(self):
        doc = parse_document("<a><b/></a>")
        assert doc.top_element().name == "a"

    def test_structural_equality(self):
        one = parse_document("<a><b>1</b></a>")
        two = parse_document("<a><b>1</b></a>")
        three = parse_document("<a><b>2</b></a>")
        assert one.structurally_equal(two)
        assert not one.structurally_equal(three)

    def test_copy_is_deep(self):
        doc = parse_document("<a><b>1</b></a>")
        clone = doc.copy()
        assert doc.structurally_equal(clone)
        clone.top_element().append_child(XMLNode.element("c"))
        assert not doc.structurally_equal(clone)

    def test_document_root_must_be_root_kind(self):
        with pytest.raises(ValueError):
            XMLDocument(XMLNode.element("a"))
