"""Tests for the SAX event model."""

import pytest

from repro.xmlstream import (
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    Text,
    compact_stream,
    element_events,
    is_well_formed,
    iter_depths,
    max_depth,
    strip_document,
    text_element_events,
    wrap_document,
)


class TestEventBasics:
    def test_compact_notation_matches_paper(self):
        events = [StartDocument(), StartElement("a"), Text("6"), EndElement("a"),
                  EndDocument()]
        assert compact_stream(events) == "<$><a>6</a></$>"

    def test_events_are_value_objects(self):
        assert StartElement("a") == StartElement("a")
        assert StartElement("a") != StartElement("b")
        assert EndElement("a") != StartElement("a")
        assert Text("x") == Text("x")

    def test_events_are_hashable(self):
        assert len({StartElement("a"), StartElement("a"), EndElement("a")}) == 2

    def test_kind_attributes(self):
        assert StartDocument().kind == "startDocument"
        assert EndDocument().kind == "endDocument"
        assert StartElement("a").kind == "startElement"
        assert EndElement("a").kind == "endElement"
        assert Text("x").kind == "text"


class TestWellFormedness:
    def test_simple_document_is_well_formed(self):
        events = wrap_document(element_events("a", text_element_events("b", "1")))
        assert is_well_formed(events)

    def test_empty_stream_is_not_well_formed(self):
        assert not is_well_formed([])

    def test_missing_envelope_is_not_well_formed(self):
        assert not is_well_formed(element_events("a"))

    def test_mismatched_tags_are_not_well_formed(self):
        events = [StartDocument(), StartElement("a"), EndElement("b"), EndDocument()]
        assert not is_well_formed(events)

    def test_unclosed_element_is_not_well_formed(self):
        events = [StartDocument(), StartElement("a"), EndDocument()]
        assert not is_well_formed(events)

    def test_extra_close_is_not_well_formed(self):
        events = [StartDocument(), EndElement("a"), EndDocument()]
        assert not is_well_formed(events)

    def test_interior_document_event_is_not_well_formed(self):
        events = [StartDocument(), StartElement("a"), StartDocument(), EndElement("a"),
                  EndDocument()]
        assert not is_well_formed(events)

    def test_crossed_nesting_is_not_well_formed(self):
        events = [StartDocument(), StartElement("a"), StartElement("b"),
                  EndElement("a"), EndElement("b"), EndDocument()]
        assert not is_well_formed(events)


class TestEnvelopeHelpers:
    def test_wrap_then_strip_roundtrip(self):
        inner = element_events("a", element_events("b"))
        assert strip_document(wrap_document(inner)) == inner

    def test_strip_requires_envelope(self):
        with pytest.raises(ValueError):
            strip_document(element_events("a"))
        with pytest.raises(ValueError):
            strip_document([StartDocument(), StartElement("a"), EndElement("a")])

    def test_text_element_events_empty_content(self):
        assert text_element_events("a", "") == [StartElement("a"), EndElement("a")]


class TestDepths:
    def test_iter_depths_tracks_element_depth(self):
        events = wrap_document(element_events("a", element_events("b", [Text("x")])))
        depths = {e.compact(): d for e, d in iter_depths(events)}
        assert depths["<a>"] == 1
        assert depths["<b>"] == 2
        assert depths["x"] == 3
        assert depths["</$>"] == 0

    def test_max_depth_of_chain(self):
        events = wrap_document(
            element_events("a", element_events("b", element_events("c")))
        )
        assert max_depth(events) == 3

    def test_max_depth_of_empty_document(self):
        assert max_depth(wrap_document([])) == 0
