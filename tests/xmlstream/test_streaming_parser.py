"""Tests for the incremental (chunked) parser.

The invariant under test: for every chunking of an input, the concatenation of the
events returned by ``feed()``/``close()`` equals ``parse_events`` of the whole text.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlstream import (
    StreamingParser,
    XMLParseError,
    parse_events,
    serialize_document,
)

from ..strategies import documents

SAMPLES = [
    "<a><b>6</b></a>",
    '<catalog><book id="b1"><price>12</price></book></catalog>',
    "<a>x &lt; y<!-- note --><b/></a>",
    '<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a EMPTY>]><a>text</a>',
    "<a/><b/>",  # the paper's multi-root fragments
    "",  # empty document
]


def chunked(text: str, size: int):
    return [text[i:i + size] for i in range(0, len(text), size)]


class TestStreamingParser:
    @pytest.mark.parametrize("text", SAMPLES)
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 1000])
    def test_chunking_is_invisible(self, text, size):
        parser = StreamingParser()
        events = []
        for chunk in chunked(text, size):
            events.extend(parser.feed(chunk))
        events.extend(parser.close())
        assert events == parse_events(text)

    @pytest.mark.parametrize("size", [1, 5])
    def test_byte_chunks_with_multibyte_characters(self, size):
        text = "<a>café — naïve</a>"
        parser = StreamingParser()
        events = []
        for chunk in chunked(text.encode("utf-8").decode("latin-1"), size):
            events.extend(parser.feed(chunk.encode("latin-1")))
        events.extend(parser.close())
        assert events == parse_events(text)

    def test_parse_generator(self):
        parser = StreamingParser()
        events = list(parser.parse(["<a><b>", "6</b></a>"]))
        assert events == parse_events("<a><b>6</b></a>")

    def test_events_are_emitted_as_soon_as_they_complete(self):
        parser = StreamingParser()
        first = parser.feed("<a><b>6</b")
        # "6" is held back: until the '>' arrives, "</b" could still turn out to be
        # literal text (the tokenizer is lenient about stray '<'), extending the run
        assert [e.compact() for e in first] == ["<$>", "<a>", "<b>"]
        second = parser.feed("></a>")
        assert [e.compact() for e in second] == ["6", "</b>", "</a>"]
        assert [e.compact() for e in parser.close()] == ["</$>"]

    def test_mismatched_tag_raises_at_the_offending_chunk(self):
        parser = StreamingParser()
        parser.feed("<a><b>")
        with pytest.raises(XMLParseError, match="mismatched closing tag"):
            parser.feed("</a>")

    def test_unclosed_tags_raise_at_close(self):
        parser = StreamingParser()
        parser.feed("<a><b>")
        with pytest.raises(XMLParseError, match="unclosed tags"):
            parser.close()

    def test_stray_closing_tag_raises(self):
        parser = StreamingParser()
        with pytest.raises(XMLParseError, match="unmatched closing tag"):
            parser.feed("</a>")

    def test_feed_after_close_raises(self):
        parser = StreamingParser()
        parser.close()
        with pytest.raises(XMLParseError):
            parser.feed("<a/>")

    @settings(max_examples=60, deadline=None)
    @given(document=documents(), size=st.integers(min_value=1, max_value=9))
    def test_roundtrip_on_random_documents(self, document, size):
        text = serialize_document(document)
        parser = StreamingParser()
        events = []
        for chunk in chunked(text, size):
            events.extend(parser.feed(chunk))
        events.extend(parser.close())
        assert events == parse_events(text)
