"""Reproduce the paper's example run of the filtering algorithm (Fig. 22).

The query is /a[c[.//e and f] and b] and the document contains an irrelevant <d/>
element, a second <c/> element that arrives after the first one already matched, and
the frontier never holds more than FS(Q) = 3 tuples.

Run with:  python examples/trace_example_run.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import parse_document, parse_query, query_frontier_size, trace_run


def main() -> None:
    query = parse_query("/a[c[.//e and f] and b]")
    document = parse_document("<a><c><d/><e/><f/></c><b/><c/></a>")

    print(f"query:    {query.to_xpath()}")
    print(f"document: {document.compact()}")
    print(f"FS(Q) =   {query_frontier_size(query)}\n")

    trace = trace_run(query, document)
    print(trace.as_table())
    print()
    print(f"maximum frontier tuples observed: {trace.max_frontier_tuples()}")
    print(f"document matches the query:       {trace.final_root_matched()}")


if __name__ == "__main__":
    main()
