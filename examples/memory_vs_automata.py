"""Compare the streaming filter's memory against automata-based and buffering baselines.

Regenerates (in miniature) the comparison that motivates the paper: deterministic
automata pay for transition tables that blow up with //-heavy queries, DOM evaluation
pays for buffering the whole document, while the Section 8 filter stays within
O~(|Q| * r * log d) bits.

Run with:  python examples/memory_vs_automata.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import filter_with_statistics, parse_query
from repro.baselines import EagerDFAFilter, LazyDFAFilter, NaiveDOMFilter, PathNFAFilter
from repro.workloads import alternating_path_query, book_catalog, nested_sections


def blowup_table() -> None:
    print("Transition-table blow-up for //-alternating path queries")
    print(f"{'steps':>6} {'DFA states':>11} {'eager DFA bits':>15} {'lazy DFA bits':>14} "
          f"{'NFA bits':>9} {'filter bits':>12}")
    document = nested_sections(5)
    for steps in (4, 8, 12, 16, 20):
        query = alternating_path_query(steps)
        eager = EagerDFAFilter(query)
        lazy = LazyDFAFilter(query)
        nfa = PathNFAFilter(query)
        for baseline in (eager, lazy, nfa):
            baseline.run_document(document)
        _, stats = filter_with_statistics(query, document)
        print(f"{steps:>6} {eager.dfa.state_count:>11} "
              f"{eager.memory_report().total_bits:>15} "
              f"{lazy.memory_report().total_bits:>14} "
              f"{nfa.memory_report().total_bits:>9} "
              f"{stats.peak_memory_bits:>12}")
    print()


def buffering_table() -> None:
    print("Buffering (DOM) vs. streaming filter on growing documents")
    print(f"{'books':>6} {'DOM bits':>12} {'filter bits':>12} {'ratio':>7}")
    query = parse_query("/catalog/book[price < 20]")
    for books in (20, 100, 500, 2000):
        document = book_catalog(books, seed=3)
        dom = NaiveDOMFilter(query)
        dom.run_document(document)
        _, stats = filter_with_statistics(query, document)
        dom_bits = dom.memory_report().total_bits
        print(f"{books:>6} {dom_bits:>12} {stats.peak_memory_bits:>12} "
              f"{dom_bits / max(stats.peak_memory_bits, 1):>7.1f}")
    print()


def main() -> None:
    blowup_table()
    buffering_table()


if __name__ == "__main__":
    main()
