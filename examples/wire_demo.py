"""Demo: the TCP wire front end — pipelined clients, streaming, reconnect.

Starts a :class:`~repro.net.WireServer` on an ephemeral localhost port, connects
several :class:`~repro.net.WireClient` publishers/subscribers over real sockets,
and walks the protocol end to end:

1. subscribe under session-local names (canonical forms acknowledged),
2. a pipelined publish burst (one drain, acks gathered) with pushed ``match``
   notifications arriving on each subscriber,
3. a chunked ``publish_stream`` whose document boundaries the *server* finds by
   element nesting (chunks split tags and multi-byte characters mid-way),
4. a snapshot taken over the wire, the server torn down, a fresh server
   restored from the snapshot, and a client reconnecting under its old client
   id — subscriptions intact, not one re-``subscribe`` on the wire.

Run:  python examples/wire_demo.py
"""

import asyncio
import os
import random
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.net import WireClient, WireServer  # noqa: E402
from repro.workloads import service_document, wire_traffic  # noqa: E402


async def main() -> None:
    print("== wire demo: TCP front end over the pub/sub service ==\n")
    rng = random.Random(42)

    async with WireServer(batch_max=32) as server:
        host, port = server.address
        print(f"server listening on {host}:{port}")

        # --- 1. three clients, session-local subscription names ------------
        news = await WireClient.connect(host, port, client_id="news")
        sport = await WireClient.connect(host, port, client_id="sport")
        crawler = await WireClient.connect(host, port, client_id="crawler")
        canonical = await news.subscribe("hot", "/feed/topic1[score1 > 50]")
        await news.subscribe("any", "/feed/topic1")
        await sport.subscribe("hot", "/feed/topic2[score2 > 80]")
        print(f"subscribed; canonical form of news:hot = {canonical!r}")

        # --- 2. pipelined burst from the crawler ---------------------------
        burst = [service_document(rng, topics=4, entries=3) for _ in range(20)]
        results = await crawler.publish_many(burst)
        matched = sum(1 for result in results if result.matched)
        print(f"pipelined burst: {len(results)} documents published, "
              f"{matched} matched at least one subscription")
        note = await news.next_match(timeout=2)
        print(f"news got a push: document {note.document_id} "
              f"matched {note.matched}")

        # --- 3. chunked stream, framed by the server -----------------------
        text = ("<feed><topic1><score1>90</score1></topic1></feed>"
                "<feed><topic2><score2>99</score2></topic2></feed>")
        chunks = [text[i:i + 7] for i in range(0, len(text), 7)]
        streamed = await crawler.publish_stream(chunks)
        print(f"publish_stream: server framed {len(streamed)} documents "
              f"out of {len(chunks)} chunks; matched sets "
              f"{[r.matched for r in streamed]}")

        # --- 4. snapshot over the wire -------------------------------------
        snapshot = await news.snapshot()
        print(f"snapshot taken over the wire: "
              f"{len(snapshot['sessions'])} sessions recorded")
        for client in (news, sport, crawler):
            await client.close()

    print("\nserver stopped (graceful drain).  restoring from the snapshot …")

    server = WireServer.restore(snapshot)
    await server.start()
    try:
        host, port = server.address
        print(f"restored server listening on {host}:{port}")
        news = await WireClient.connect(host, port, client_id="news")
        print(f"reconnected as {news.client_id!r}: resumed={news.resumed}, "
              f"live subscriptions={news.server_subscriptions}")
        result = await news.publish(
            "<feed><topic1><score1>77</score1></topic1></feed>")
        print(f"published after restore: matched {result.matched}")
        note = await news.next_match(timeout=2)
        print(f"push after restore: document {note.document_id} "
              f"matched {note.matched}")
        await news.close()
    finally:
        await server.stop()

    # --- bonus: the multi-connection traffic generator ---------------------
    scripts = wire_traffic(40, connections=3, subscriptions_per_client=4,
                           churn_fraction=0.1, seed=1)
    print(f"\nwire_traffic: {len(scripts)} connection scripts, "
          f"op counts {[len(script) for script in scripts]}")
    print("\ndemo complete.")


if __name__ == "__main__":
    asyncio.run(main())
