"""Quickstart: parse a query, stream a document through the filter, inspect the result.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import (
    bool_eval,
    classify,
    filter_with_statistics,
    full_eval_values,
    parse_document,
    parse_query,
    query_frontier_size,
)


def main() -> None:
    # 1. A query and a document ------------------------------------------------------
    query = parse_query("/catalog/book[price < 20 and genre = \"fiction\"]")
    document = parse_document(
        "<catalog>"
        "<book><title>Streams</title><price>12</price><genre>fiction</genre></book>"
        "<book><title>Automata</title><price>55</price><genre>fiction</genre></book>"
        "<book><title>Bounds</title><price>9</price><genre>reference</genre></book>"
        "</catalog>"
    )

    # 2. Streaming filtering (the paper's Section 8 algorithm) ------------------------
    decision, stats = filter_with_statistics(query, document)
    print(f"query:     {query.to_xpath()}")
    print(f"matches:   {decision}")
    print(f"memory:    {stats.peak_memory_bits} bits "
          f"({stats.peak_frontier_records} frontier tuples, "
          f"{stats.peak_buffer_chars} buffered characters)")

    # 3. Cross-check with the reference (in-memory) evaluator -------------------------
    print(f"reference: {bool_eval(query, document)}")
    print(f"selected:  {full_eval_values(parse_query('/catalog/book/title'), document)}")

    # 4. What the theory says about this query ----------------------------------------
    info = classify(query)
    print(f"redundancy-free: {info.redundancy_free}")
    print(f"frontier size FS(Q) = {query_frontier_size(query)} "
          "(the paper's lower bound on the memory any streaming algorithm needs)")
    print("\nnext: examples/pubsub_server.py runs the long-lived pub/sub "
          "service on top of this engine")


if __name__ == "__main__":
    main()
