"""A long-lived pub/sub service: sessions, bursty publishing, snapshot/restore.

Drives :class:`repro.service.PubSubService` the way a network front end would:

1. clients connect and subscribe XPath queries under session-local names;
2. bursty multi-client traffic (:func:`repro.workloads.service_traffic`) is
   published through the batching ingest pipeline, and each client consumes its
   notifications concurrently;
3. one document arrives as network-sized byte chunks (``publish_stream``), and a
   long-lived connection carrying several concatenated documents is framed by
   :class:`repro.xmlstream.DocumentFramer`;
4. the service is snapshotted to JSON, stopped, and restored — the rebuilt service
   serves the same subscriptions without any client re-subscribing;
5. a sharded variant demonstrates the health probe: a shard worker is killed and
   the next publish succeeds after an automatic respawn.

Run with:  python examples/pubsub_server.py
"""

import asyncio
import json
import os
import signal
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.service import PubSubService
from repro.workloads import service_traffic, traffic_summary
from repro.xmlstream import DocumentFramer

DOCUMENTS = 300
CLIENTS = 4


async def consume(session, seen):
    """Drain one session's notifications as they arrive (a push consumer)."""
    async for notification in session.notifications():
        seen[session.client_id] = seen.get(session.client_id, 0) + len(
            notification.matched)


async def main() -> None:
    script = service_traffic(DOCUMENTS, clients=CLIENTS,
                             subscriptions_per_client=10, seed=3)
    print(f"traffic script: {traffic_summary(script)}\n")

    async with PubSubService() as service:
        sessions = {}
        seen: dict = {}
        consumers = []
        burst = []
        for op in script:
            if op[0] == "publish":
                burst.append(op[2])
                continue
            if burst:
                await service.publish_many(burst)
                burst = []
            if op[0] == "subscribe":
                _kind, client, name, text = op
                if client not in sessions:
                    sessions[client] = await service.connect(client)
                    consumers.append(asyncio.ensure_future(
                        consume(sessions[client], seen)))
                await sessions[client].subscribe(name, text)
            else:
                await sessions[op[1]].unsubscribe(op[2])
        if burst:
            await service.publish_many(burst)

        # a document arriving as network chunks, never materialized as one string
        chunked = await service.publish_stream(
            [b"<feed><topic1><headline1>x</headline1>",
             b"<score1>99</score1></topic1></feed>"])
        print(f"chunked publish matched {len(chunked.matched)} subscription(s)")

        # a long-lived connection carrying several concatenated documents
        framer = DocumentFramer()
        wire = b"<feed><topic2><score2>88</score2></topic2></feed>" \
               b"<feed><topic3><score3>12</score3></topic3></feed>"
        for tokens in framer.feed(wire):
            result = await service.publish(tokens)
            print(f"framed document {result.document_id}: "
                  f"{len(result.matched)} match(es)")
        framer.close()

        metrics = service.metrics()
        print(f"\nserved {metrics['published']} documents in "
              f"{metrics['batches']} ingest batches "
              f"(largest batch: {metrics['largest_batch']}); "
              f"{metrics['notifications']} notifications delivered")
        snapshot = service.snapshot()
        for task in consumers:
            task.cancel()
    print("client notification totals:", dict(sorted(seen.items())))

    # --- restart from the snapshot: no client re-subscribes anything
    text = json.dumps(snapshot)  # it round-trips through real JSON
    restored = PubSubService.restore(json.loads(text))
    async with restored:
        result = await restored.publish(
            "<feed><topic0><score0>95</score0></topic0></feed>")
        print(f"\nrestored service: {len(restored.sessions())} sessions, "
              f"{len(restored.bank)} subscriptions; "
              f"first publish matched {len(result.matched)}")

    # --- sharded mode: kill a worker, watch the health probe respawn it
    async with PubSubService(shards=2) as sharded:
        session = await sharded.connect("ops")
        await session.subscribe("watch", "/feed/topic0")
        await sharded.publish("<feed><topic0/></feed>")
        victim = sharded.bank.worker_status()[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        while sharded.bank.worker_status()[0]["alive"]:
            await asyncio.sleep(0.01)  # let the kill land before publishing
        result = await sharded.publish("<feed><topic0/></feed>")
        print(f"\nsharded service survived a killed worker: "
              f"respawned {sharded.metrics()['workers_respawned']}, "
              f"matched {result.matched}")


if __name__ == "__main__":
    asyncio.run(main())
