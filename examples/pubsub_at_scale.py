"""Publish/subscribe at scale: the shared-dispatch filter bank on heavy traffic.

Registers hundreds of XPath subscriptions, then routes a stream of documents through
the indexed :class:`~repro.core.FilterBank` three ways:

1. ``filter_many``   -- batch mode over materialized documents (with early-unregister
                        of subscriptions whose match is already decided);
2. ``filter_stream`` -- chunked byte input parsed incrementally, so the document is
                        never materialized (larger-than-memory filtering);
3. the same traffic through the pre-index ``NaiveFilterBank`` for the throughput
                        comparison.

Finally it runs the compiled prefix-trie engine (``CompiledFilterBank``) against the
indexed bank on a shared-prefix workload — thousands of subscriptions drawn from one
path trie, the YFilter-style setting where label dispatch degenerates to broadcast but
the trie evaluates each common prefix once.

Run with:  python examples/pubsub_at_scale.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import FilterBank, parse_query
from repro.baselines import NaiveFilterBank
from repro.core import CompiledFilterBank, MatchOnlyFilterBank, ShardedFilterBank
from repro.workloads import (
    book_catalog,
    dissemination_queries,
    shared_prefix_feed,
    shared_prefix_subscriptions,
    topic_feed,
    topic_subscriptions,
)
from repro.xmlstream import serialize_document

SUBSCRIPTIONS = 300
TOPICS = 150


def build_bank(bank):
    for index, text in enumerate(topic_subscriptions(SUBSCRIPTIONS, topics=TOPICS)):
        bank.register(f"topic-sub{index}", parse_query(text))
    for index, text in enumerate(dissemination_queries()):
        bank.register(f"catalog-sub{index}", parse_query(text))
    return bank


def main() -> None:
    indexed = build_bank(FilterBank())
    naive = build_bank(NaiveFilterBank())
    documents = [topic_feed(80, topics=TOPICS, seed=seed) for seed in range(4)]
    documents.append(book_catalog(40, seed=5))
    total_events = sum(len(document.events()) for document in documents)
    print(f"{len(indexed)} subscriptions, {len(documents)} incoming documents, "
          f"{total_events} events\n")

    # 1. batch mode over the whole feed ------------------------------------------------
    start = time.perf_counter()
    results = indexed.filter_many(documents)
    batch_seconds = time.perf_counter() - start
    for number, result in enumerate(results):
        print(f"document {number}: {len(result.matched)} subscriptions matched")

    # 2. chunked streaming input (the bank never materializes the document) -----------
    serialized = serialize_document(documents[0])
    chunks = [serialized[i:i + 4096].encode("utf-8")
              for i in range(0, len(serialized), 4096)]
    stream_result = indexed.filter_stream(chunks)
    assert sorted(stream_result.matched) == sorted(results[0].matched)
    print(f"\nfilter_stream over {len(chunks)} byte chunks reproduced document 0's "
          f"matched set ({len(stream_result.matched)} subscriptions)")

    # 3. throughput comparison against the pre-index bank -----------------------------
    start = time.perf_counter()
    naive_results = [naive.filter_document(document) for document in documents]
    naive_seconds = time.perf_counter() - start
    assert [sorted(r.matched) for r in naive_results] == \
        [sorted(r.matched) for r in results]
    print(f"\nindexed bank: {total_events / batch_seconds:>12,.0f} events/sec "
          f"({batch_seconds:.3f}s)")
    print(f"naive bank:   {total_events / naive_seconds:>12,.0f} events/sec "
          f"({naive_seconds:.3f}s)")
    print(f"speedup:      {naive_seconds / batch_seconds:.1f}x at "
          f"{len(indexed)} subscriptions")

    # 4. compiled prefix-trie engine on a shared-prefix workload ----------------------
    compiled, indexed = CompiledFilterBank(), FilterBank()
    for index, text in enumerate(shared_prefix_subscriptions(1000, seed=3)):
        compiled.register(f"sub{index}", parse_query(text))
        indexed.register(f"sub{index}", parse_query(text))
    feed_events = shared_prefix_feed(40, seed=4).events()
    timings = {}
    matched_sets = {}
    for label, bank in (("compiled", compiled), ("indexed", indexed)):
        start = time.perf_counter()
        result = bank.filter_events(iter(feed_events))
        timings[label] = time.perf_counter() - start
        matched_sets[label] = sorted(result.matched)
    assert matched_sets["compiled"] == matched_sets["indexed"]
    matched = len(matched_sets["compiled"])
    print(f"\nshared-prefix workload, {len(compiled)} subscriptions sharing "
          f"/catalog/product ({compiled.trie_size()} trie nodes):")
    print(f"compiled trie: {len(feed_events) / timings['compiled']:>12,.0f} events/sec")
    print(f"indexed bank:  {len(feed_events) / timings['indexed']:>12,.0f} events/sec")
    print(f"speedup:       {timings['indexed'] / timings['compiled']:.1f}x "
          f"({matched} subscriptions matched)")

    # 5. the match-only fast path (PR 3): same matches, no statistics machinery -------
    fast = MatchOnlyFilterBank()
    for index, text in enumerate(shared_prefix_subscriptions(1000, seed=3)):
        fast.register(f"sub{index}", parse_query(text))
    fast.filter_events(iter(feed_events))  # warm up (builds the trie)
    start = time.perf_counter()
    fast_result = fast.filter_events(iter(feed_events))
    fast_seconds = time.perf_counter() - start
    assert sorted(fast_result.matched) == matched_sets["compiled"]
    print(f"\nmatch-only fast path ({fast.distinct_plan_count()} interned plans "
          f"for {len(fast)} subscriptions):")
    print(f"fast path:     {len(feed_events) / fast_seconds:>12,.0f} events/sec "
          f"({timings['compiled'] / fast_seconds:.0f}x over the stats engine)")

    # 6. subscription churn splices the live trie instead of rebuilding it ------------
    start = time.perf_counter()
    for index, text in enumerate(shared_prefix_subscriptions(200, seed=9)):
        fast.register(f"churn{index}", parse_query(text))
        fast.unregister(f"churn{index}")
    churn_seconds = time.perf_counter() - start
    print(f"400 churn ops spliced into the live trie in {churn_seconds * 1000:.1f}ms "
          f"({400 / churn_seconds:,.0f} ops/sec)")

    # 7. the sharded bank spreads the subscriptions across worker processes -----------
    shards = min(4, os.cpu_count() or 1)
    with ShardedFilterBank(shards) as sharded:
        for index, text in enumerate(shared_prefix_subscriptions(1000, seed=3)):
            sharded.register(f"sub{index}", parse_query(text))
        sharded.filter_events(iter(feed_events))  # warm up (spawns the workers)
        start = time.perf_counter()
        sharded_result = sharded.filter_events(iter(feed_events))
        sharded_seconds = time.perf_counter() - start
        assert sorted(sharded_result.matched) == matched_sets["compiled"]
        print(f"\nsharded bank ({shards} worker processes, "
              f"{os.cpu_count()} cores visible):")
        print(f"sharded:       {len(feed_events) / sharded_seconds:>12,.0f} "
              f"events/sec ({fast_seconds / sharded_seconds:.2f}x over "
              f"single-process match-only)")


if __name__ == "__main__":
    main()
