"""Publish/subscribe XML filtering: many subscriptions, a stream of documents.

This is the application scenario that motivates the streaming-filtering literature the
paper builds on (XFilter/YFilter-style selective dissemination): subscribers register
XPath queries, documents arrive as streams, and each document must be routed to the
subscribers whose query it matches — without ever buffering whole documents.

Run with:  python examples/publish_subscribe_filtering.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import StreamingFilter, parse_query
from repro.baselines import NaiveDOMFilter
from repro.workloads import auction_site, book_catalog, dissemination_queries, nested_sections


def main() -> None:
    subscriptions = {text: StreamingFilter(parse_query(text))
                     for text in dissemination_queries()}
    documents = {
        "book-catalog": book_catalog(40, seed=17),
        "auction-site": auction_site(15, seed=23),
        "nested-report": nested_sections(6, breadth=2, seed=29),
    }

    print(f"{len(subscriptions)} subscriptions, {len(documents)} incoming documents\n")
    total_bits = 0
    dom_bits = 0
    for doc_name, document in documents.items():
        events = document.events()
        matched = []
        for text, streaming_filter in subscriptions.items():
            if streaming_filter.run(events):
                matched.append(text)
            total_bits += streaming_filter.stats.peak_memory_bits
        # what buffering the document would have cost instead
        dom = NaiveDOMFilter(parse_query("//never-matches"))
        dom.run(events)
        dom_bits += dom.memory_report().total_bits

        print(f"document {doc_name!r} ({document.node_count()} elements) matched:")
        for text in matched:
            print(f"    {text}")
        if not matched:
            print("    (no subscriptions)")
        print()

    print(f"total streaming-filter memory across all runs: {total_bits} bits")
    print(f"memory to buffer each document once (DOM):     {dom_bits} bits")
    print(f"buffering would cost {dom_bits / max(total_bits, 1):.1f}x more")


if __name__ == "__main__":
    main()
