"""Build and verify the paper's three lower-bound document families.

For each bound the script constructs the adversarial documents, verifies the
combinatorial property the proof needs (using the reference evaluator as ground truth),
and then runs the streaming filter over the same inputs to show that its state at the
stream cut indeed meets the bound.

Run with:  python examples/lower_bound_adversary.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import parse_query, query_frontier_size
from repro.lowerbounds import (
    build_frontier_family,
    build_simple_depth_family,
    build_simple_recursion_family,
    measure_filter_cut_state,
    verify_depth_family,
    verify_frontier_family,
    verify_recursion_family,
)
from repro.xmlstream import compact_stream


def frontier_bound() -> None:
    print("=" * 72)
    print("1. Query frontier size (Theorem 4.2 / 7.1)")
    query = parse_query("/a[c[.//e and f] and b > 5]")
    family = build_frontier_family(query)
    print(f"   query: {query.to_xpath()}   FS(Q) = {query_frontier_size(query)}")
    print(f"   fooling set size: {len(family.pairs)} (= 2^FS)")
    example = family.pairs[3]
    print(f"   example pair {example.label}:")
    print(f"     alpha = {compact_stream(example.alpha)}")
    print(f"     beta  = {compact_stream(example.beta)}")
    check = verify_frontier_family(family)
    print(f"   fooling-set property verified: {check.valid}")
    measurement = measure_filter_cut_state(query, family.pairs, [True] * len(family.pairs))
    print(f"   filter state at the cut: {measurement.max_frontier_tuples} tuples, "
          f"{measurement.max_state_bits} bits  (lower bound: {family.expected_bound_bits} bits)")


def recursion_bound() -> None:
    print("=" * 72)
    print("2. Document recursion depth (Theorem 4.5 / 7.4)")
    r = 6
    family = build_simple_recursion_family(r, max_instances=32)
    print(f"   query: {family.query.to_xpath()}   r = {r}")
    instance = family.instances[5]
    print(f"   DISJ instance s={instance.s} t={instance.t} "
          f"(intersecting: {instance.intersecting})")
    print(f"     alpha = {compact_stream(instance.alpha)}")
    print(f"     beta  = {compact_stream(instance.beta)}")
    check = verify_recursion_family(family)
    print(f"   match <=> intersect verified: {check.valid}")
    measurement = measure_filter_cut_state(
        family.query, family.instances, [i.intersecting for i in family.instances]
    )
    print(f"   filter state at the cut: {measurement.max_frontier_tuples} tuples "
          f"(lower bound: Omega(r) = {family.expected_bound_bits} bits)")


def depth_bound() -> None:
    print("=" * 72)
    print("3. Document depth (Theorem 4.6 / 7.14)")
    family = build_simple_depth_family(32)
    print(f"   query: {family.query.to_xpath()}   documents of depth up to 32")
    check = verify_depth_family(family)
    print(f"   fooling-set property verified: {check.valid}")
    from repro import bool_eval

    instance = family.instances[2]
    print(f"   D_2 = {compact_stream(list(instance.alpha) + list(instance.beta) + list(instance.gamma))}")
    crossed = family.cross_document(family.instances[5], family.instances[2])
    print(f"   D_5,2 (crossing) = {crossed.compact()}   -> matches: "
          f"{bool_eval(family.query, crossed)}")
    print(f"   certified bound: ~{family.expected_bound_bits:.1f} bits (log d / 2)")


def main() -> None:
    frontier_bound()
    recursion_bound()
    depth_bound()


if __name__ == "__main__":
    main()
