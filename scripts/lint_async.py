#!/usr/bin/env python
"""CI gate for the repo's async-discipline linter (``repro.analysis.astlint``).

Checks that every ``asyncio.Queue`` is bounded (ASY101), task cancellation is
never swallowed (ASY102), coroutines make no blocking calls (ASY103), and
every spawned task is retained (ASY104).  Deliberate violations carry a
``# lint-async: allow[CODE]`` waiver comment.

Usage::

    python scripts/lint_async.py [PATH ...]

Paths default to ``src/repro``; directories are walked recursively.  Exit
code 1 when any finding is reported, 0 on a clean pass.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.astlint import lint_paths  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default src/repro)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the clean-pass summary line")
    args = parser.parse_args(argv)

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"lint_async: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"lint_async: clean ({', '.join(args.paths)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
