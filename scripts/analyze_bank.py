#!/usr/bin/env python
"""Static-analysis CLI over a subscription bank: cost facts + subsumption.

Loads a subscription workload — either XPath expressions from a file
(``--queries``, one per line, ``#`` comments allowed) or the generated
shared-prefix workload (``--count``) — registers it in a
:class:`~repro.core.compile.CompiledFilterBank`, and emits the
:meth:`~repro.core.compile.CompiledFilterBank.analyze` report as JSON:

* per-plan static cost facts: ``FS(Q)`` (paper Definition 4.1), recursion and
  depth sensitivity, fast-path eligibility, and the predicted Theorem 8.8
  memory bound at the stated ``--max-depth``/``--max-text`` assumptions;
* trie-sharing aggregates (shared trie nodes vs. the unshared step count);
* subsumption findings: duplicate registrations, equivalent plans, and
  properly subsumed subscriptions (container matches a superset of documents).

``--self-check`` is the CI mode: it builds a 1000-subscription shared-prefix
workload, injects one exact duplicate and one strictly-more-general container
query, and asserts the report finds them (and covers every subscription with
cost facts).  Exit code 1 on any self-check failure.

Usage::

    python scripts/analyze_bank.py [--count N | --queries FILE]
        [--max-depth D] [--max-text B] [--pair-limit N] [--no-subsumption]
        [--output PATH] [--indent N] [--summary-only] [--self-check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.compile import CompiledFilterBank  # noqa: E402
from repro.workloads.queries import shared_prefix_subscriptions  # noqa: E402
from repro.xpath.parser import parse_query  # noqa: E402


def load_workload(args: argparse.Namespace) -> list:
    """The named (name, xpath_text) subscription list to analyze."""
    if args.queries:
        named = []
        with open(args.queries, encoding="utf-8") as handle:
            for number, line in enumerate(handle, 1):
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                named.append((f"line{number}", text))
        return named
    texts = shared_prefix_subscriptions(
        args.count,
        suffix_depth=args.suffix_depth,
        descendant_fraction=args.descendant_fraction,
        seed=args.seed,
    )
    return [(f"q{index:04d}", text) for index, text in enumerate(texts)]


def inject_redundancy(named: list) -> dict:
    """Append one exact duplicate and one strictly-more-general container of
    the first subscription; returns the injected names for verification."""
    base_name, base_text = named[0]
    duplicate_name = "injected_duplicate"
    named.append((duplicate_name, base_text))
    # generalize the last child step to the descendant axis: the container
    # matches everywhere the original does (and on deeper documents too)
    head, _slash, tail = base_text.rpartition("/")
    container_text = f"{head}//{tail}"
    container_name = "injected_container"
    named.append((container_name, container_text))
    return {
        "base": base_name,
        "duplicate": duplicate_name,
        "container": container_name,
        "container_query": container_text,
    }


def build_report(args: argparse.Namespace, named: list):
    bank = CompiledFilterBank()
    for name, text in named:
        bank.register(name, parse_query(text))
    return bank.analyze(
        max_depth=args.max_depth,
        max_text_chars=args.max_text,
        subsumption=not args.no_subsumption,
        pair_limit=args.pair_limit,
    )


def self_check(analysis, injected: dict) -> list:
    """Assertions the CI gate runs over the self-generated workload; returns
    the list of failure messages (empty = pass)."""
    failures = []
    summary = analysis.summary()
    if analysis.subscription_count < 1000:
        failures.append(
            f"expected a 1000+ subscription workload, got "
            f"{analysis.subscription_count}")
    uncovered = [name for name, canonical in analysis.subscriptions.items()
                 if canonical not in analysis.plans]
    if uncovered:
        failures.append(f"subscriptions without cost facts: {uncovered[:5]}")
    bad_fs = [name for name in analysis.subscriptions
              if analysis.facts_for(name).frontier_size < 1]
    if bad_fs:
        failures.append(f"frontier_size < 1 for: {bad_fs[:5]}")
    if summary["fast_path_subscriptions"] < 1:
        failures.append("no fast-path-eligible subscription found in a "
                        "conjunctive shared-prefix workload")
    if summary["trie_sharing_factor"] is None or summary["trie_sharing_factor"] <= 1.0:
        failures.append(
            f"shared-prefix workload shows no trie sharing "
            f"(factor={summary['trie_sharing_factor']})")
    findings = {(f.kind, f.container, f.contained)
                for f in analysis.subsumptions}
    if not any(kind == "duplicate" and contained == injected["duplicate"]
               for kind, _container, contained in findings):
        failures.append("injected exact duplicate was not reported")
    if not any(kind in ("subsumed", "equivalent")
               and injected["container"] in (container, contained)
               for kind, container, contained in findings):
        failures.append(
            f"injected container {injected['container_query']!r} was not "
            "reported as subsuming its original")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--queries", metavar="FILE",
                        help="file of XPath subscriptions, one per line")
    source.add_argument("--count", type=int, default=1000,
                        help="generated shared-prefix workload size "
                             "(default 1000)")
    parser.add_argument("--suffix-depth", type=int, default=3)
    parser.add_argument("--descendant-fraction", type=float, default=0.1,
                        help="fraction of generated steps on the // axis")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-depth", type=int, default=32,
                        help="document depth the memory bound is stated at")
    parser.add_argument("--max-text", type=int, default=256,
                        help="text-node size the memory bound is stated at")
    parser.add_argument("--pair-limit", type=int, default=None,
                        help="cap on pairwise subsumption checks "
                             "(default exhaustive)")
    parser.add_argument("--no-subsumption", action="store_true",
                        help="skip the pairwise subsumption sweep")
    parser.add_argument("--inject-duplicates", action="store_true",
                        help="append an exact duplicate + a more-general "
                             "container of the first subscription")
    parser.add_argument("--self-check", action="store_true",
                        help="CI mode: generated workload + injected "
                             "redundancy, assert the report finds it")
    parser.add_argument("--output", metavar="PATH",
                        help="write the JSON report here instead of stdout")
    parser.add_argument("--indent", type=int, default=2)
    parser.add_argument("--summary-only", action="store_true",
                        help="emit only the summary block of the report")
    args = parser.parse_args(argv)

    named = load_workload(args)
    if not named:
        print("analyze_bank: empty workload", file=sys.stderr)
        return 1
    injected = None
    if args.self_check or args.inject_duplicates:
        injected = inject_redundancy(named)

    analysis = build_report(args, named)
    report = analysis.summary() if args.summary_only else analysis.to_dict()
    text = json.dumps(report, indent=args.indent, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)

    if args.self_check:
        failures = self_check(analysis, injected)
        for failure in failures:
            print(f"analyze_bank: SELF-CHECK FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        summary = analysis.summary()
        print(
            "analyze_bank: self-check OK — "
            f"{analysis.subscription_count} subscriptions, "
            f"{analysis.distinct_plan_count} distinct plans, "
            f"sharing factor {summary['trie_sharing_factor']:.2f}, "
            f"findings {summary['subsumption_findings']}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
