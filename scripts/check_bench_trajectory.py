#!/usr/bin/env python
"""CI gate over the BENCH_filterbank.json performance trajectory.

The trajectory file is append-only: every benchmark run adds a timestamped entry,
so the repository's committed file records the performance story across PRs.  Until
now CI uploaded that file but never *checked* it — a PR that quietly regressed the
compiled engine below the floors earlier PRs asserted would merge silently, as long
as the (smoke-sized, assertion-skipping) CI benchmarks still ran.  This script is
the missing check: it parses the trajectory and fails (exit code 1) if the most
recent *full-size* run of any benchmark violates the speedup floors those PRs
established:

* ``filterbank_throughput`` — compiled >= 3x indexed and the match-only fast path
  >= 5x compiled (shared-prefix workload, largest subscription count in the run);
* ``filterbank_churn``      — incremental trie splicing >= 10x rebuild-per-op (at
  the largest warm bank size);
* ``service_throughput``    — batched service >= 2x the single-document-call
  regime (at the largest document count);
* ``wire_throughput``       — pipelined wire client >= 2x request-response over
  localhost TCP (at the largest document count);
* ``memory_model``          — the static analyzer's predicted Theorem 8.8 memory
  bound >= the measured per-subscription high-water bits (ratio >= 1.0, i.e. the
  bound stays sound on the shared-prefix workload);
* ``wal_throughput``        — the durability tax: publish throughput with the
  write-ahead log on (``fsync="interval"``) >= 0.5x the in-memory throughput
  (at the largest document count);
* ``memory_ceiling``        — a memory ceiling planned from static facts
  (standing bits at registration + the summed Theorem 8.8 per-subscription
  quote) >= the live ``modeled_bits`` sample the resource governor reads
  (ratio >= 1.0 at the largest subscription count, i.e. a statically sized
  governor budget is not busted in steady state).

Smoke runs (``"smoke": true``) are informational: their sizes are deliberately too
small for the ratios to be meaningful, so they are reported but never gated on —
the gate reads the latest non-smoke entry per benchmark, which PRs append by
running the full benchmarks and committing the updated trajectory.  For the same
reason smoke entries have no business being *committed*: a committed trajectory
polluted with smoke runs stops being a trustworthy full-size record, so gate mode
fails when any committed run is a smoke run — run ``--prune-smoke`` to rewrite
the file without them (CI orders its steps so that the gate checks the committed
file *before* the smoke benchmarks append to the working copy).  Division of
labor with the rest of CI: the *live* performance of the PR under test is asserted
by the full-size benchmarks themselves (they run, floors asserted in-process, in
the tier-1 ``test`` job), while this gate enforces the committed *ledger* — a PR
cannot merge a trajectory whose own full-size entries violate the floors, and the
file's history stays a trustworthy record.  A benchmark
with no full-size entry at all is a hard failure unless ``--allow-missing``
downgrades it to a warning.

Usage::

    python scripts/check_bench_trajectory.py [BENCH_filterbank.json]
        [--allow-missing] [--allow-smoke] [--prune-smoke] [--last N]
        [--github-summary [PATH]] [--summary-only]

``--github-summary`` also writes a Markdown table of the most recent run entries
(default: the file named by ``$GITHUB_STEP_SUMMARY``), which is how the CI smoke
step surfaces what it appended; ``--summary-only`` emits that table and always
exits 0, so the reporting step can never mask the dedicated gate step.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

#: (benchmark name, floor key in this script's report) -> required minimum ratio
FLOORS = {
    ("filterbank_throughput", "compiled_vs_indexed"): 3.0,
    ("filterbank_throughput", "fast_vs_compiled"): 5.0,
    ("filterbank_churn", "incremental_vs_rebuild"): 10.0,
    ("service_throughput", "batched_vs_serial"): 2.0,
    ("wire_throughput", "pipelined_vs_request_response"): 2.0,
    ("memory_model", "bound_over_measured"): 1.0,
    ("wal_throughput", "wal_overhead"): 0.5,
    ("memory_ceiling", "ceiling_over_modeled"): 1.0,
}

#: benchmarks the gate expects to find a full-size run for
GATED_BENCHMARKS = ("filterbank_throughput", "filterbank_churn",
                    "service_throughput", "wire_throughput", "memory_model",
                    "wal_throughput", "memory_ceiling")


class TrajectoryError(ValueError):
    """Raised for files the gate cannot interpret at all."""


def load_trajectory(path: str) -> dict:
    """Load and structurally validate a schema-2 trajectory file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise TrajectoryError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise TrajectoryError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("runs"), list):
        raise TrajectoryError(f"{path} is not a schema-2 trajectory "
                              "({'schema': 2, 'runs': [...]})")
    if data.get("schema") != 2:
        raise TrajectoryError(f"unsupported trajectory schema: "
                              f"{data.get('schema')!r}")
    return data


def latest_full_run(data: dict, benchmark: str) -> Optional[dict]:
    """The most recently appended non-smoke run of one benchmark, if any."""
    for run in reversed(data["runs"]):
        if run.get("benchmark") == benchmark and not run.get("smoke"):
            return run
    return None


def _throughput_ratios(run: dict) -> dict:
    """The gated ratios of one filterbank_throughput run (prefix workload,
    largest subscription count)."""
    prefix = [entry for entry in run.get("results", [])
              if entry.get("workload") == "prefix"]
    if not prefix:
        return {}
    top = max(entry["subscriptions"] for entry in prefix)
    ratios = {}
    for entry in prefix:
        if entry["subscriptions"] != top:
            continue
        if entry.get("engine") == "compiled" and "speedup_vs_indexed" in entry:
            ratios["compiled_vs_indexed"] = entry["speedup_vs_indexed"]
        if entry.get("engine") == "fast" and "speedup_vs_compiled" in entry:
            ratios["fast_vs_compiled"] = entry["speedup_vs_compiled"]
    return ratios


def _churn_ratios(run: dict) -> dict:
    incremental = [entry for entry in run.get("results", [])
                   if entry.get("variant") == "incremental"
                   and "speedup_vs_rebuild" in entry]
    if not incremental:
        return {}
    top = max(incremental, key=lambda entry: entry["warm_subscriptions"])
    return {"incremental_vs_rebuild": top["speedup_vs_rebuild"]}


def _service_ratios(run: dict) -> dict:
    batched = [entry for entry in run.get("results", [])
               if entry.get("mode") == "batched" and "speedup_vs_serial" in entry]
    if not batched:
        return {}
    top = max(batched, key=lambda entry: entry["documents"])
    return {"batched_vs_serial": top["speedup_vs_serial"]}


def _wire_ratios(run: dict) -> dict:
    pipelined = [entry for entry in run.get("results", [])
                 if entry.get("mode") == "pipelined"
                 and "speedup_vs_request_response" in entry]
    if not pipelined:
        return {}
    top = max(pipelined, key=lambda entry: entry["documents"])
    return {"pipelined_vs_request_response":
            top["speedup_vs_request_response"]}


def _memory_model_ratios(run: dict) -> dict:
    """The static-analyzer soundness ratio of one memory_model run: the
    predicted Theorem 8.8 bound divided by the measured per-subscription
    high-water bits, minimized over subscriptions — a value below 1.0 means
    the analyzer under-predicted real memory (the bound is unsound)."""
    entries = [entry for entry in run.get("results", [])
               if "bound_over_measured" in entry]
    if not entries:
        return {}
    top = max(entries, key=lambda entry: entry.get("subscriptions", 0))
    return {"bound_over_measured": top["bound_over_measured"]}


def _wal_ratios(run: dict) -> dict:
    """The durability-tax ratio of one wal_throughput run: WAL-on
    (``fsync="interval"``) throughput divided by in-memory throughput, at the
    largest document count — below 0.5 the write-ahead log is eating more
    than half the service's ingest capacity."""
    wal = [entry for entry in run.get("results", [])
           if entry.get("mode") == "wal_interval"
           and "throughput_vs_memory" in entry]
    if not wal:
        return {}
    top = max(wal, key=lambda entry: entry["documents"])
    return {"wal_overhead": top["throughput_vs_memory"]}


def _memory_ceiling_ratios(run: dict) -> dict:
    """The capacity-planning soundness ratio of one memory_ceiling run: the
    statically planned ceiling (standing bits + summed per-subscription
    quote) divided by the live ``modeled_bits`` the governor samples, at the
    largest subscription count — below 1.0 a budget sized from the cost
    model would sit at HARD in steady state."""
    entries = [entry for entry in run.get("results", [])
               if "ceiling_over_modeled" in entry]
    if not entries:
        return {}
    top = max(entries, key=lambda entry: entry.get("subscriptions", 0))
    return {"ceiling_over_modeled": top["ceiling_over_modeled"]}


_RATIO_EXTRACTORS = {
    "filterbank_throughput": _throughput_ratios,
    "filterbank_churn": _churn_ratios,
    "service_throughput": _service_ratios,
    "wire_throughput": _wire_ratios,
    "memory_model": _memory_model_ratios,
    "wal_throughput": _wal_ratios,
    "memory_ceiling": _memory_ceiling_ratios,
}


def smoke_run_indices(data: dict) -> List[int]:
    """Positions of smoke entries in the trajectory (should be empty when
    committed; see the module docstring)."""
    return [index for index, run in enumerate(data["runs"])
            if run.get("smoke")]


def prune_smoke(data: dict) -> Tuple[dict, int]:
    """A copy of the trajectory without its smoke runs, plus the removed count."""
    kept = [run for run in data["runs"] if not run.get("smoke")]
    removed = len(data["runs"]) - len(kept)
    return {**data, "runs": kept}, removed


def check_trajectory(data: dict, *, require_full: bool = True
                     ) -> Tuple[List[tuple], List[str]]:
    """Evaluate every floor against the latest full-size runs.

    Returns ``(rows, violations)``: one row per floor —
    ``(benchmark, floor_key, required, observed, timestamp, ok)`` with ``observed``
    ``None`` when no full-size run (or no ratio in it) exists — and a list of
    human-readable violation messages (empty means the gate passes).
    """
    rows: List[tuple] = []
    violations: List[str] = []
    for benchmark in GATED_BENCHMARKS:
        run = latest_full_run(data, benchmark)
        ratios = _RATIO_EXTRACTORS[benchmark](run) if run is not None else {}
        timestamp = run.get("timestamp") if run is not None else None
        for (floor_benchmark, key), required in FLOORS.items():
            if floor_benchmark != benchmark:
                continue
            observed = ratios.get(key)
            ok = observed is not None and observed >= required
            rows.append((benchmark, key, required, observed, timestamp, ok))
            if observed is None:
                message = (f"{benchmark}: no full-size run with a {key} ratio "
                           f"in the trajectory")
                if require_full:
                    violations.append(message)
                else:
                    print(f"WARNING: {message}", file=sys.stderr)
            elif not ok:
                violations.append(
                    f"{benchmark}: {key} = {observed}x is below the required "
                    f"floor of {required}x (run from {timestamp})")
    return rows, violations


# --------------------------------------------------------------------- reporting
def format_report(rows: List[tuple]) -> str:
    width = max([len("floor")] + [len(row[1]) for row in rows])
    lines = [f"{'benchmark':<24} {'floor':<{width}} {'required':>9} "
             f"{'observed':>9}  {'status'}"]
    for benchmark, key, required, observed, _timestamp, ok in rows:
        shown = "-" if observed is None else f"{observed}x"
        # missing floors print as 'missing' either way; whether that fails the
        # gate is the caller's --allow-missing decision, reported via exit code
        status = "ok" if ok else ("missing" if observed is None else "FAIL")
        lines.append(f"{benchmark:<24} {key:<{width}} {required:>8}x "
                     f"{shown:>9}  {status}")
    return "\n".join(lines)


def format_markdown_summary(data: dict, *, last: int = 8) -> str:
    """A Markdown table of the most recent run entries (for the CI step summary)."""
    lines = [
        "### Benchmark trajectory — most recent runs",
        "",
        "| benchmark | timestamp | smoke | key ratios |",
        "|---|---|---|---|",
    ]
    for run in data["runs"][-last:]:
        benchmark = run.get("benchmark", "?")
        extractor = _RATIO_EXTRACTORS.get(benchmark)
        ratios = extractor(run) if extractor else {}
        shown = ", ".join(f"{key} {value}x" for key, value in ratios.items()) \
            or "-"
        lines.append(f"| {benchmark} | {run.get('timestamp') or '-'} "
                     f"| {'yes' if run.get('smoke') else 'no'} | {shown} |")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when the benchmark trajectory violates the "
                    "asserted speedup floors.")
    parser.add_argument("path", nargs="?", default="BENCH_filterbank.json",
                        help="trajectory file (default: BENCH_filterbank.json)")
    parser.add_argument("--allow-missing", dest="require_full",
                        action="store_false", default=True,
                        help="only warn (instead of failing) when a gated "
                             "benchmark has no full-size run")
    parser.add_argument("--allow-smoke", dest="forbid_smoke",
                        action="store_false", default=True,
                        help="do not fail the gate over smoke runs present in "
                             "the file (for gating a freshly appended working "
                             "copy rather than the committed trajectory)")
    parser.add_argument("--prune-smoke", action="store_true",
                        help="rewrite the trajectory file without its smoke "
                             "runs and exit (no gating)")
    parser.add_argument("--last", type=int, default=8,
                        help="run entries to include in the Markdown summary")
    parser.add_argument("--github-summary", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="append a Markdown run-entry table to PATH "
                             "(default: $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--summary-only", action="store_true",
                        help="emit the Markdown summary and exit 0 without "
                             "gating (the gate runs as its own CI step)")
    args = parser.parse_args(argv)

    try:
        data = load_trajectory(args.path)
    except TrajectoryError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1

    if args.prune_smoke:
        pruned, removed = prune_smoke(data)
        with open(args.path, "w", encoding="utf-8") as handle:
            json.dump(pruned, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"pruned {removed} smoke run(s); "
              f"{len(pruned['runs'])} runs remain in {args.path}")
        return 0

    if args.summary_only:
        args.github_summary = "" if args.github_summary is None \
            else args.github_summary
    else:
        rows, violations = check_trajectory(data,
                                            require_full=args.require_full)
        if args.forbid_smoke:
            smoke = smoke_run_indices(data)
            if smoke:
                violations.append(
                    f"{len(smoke)} smoke run(s) committed in the trajectory "
                    f"(run indices {smoke}); smoke entries are CI ephemera — "
                    f"rewrite with --prune-smoke before committing")
        print(format_report(rows))

    if args.github_summary is not None:
        summary_path = args.github_summary or os.environ.get(
            "GITHUB_STEP_SUMMARY", "")
        summary = format_markdown_summary(data, last=args.last)
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(summary)
        else:  # no summary file available (e.g. a local run): print it instead
            print()
            print(summary)

    if args.summary_only:
        return 0
    if violations:
        print()
        for message in violations:
            print(f"REGRESSION: {message}", file=sys.stderr)
        return 1
    checked = sum(1 for row in rows if row[3] is not None)
    print(f"\ntrajectory ok: {len(data['runs'])} runs, "
          f"{checked}/{len(FLOORS)} floors checked, none violated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
