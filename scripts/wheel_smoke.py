#!/usr/bin/env python
"""Packaging smoke test: exercise an *installed* ``repro`` end to end.

CI's packaging job builds the wheel, installs it into a clean venv (no
checkout on ``sys.path``, no PYTHONPATH) and runs this script with the venv's
interpreter — so a subpackage missing from the wheel, broken package metadata,
or an import that only works from the source layout fails CI instead of a
user.  The script lives in ``scripts/`` precisely because that directory does
NOT contain the package: ``sys.path[0]`` points here, so ``import repro`` can
only resolve against the installed distribution (a guard below enforces it).
"""

import asyncio
import os
import sys


def main() -> None:
    import repro
    from repro.core.compile import CompiledFilterBank
    from repro.net import WireClient, WireServer
    from repro.xpath.parser import parse_query

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    repo_src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if os.path.dirname(package_dir) == repo_src:
        raise SystemExit("repro resolved to the source checkout, not the "
                         "installed wheel; run me with a clean interpreter")

    bank = CompiledFilterBank()
    bank.register("q", parse_query("/catalog/book[price < 20]"))
    result = bank.filter_text(
        "<catalog><book><price>12</price></book></catalog>")
    assert result.matched == ["q"], result.matched

    async def wire() -> None:
        async with WireServer() as server:
            host, port = server.address
            client = await WireClient.connect(host, port, client_id="smoke")
            await client.subscribe("cheap", "/catalog/book[price < 20]")
            publish = await client.publish(
                "<catalog><book><price>12</price></book></catalog>")
            assert publish.matched == ("smoke:cheap",), publish
            note = await client.next_match(timeout=5)
            assert note.matched == ("cheap",), note
            await client.close()

    asyncio.run(wire())
    print(f"wheel smoke-run ok (repro {getattr(repro, '__version__', '?')} "
          f"from {package_dir})")


if __name__ == "__main__":
    sys.exit(main())
