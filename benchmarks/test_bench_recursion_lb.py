"""Experiments E04/E09: the recursion-depth lower bound (Theorems 4.5 / 7.4).

The harness builds set-disjointness document families for increasing recursion depth r,
verifies the match <=> intersect correspondence, and measures the filter's state at the
Alice/Bob cut.  The regenerated series is

    r, certified lower bound (r bits), filter tuples at the cut, filter bits at the cut

The paper's claim to check: the state grows linearly with r (Omega(r)), and the filter's
usage is O(|Q| * r) — the same shape, a small constant factor above the bound.
"""

from __future__ import annotations

import pytest

from repro.lowerbounds import (
    build_recursion_family,
    build_simple_recursion_family,
    measure_filter_cut_state,
    verify_recursion_family,
)
from repro.xpath import parse_query

from .conftest import print_table

_simple_results = []
_general_results = []


@pytest.mark.parametrize("r", [2, 4, 8, 16, 32])
def test_simple_recursion_bound(benchmark, r):
    """Theorem 4.5 family for //a[b and c]."""
    family = build_simple_recursion_family(r, max_instances=16, seed=5)
    check = verify_recursion_family(family, check_depth=False)
    assert check.valid, check.violations[:3]
    query = family.query
    expected = [i.intersecting for i in family.instances]

    measurement = benchmark(
        lambda: measure_filter_cut_state(query, family.instances, expected)
    )
    assert measurement.decisions_correct
    assert measurement.max_frontier_tuples >= r
    benchmark.extra_info.update({
        "r": r,
        "lower_bound_bits": family.expected_bound_bits,
        "filter_cut_tuples": measurement.max_frontier_tuples,
        "filter_cut_bits": measurement.max_state_bits,
    })
    _simple_results.append((r, family.expected_bound_bits,
                            measurement.max_frontier_tuples,
                            measurement.max_state_bits))


@pytest.mark.parametrize("r", [2, 4, 8])
def test_general_recursion_bound(benchmark, r):
    """Theorem 7.4 family for the paper's worked example //d[f and a[b and c]]."""
    query = parse_query("//d[f and a[b and c]]")
    family = build_recursion_family(query, r, max_instances=12, seed=7)
    check = verify_recursion_family(family, check_depth=False)
    assert check.valid, check.violations[:3]
    expected = [i.intersecting for i in family.instances]

    measurement = benchmark(
        lambda: measure_filter_cut_state(query, family.instances, expected)
    )
    assert measurement.decisions_correct
    assert measurement.max_frontier_tuples >= r
    benchmark.extra_info.update({
        "r": r,
        "lower_bound_bits": family.expected_bound_bits,
        "filter_cut_tuples": measurement.max_frontier_tuples,
        "filter_cut_bits": measurement.max_state_bits,
    })
    _general_results.append((r, family.expected_bound_bits,
                             measurement.max_frontier_tuples,
                             measurement.max_state_bits))


def teardown_module(module):  # noqa: D103
    if _simple_results:
        print_table(
            "E04 - recursion-depth bound, //a[b and c] (Theorem 4.5)",
            ["r", "LB bits", "filter tuples", "filter bits"],
            sorted(_simple_results),
        )
    if _general_results:
        print_table(
            "E09 - recursion-depth bound, //d[f and a[b and c]] (Theorem 7.4)",
            ["r", "LB bits", "filter tuples", "filter bits"],
            sorted(_general_results),
        )
