"""Experiment E12 (time): the filter's running time is near-linear in the document size.

Theorem 8.8 gives a running time of O~(|D| * |Q| * r).  The sweep filters book catalogs
of growing size with a fixed dissemination query and reports events/second; the claim to
check is that time per event stays roughly constant as |D| grows (linear total time).
"""

from __future__ import annotations

import pytest

from repro.core import StreamingFilter
from repro.workloads import book_catalog
from repro.xpath import parse_query

from .conftest import print_table

_rows = []


@pytest.mark.parametrize("books", [10, 50, 250, 1000])
def test_time_vs_document_size(benchmark, books):
    query = parse_query('/catalog/book[price < 20 and genre = "fiction"]')
    document = book_catalog(books, seed=13)
    events = document.events()
    streaming_filter = StreamingFilter(query)

    result = benchmark(lambda: streaming_filter.run(events))
    assert isinstance(result, bool)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info.update({
        "books": books,
        "events": len(events),
        "microseconds_per_event": round(mean / len(events) * 1e6, 3),
    })
    _rows.append((books, len(events), round(mean * 1e3, 3),
                  round(mean / len(events) * 1e6, 3)))


@pytest.mark.parametrize("query_size", [2, 8, 24])
def test_time_vs_query_size(benchmark, query_size):
    from repro.workloads import frontier_sweep_queries, matching_document_for_frontier_query

    query = frontier_sweep_queries([query_size])[query_size]
    names = [f"c{i}" for i in range(query_size)]
    document = matching_document_for_frontier_query(names)
    events = document.events()
    streaming_filter = StreamingFilter(query)

    benchmark(lambda: streaming_filter.run(events))
    benchmark.extra_info.update({"query_size": query_size})


def teardown_module(module):  # noqa: D103
    if _rows:
        print_table(
            "E12e - filter time vs. document size (expected: ~constant us/event)",
            ["books", "events", "mean ms/run", "us/event"],
            sorted(_rows),
        )
