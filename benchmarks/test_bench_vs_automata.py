"""Experiment E14: the paper's motivating comparison against automata and buffering.

Section 1.2 / Section 2: automata-based streaming evaluators pay for transition tables
that are exponential in the query in the worst case, and naive evaluation pays for
buffering the document; the paper's algorithm avoids both.  Two regenerated series:

* transition-table size (eager DFA) vs. filter memory as the number of //-alternations
  in a linear query grows — the blow-up curve;
* total memory of naive DOM buffering vs. the filter on growing documents.
"""

from __future__ import annotations

import pytest

from repro.baselines import EagerDFAFilter, LazyDFAFilter, NaiveDOMFilter, PathNFAFilter
from repro.core import filter_with_statistics
from repro.semantics import bool_eval
from repro.workloads import alternating_path_query, book_catalog, nested_sections
from repro.xpath import parse_query

from .conftest import print_table

_blowup_rows = []
_buffering_rows = []


@pytest.mark.parametrize("steps", [4, 8, 12, 16])
def test_automata_blowup_vs_filter(benchmark, steps):
    query = alternating_path_query(steps)
    document = nested_sections(5)

    def run_all():
        eager = EagerDFAFilter(query)
        lazy = LazyDFAFilter(query)
        nfa = PathNFAFilter(query)
        answers = {
            "eager": eager.run_document(document),
            "lazy": lazy.run_document(document),
            "nfa": nfa.run_document(document),
        }
        return eager, lazy, nfa, answers

    eager, lazy, nfa, answers = benchmark(run_all)
    reference = bool_eval(query, document)
    assert all(answer == reference for answer in answers.values())
    decision, stats = filter_with_statistics(query, document)
    assert decision == reference

    eager_bits = eager.memory_report().total_bits
    lazy_bits = lazy.memory_report().total_bits
    nfa_bits = nfa.memory_report().total_bits
    benchmark.extra_info.update({
        "query_steps": steps,
        "eager_dfa_states": eager.dfa.state_count,
        "eager_dfa_bits": eager_bits,
        "lazy_dfa_bits": lazy_bits,
        "nfa_bits": nfa_bits,
        "filter_bits": stats.peak_memory_bits,
    })
    _blowup_rows.append((steps, eager.dfa.state_count, eager_bits, lazy_bits,
                         nfa_bits, stats.peak_memory_bits))


@pytest.mark.parametrize("books", [20, 100, 500])
def test_buffering_vs_filter(benchmark, books):
    query = parse_query("/catalog/book[price < 20]")
    document = book_catalog(books, seed=11)

    def run_dom():
        baseline = NaiveDOMFilter(query)
        baseline.run_document(document)
        return baseline

    baseline = benchmark(run_dom)
    dom_bits = baseline.memory_report().total_bits
    decision, stats = filter_with_statistics(query, document)
    assert decision == bool_eval(query, document)
    benchmark.extra_info.update({
        "books": books,
        "dom_bits": dom_bits,
        "filter_bits": stats.peak_memory_bits,
        "ratio": round(dom_bits / max(stats.peak_memory_bits, 1), 1),
    })
    _buffering_rows.append((books, dom_bits, stats.peak_memory_bits,
                            round(dom_bits / max(stats.peak_memory_bits, 1), 1)))


def teardown_module(module):  # noqa: D103
    if _blowup_rows:
        print_table(
            "E14a - automata transition tables vs. the filter (//-alternating queries)",
            ["steps", "DFA states", "eager DFA bits", "lazy DFA bits", "NFA bits",
             "filter bits"],
            sorted(_blowup_rows),
        )
    if _buffering_rows:
        print_table(
            "E14b - DOM buffering vs. the filter (growing documents)",
            ["books", "DOM bits", "filter bits", "ratio"],
            sorted(_buffering_rows),
        )
