"""Ablation experiments for the design choices DESIGN.md calls out.

* **Child-axis frontier removal** (lines 10-11 of the paper's ``startElement``): the
  optimization is what makes the frontier track FS(Q) rather than the query's depth.
  The ablation runs the filter with and without it on deep nested-predicate queries.

* **Lazy vs. eager determinization** for the automata baseline: lazy DFAs only pay for
  the subsets a document actually visits — the trade-off Green et al. exploit — while
  the eager table shows the worst case.
"""

from __future__ import annotations

import pytest

from repro.baselines import EagerDFAFilter, LazyDFAFilter
from repro.core import StreamingFilter
from repro.workloads import alternating_path_query, deep_nested_predicate_query, nested_sections
from repro.xmlstream import XMLDocument, XMLNode

from .conftest import print_table

_removal_rows = []
_dfa_rows = []


def _chain_document(depth: int) -> XMLDocument:
    top = XMLNode.element("d0")
    current = top
    for index in range(1, depth):
        current = current.append_child(XMLNode.element(f"d{index}"))
    return XMLDocument.from_top_element(top)


@pytest.mark.parametrize("depth", [4, 8, 16, 32])
def test_child_axis_removal_ablation(benchmark, depth):
    query = deep_nested_predicate_query(depth)
    document = _chain_document(depth)

    def run_both():
        optimized = StreamingFilter(query)
        unoptimized = StreamingFilter(query, remove_child_axis_records=False)
        return (optimized.run_document(document), optimized.stats,
                unoptimized.run_document(document), unoptimized.stats)

    opt_result, opt_stats, unopt_result, unopt_stats = benchmark(run_both)
    assert opt_result == unopt_result is True
    assert opt_stats.peak_frontier_records <= unopt_stats.peak_frontier_records
    benchmark.extra_info.update({
        "query_depth": depth,
        "peak_tuples_with_removal": opt_stats.peak_frontier_records,
        "peak_tuples_without_removal": unopt_stats.peak_frontier_records,
    })
    _removal_rows.append((depth, opt_stats.peak_frontier_records,
                          unopt_stats.peak_frontier_records))


@pytest.mark.parametrize("steps", [6, 10, 14])
def test_lazy_vs_eager_dfa(benchmark, steps):
    query = alternating_path_query(steps)
    document = nested_sections(5)

    def run_both():
        lazy = LazyDFAFilter(query)
        eager = EagerDFAFilter(query)
        return lazy.run_document(document), lazy, eager.run_document(document), eager

    lazy_result, lazy, eager_result, eager = benchmark(run_both)
    assert lazy_result == eager_result
    assert lazy.dfa.state_count <= eager.dfa.state_count
    benchmark.extra_info.update({
        "steps": steps,
        "lazy_states": lazy.dfa.state_count,
        "eager_states": eager.dfa.state_count,
    })
    _dfa_rows.append((steps, lazy.dfa.state_count, eager.dfa.state_count,
                      lazy.memory_report().total_bits,
                      eager.memory_report().total_bits))


def teardown_module(module):  # noqa: D103
    if _removal_rows:
        print_table(
            "Ablation A1 - child-axis frontier removal (peak tuples, deep predicate chains)",
            ["query depth", "with removal", "without removal"],
            sorted(_removal_rows),
        )
    if _dfa_rows:
        print_table(
            "Ablation A2 - lazy vs. eager determinization",
            ["steps", "lazy states", "eager states", "lazy bits", "eager bits"],
            sorted(_dfa_rows),
        )
