"""Experiment E12 (space): the Theorem 8.8 upper bound, measured.

Theorem 8.8 states the filter uses O(|Q| * r * (log|Q| + log d + log w) + w) bits.  The
sweeps below vary one parameter at a time and record the filter's measured peak memory:

* recursion depth r     (recursive //r[b...] query over nested documents)
* document depth d      (fixed query, growing padding depth)
* text width w          (fixed query, growing leaf string value)
* query size |Q|        (growing conjunction width)

The claim to check is the *shape*: linear in r, w and |Q|; logarithmic in d.
"""

from __future__ import annotations

import pytest

from repro.core import filter_with_statistics, query_frontier_size
from repro.workloads import (
    deep_padded_document,
    descendant_branch_query,
    frontier_sweep_queries,
    long_text_document,
    matching_document_for_frontier_query,
    recursive_branch_document,
)
from repro.xpath import parse_query

from .conftest import print_table

_recursion_rows = []
_depth_rows = []
_width_rows = []
_size_rows = []


@pytest.mark.parametrize("r", [1, 2, 4, 8, 16, 32])
def test_space_vs_recursion_depth(benchmark, r):
    query = descendant_branch_query(3)
    names = [f"b{i}" for i in range(3)]
    document = recursive_branch_document(names, r, match_at=r)

    decision, stats = benchmark(lambda: filter_with_statistics(query, document))
    assert decision
    benchmark.extra_info.update({
        "r": r,
        "peak_tuples": stats.peak_frontier_records,
        "peak_bits": stats.peak_memory_bits,
    })
    _recursion_rows.append((r, stats.peak_frontier_records, stats.peak_memory_bits))


@pytest.mark.parametrize("padding", [1, 8, 64, 512])
def test_space_vs_document_depth(benchmark, padding):
    query = parse_query("/a//b[c]")
    document = deep_padded_document(["b", "c"], padding)

    decision, stats = benchmark(lambda: filter_with_statistics(query, document))
    assert decision
    benchmark.extra_info.update({
        "depth": document.depth(),
        "peak_tuples": stats.peak_frontier_records,
        "peak_bits": stats.peak_memory_bits,
    })
    _depth_rows.append((document.depth(), stats.peak_frontier_records,
                        stats.peak_memory_bits))


@pytest.mark.parametrize("width", [4, 64, 1024, 8192])
def test_space_vs_text_width(benchmark, width):
    query = parse_query("/a[b > 5]")
    document = long_text_document(width)

    decision, stats = benchmark(lambda: filter_with_statistics(query, document))
    assert decision
    benchmark.extra_info.update({
        "text_width": width,
        "peak_buffer_chars": stats.peak_buffer_chars,
        "peak_bits": stats.peak_memory_bits,
    })
    _width_rows.append((width, stats.peak_buffer_chars, stats.peak_memory_bits))


@pytest.mark.parametrize("size", [2, 4, 8, 16, 32])
def test_space_vs_query_size(benchmark, size):
    query = frontier_sweep_queries([size])[size]
    names = [f"c{i}" for i in range(size)]
    document = matching_document_for_frontier_query(names)

    decision, stats = benchmark(lambda: filter_with_statistics(query, document))
    assert decision
    assert stats.peak_frontier_records <= query_frontier_size(query) + 1
    benchmark.extra_info.update({
        "query_size": query.size(),
        "FS(Q)": query_frontier_size(query),
        "peak_tuples": stats.peak_frontier_records,
        "peak_bits": stats.peak_memory_bits,
    })
    _size_rows.append((query.size(), query_frontier_size(query),
                       stats.peak_frontier_records, stats.peak_memory_bits))


def teardown_module(module):  # noqa: D103
    if _recursion_rows:
        print_table("E12a - filter space vs. recursion depth r (expected: linear)",
                    ["r", "peak tuples", "peak bits"], sorted(_recursion_rows))
    if _depth_rows:
        print_table("E12b - filter space vs. document depth d (expected: logarithmic)",
                    ["depth", "peak tuples", "peak bits"], sorted(_depth_rows))
    if _width_rows:
        print_table("E12c - filter space vs. text width w (expected: linear in w)",
                    ["w", "peak buffer chars", "peak bits"], sorted(_width_rows))
    if _size_rows:
        print_table("E12d - filter space vs. query size (expected: ~FS(Q) tuples)",
                    ["|Q|", "FS(Q)", "peak tuples", "peak bits"], sorted(_size_rows))
