"""Static memory model vs. measured high-water marks (the analyzer cross-check).

``repro.analysis.costmodel`` predicts, per compiled plan, a worst-case memory
bound in the paper's Theorem 8.8 accounting: ``predicted_frontier_records``
(the ``FS(Q) + 1`` record bound for closure-free queries, the depth-multiplied
recurrence otherwise) instantiated at an assumed document depth ``D`` and text
size ``B``, priced with the same ``bits_for`` formula the engine's
``observe_bits`` instrumentation charges per event.  That makes the prediction
*falsifiable*: running the instrumented engine over a real document stream
yields per-subscription ``peak_memory_bits`` high-water marks that the static
bound — instantiated at the document's actual depth — must dominate.

This benchmark runs the shared-prefix workload (with descendant-axis steps and
a recursive document, the regime where the bounds are loosest *and* most
load-bearing) and asserts, for every subscription:

* measured ``peak_frontier_records``  <= predicted ``frontier`` records,
* measured ``peak_memory_bits``       <= predicted memory bits,
* measured ``peak_buffer_chars``      <= the assumed ``B`` (else the bound was
  instantiated at the wrong text size and the comparison is vacuous).

The appended ``memory_model`` trajectory entry records
``bound_over_measured`` — the *minimum* ratio of bound to measurement across
subscriptions — and ``scripts/check_bench_trajectory.py`` gates it at >= 1.0:
a PR that makes the analyzer under-predict real memory cannot merge.  Unlike
the throughput benchmarks these assertions are correctness, not performance,
so they run in smoke mode too (smaller sizes only).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.costmodel import analyze_query
from repro.core import CompiledFilterBank
from repro.workloads import shared_prefix_feed, shared_prefix_subscriptions
from repro.xpath import parse_query

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

SUBSCRIPTION_COUNTS = [25] if SMOKE else [100, 1000]
ENTRIES = 10 if SMOKE else 60

#: workload shape: descendant steps + a recursive document stress the
#: depth-sensitive branch of the record bound
BRANCHING = 4
SUFFIX_DEPTH = 3
DESCENDANT_FRACTION = 0.15
RECURSION = 2

#: assumed max text-node size the bound is instantiated at; the benchmark
#: asserts the document never buffers more than this
MAX_TEXT_CHARS = 16

#: (subscriptions,) -> measurement dict
_measurements = {}


def _measure(subscriptions: int) -> dict:
    key = (subscriptions,)
    if key in _measurements:
        return _measurements[key]

    bank = CompiledFilterBank(stats=True)
    queries = {}
    for index, text in enumerate(shared_prefix_subscriptions(
            subscriptions, branching=BRANCHING, suffix_depth=SUFFIX_DEPTH,
            descendant_fraction=DESCENDANT_FRACTION, seed=7)):
        name = f"sub{index}"
        queries[name] = parse_query(text)
        bank.register(name, queries[name])

    document = shared_prefix_feed(
        ENTRIES, branching=BRANCHING, suffix_depth=SUFFIX_DEPTH,
        recursion=RECURSION, seed=13)
    depth = document.depth()
    events = document.events()

    start = time.perf_counter()
    result = bank.filter_events(iter(events))
    seconds = time.perf_counter() - start

    per_sub = []
    for name, stats in sorted(result.per_query_stats.items()):
        facts = analyze_query(
            queries[name], max_depth=depth, max_text_chars=MAX_TEXT_CHARS)
        per_sub.append({
            "name": name,
            "canonical": facts.canonical,
            "measured_bits": stats.peak_memory_bits,
            "measured_records": stats.peak_frontier_records,
            "measured_chars": stats.peak_buffer_chars,
            "bound_bits": facts.predicted_memory_bits,
            "bound_records": facts.predicted_frontier_records,
            "closure_free": facts.closure_free,
        })

    _measurements[key] = {
        "subscriptions": subscriptions,
        "depth": depth,
        "events": len(events),
        "seconds": seconds,
        "matched": len(result.matched),
        "per_sub": per_sub,
    }
    return _measurements[key]


def _min_ratio(per_sub) -> float:
    """Bound/measured, minimized over subscriptions that used any memory."""
    ratios = [entry["bound_bits"] / entry["measured_bits"]
              for entry in per_sub if entry["measured_bits"]]
    return min(ratios) if ratios else float("inf")


@pytest.mark.parametrize("subscriptions", SUBSCRIPTION_COUNTS)
def test_static_bound_dominates_measured(subscriptions):
    """Every per-subscription high-water mark sits under its static bound."""
    m = _measure(subscriptions)
    for entry in m["per_sub"]:
        assert entry["measured_chars"] <= MAX_TEXT_CHARS, (
            f"{entry['name']}: buffered {entry['measured_chars']} chars, bound "
            f"instantiated at B={MAX_TEXT_CHARS} — raise MAX_TEXT_CHARS")
        assert entry["measured_records"] <= entry["bound_records"], (
            f"{entry['name']} ({entry['canonical']}): measured "
            f"{entry['measured_records']} frontier records > predicted "
            f"{entry['bound_records']}")
        assert entry["measured_bits"] <= entry["bound_bits"], (
            f"{entry['name']} ({entry['canonical']}): measured "
            f"{entry['measured_bits']} bits > predicted {entry['bound_bits']}")
    assert _min_ratio(m["per_sub"]) >= 1.0


def _run_entry() -> dict:
    results = []
    for (subscriptions,), m in sorted(_measurements.items()):
        per_sub = m["per_sub"]
        used = [entry for entry in per_sub if entry["measured_bits"]]
        results.append({
            "subscriptions": subscriptions,
            "events": m["events"],
            "document_depth": m["depth"],
            "max_text_chars": MAX_TEXT_CHARS,
            "seconds": round(m["seconds"], 6),
            "matched": m["matched"],
            "subscriptions_exercised": len(used),
            "max_measured_bits": max(
                (entry["measured_bits"] for entry in per_sub), default=0),
            "max_bound_bits": max(
                (entry["bound_bits"] for entry in per_sub), default=0),
            "bound_violations": sum(
                1 for entry in per_sub
                if entry["measured_bits"] > entry["bound_bits"]
                or entry["measured_records"] > entry["bound_records"]),
            "bound_over_measured": round(_min_ratio(per_sub), 2),
        })
    return {
        "benchmark": "memory_model",
        "smoke": SMOKE,
        "required_min_ratio": 1.0,
        "workload": {
            "entries": ENTRIES, "branching": BRANCHING,
            "suffix_depth": SUFFIX_DEPTH, "recursion": RECURSION,
            "descendant_fraction": DESCENDANT_FRACTION,
        },
        "subscription_counts": SUBSCRIPTION_COUNTS,
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    rows = []
    for (subscriptions,), m in sorted(_measurements.items()):
        per_sub = m["per_sub"]
        rows.append((
            subscriptions, m["depth"],
            max((e["measured_bits"] for e in per_sub), default=0),
            max((e["bound_bits"] for e in per_sub), default=0),
            f"{_min_ratio(per_sub):.2f}",
        ))
    print_table(
        "static memory bound vs measured high-water (per-subscription)",
        ("subs", "doc depth", "max measured bits", "max bound bits",
         "min bound/measured"),
        rows,
    )
