"""Experiment E13: the FS(Q)-matching upper bound (Theorem 8.8, second part).

For path-consistency-free, closure-free queries on non-recursive documents the filter's
frontier never holds more than FS(Q) tuples (plus the permanent root tuple in our
variant).  The sweep regenerates the series

    query, |Q|, FS(Q), measured peak tuples

showing that the measured value tracks FS(Q), not |Q| — the sense in which the algorithm
matches the main lower bound.
"""

from __future__ import annotations

import pytest

from repro.core import classify, filter_with_statistics, query_frontier_size
from repro.semantics import bool_eval
from repro.workloads import balanced_query, deep_nested_predicate_query
from repro.xmlstream import XMLDocument, XMLNode
from repro.xpath import Query

from .conftest import print_table

_rows = []


def _matching_document(query: Query) -> XMLDocument:
    """A document mirroring the query tree exactly (child axes only, distinct names)."""

    def build(query_node) -> XMLNode:
        element = XMLNode.element(query_node.ntest)
        for child in query_node.children:
            element.append_child(build(child))
        return element

    root = XMLNode.root()
    for child in query.root.children:
        root.append_child(build(child))
    return XMLDocument(root)


CASES = {
    "balanced-2x2": balanced_query(2, 2),
    "balanced-2x4": balanced_query(2, 4),
    "balanced-3x3": balanced_query(3, 3),
    "chain-8": deep_nested_predicate_query(8),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_frontier_matching_upper_bound(benchmark, name):
    query = CASES[name]
    info = classify(query)
    assert info.closure_free and info.path_consistency_free
    document = _matching_document(query)
    assert bool_eval(query, document)

    decision, stats = benchmark(lambda: filter_with_statistics(query, document))
    assert decision
    fs = query_frontier_size(query)
    # Theorem 8.8 part 2: peak tuples bounded by FS(Q) (+ the permanent root tuple)
    assert stats.peak_frontier_records <= fs + 1
    benchmark.extra_info.update({
        "query_size": query.size(),
        "FS(Q)": fs,
        "peak_tuples": stats.peak_frontier_records,
    })
    _rows.append((name, query.size(), fs, stats.peak_frontier_records))


def teardown_module(module):  # noqa: D103
    if _rows:
        print_table(
            "E13 - peak frontier tuples vs. FS(Q) for path-consistency-free "
            "closure-free queries",
            ["query", "|Q|", "FS(Q)", "peak tuples"],
            sorted(_rows),
        )
