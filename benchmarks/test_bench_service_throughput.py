"""Extension experiment: pub/sub service throughput and latency under bursty traffic.

The service layer (:class:`~repro.service.PubSubService`) adds an asyncio front end
— sessions, an ingest queue, executor hops — on top of the match-only engine.  That
front end has a per-document overhead, and batching exists to amortize it: the
ingest worker coalesces every document buffered within one flush window into a
single tokenize-and-filter executor call.  This benchmark replays the same bursty
:func:`~repro.workloads.service_traffic` script (multi-client subscription mix,
publish bursts, interleaved churn) through the service two ways:

* ``serial``  — ``batch_max=1`` and every publish awaited before the next: the
  single-document-call regime, where each document pays the full async round trip;
* ``batched`` — publishes of a burst issued concurrently against the default
  batching configuration, so a flush window's worth of documents shares one
  executor call.

The acceptance criterion is asserted **in smoke mode too** (it is an architectural
property of the pipeline, not a machine-speed property): batched throughput must be
at least ``REQUIRED_BATCH_SPEEDUP``x the serial throughput at the largest document
count.  Correctness rides along: both modes must report identical per-document
matched sets, and the per-session notification totals must agree.

Every run appends a timestamped entry to ``BENCH_filterbank.json`` (schema 2), so
the service joins the same perf trajectory the engine benchmarks feed and the CI
gate (``scripts/check_bench_trajectory.py``) enforces.  Publish latencies (p50/p95)
are recorded in the entry for the trajectory's sake — per document in serial mode,
per burst (time to the whole burst settling) in batched mode.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import time

import pytest

from repro.service import PubSubService
from repro.workloads import service_traffic, traffic_summary

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

DOCUMENT_COUNTS = [80] if SMOKE else [150, 500]
CLIENTS = 4 if SMOKE else 8
SUBSCRIPTIONS_PER_CLIENT = 8 if SMOKE else 16
TOPICS = 40
BURST = 12
#: topic entries per published document — notification-sized, as in real
#: dissemination traffic (small documents are also where the per-document service
#: overhead, which batching exists to amortize, is proportionally largest)
ENTRIES = 1
#: timing repeats per configuration; the median is reported
REPEATS = 3

#: asserted floor: batched throughput vs the single-document-call regime, at the
#: largest document count (asserted in smoke mode too — see module docstring)
REQUIRED_BATCH_SPEEDUP = 2.0

#: batching configuration of the ``batched`` mode (adaptive coalescing: bursts
#: pre-enqueued by ``publish_many`` already arrive back to back, so the opt-in
#: timed flush window would only add tail latency here)
BATCH_MAX = 64
FLUSH_INTERVAL = 0.0

#: (documents, mode) -> {"seconds", "documents", "matched_trail", "notifications",
#:                       "latencies"}
_measurements = {}


def _script(documents: int):
    return service_traffic(
        documents, clients=CLIENTS,
        subscriptions_per_client=SUBSCRIPTIONS_PER_CLIENT,
        topics=TOPICS, burst=BURST, entries=ENTRIES, seed=7)


async def _replay(documents: int, mode: str) -> dict:
    """Replay the script once, timing the publish phases only.

    Subscribe/unsubscribe round trips cost the same in both modes; including them
    in the clock would just dilute the document-throughput comparison the
    acceptance criterion is about, so ``seconds`` sums the publish bursts alone.
    """
    if mode == "serial":
        service = PubSubService(batch_max=1)
    else:
        service = PubSubService(batch_max=BATCH_MAX, flush_interval=FLUSH_INTERVAL)
    script = _script(documents)
    matched_trail = []
    latencies = []  # serial: per document; batched: per burst (see docstring)
    async with service:
        sessions = {}

        async def control_op(op):
            if op[0] == "subscribe":
                _kind, client, name, text = op
                if client not in sessions:
                    sessions[client] = await service.connect(client)
                await sessions[client].subscribe(name, text)
            else:
                await sessions[op[1]].unsubscribe(op[2])

        elapsed = 0.0

        async def publish_burst(texts):
            nonlocal elapsed
            started = time.perf_counter()
            if mode == "serial":
                results = []
                for text in texts:
                    results.append(await service.publish(text))
                    latencies.append(time.perf_counter() - started)
                    started = time.perf_counter()
                elapsed += sum(latencies[-len(texts):])
            else:
                results = await service.publish_many(texts)
                burst_seconds = time.perf_counter() - started
                latencies.append(burst_seconds)
                elapsed += burst_seconds
            for result in results:
                matched_trail.append((result.document_id, sorted(result.matched)))

        # untimed warm-up: spawns the executor threads and touches every code path
        # once, so neither mode's first burst pays one-time setup costs
        await service.publish("<feed></feed>")

        burst: list = []
        for op in script:
            if op[0] == "publish":
                burst.append(op[2])
                continue
            if burst:  # control ops order against the publishes around them
                await publish_burst(burst)
                burst = []
            await control_op(op)
        if burst:
            await publish_burst(burst)
        metrics = service.metrics()
    matched_trail.sort()
    return {
        "seconds": elapsed,
        "documents": documents,
        "matched_trail": matched_trail,
        "notifications": metrics["notifications"],
        "batches": metrics["batches"],
        "largest_batch": metrics["largest_batch"],
        "latencies": latencies,
    }


def _measure(documents: int, mode: str) -> dict:
    """Median-of-``REPEATS`` replay, cached per configuration.

    ``seconds`` is the median (what the trajectory records); ``best_seconds``
    the fastest repeat, kept for the smoke-mode assertion — on noisy shared CI
    runners a best-vs-best comparison tests the architectural property without
    flaking on a single slow-scheduled repeat.
    """
    key = (documents, mode)
    if key not in _measurements:
        runs = [asyncio.run(_replay(documents, mode)) for _ in range(REPEATS)]
        chosen = sorted(runs, key=lambda run: run["seconds"])[len(runs) // 2]
        chosen["seconds"] = statistics.median(run["seconds"] for run in runs)
        chosen["best_seconds"] = min(run["seconds"] for run in runs)
        _measurements[key] = chosen
    return _measurements[key]


@pytest.mark.parametrize("documents", DOCUMENT_COUNTS)
def test_modes_agree_on_matches_and_notifications(documents):
    """Correctness en passant: batching must be invisible in the results — same
    per-document matched sets (by publish sequence number) and the same total
    notification count in both modes."""
    serial = _measure(documents, "serial")
    batched = _measure(documents, "batched")
    assert serial["matched_trail"] == batched["matched_trail"]
    assert serial["notifications"] == batched["notifications"]


def test_batching_coalesces_documents():
    """The batched replay must actually coalesce: fewer ingest batches than
    documents, with at least one multi-document batch."""
    batched = _measure(DOCUMENT_COUNTS[-1], "batched")
    assert batched["batches"] < batched["documents"] + len(_script(0))
    assert batched["largest_batch"] > 1


def test_batched_service_outpaces_single_document_calls():
    """The PR-4 acceptance criterion, asserted in smoke mode too: batching must
    sustain at least ``REQUIRED_BATCH_SPEEDUP``x the single-document-call
    throughput on the bursty traffic mix.  Full-size runs assert the median;
    smoke runs assert best-of-repeats, which tests the same architectural
    property but cannot be flipped by one slow-scheduled repeat on a noisy
    shared runner."""
    top = DOCUMENT_COUNTS[-1]
    serial = _measure(top, "serial")
    batched = _measure(top, "batched")
    which = "best_seconds" if SMOKE else "seconds"
    speedup = serial[which] / batched[which]
    assert speedup >= REQUIRED_BATCH_SPEEDUP, (
        f"batched service only {speedup:.2f}x the single-document-call throughput "
        f"at {top} documents (required: {REQUIRED_BATCH_SPEEDUP}x)"
    )


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_entry() -> dict:
    results = []
    for (documents, mode), m in sorted(_measurements.items()):
        serial = _measurements.get((documents, "serial"))
        entry = {
            "mode": mode,
            "documents": documents,
            "seconds": round(m["seconds"], 6),
            "documents_per_second": round(documents / m["seconds"]),
            "notifications": m["notifications"],
            "batches": m["batches"],
            "largest_batch": m["largest_batch"],
            "publish_p50_ms": round(_percentile(m["latencies"], 0.50) * 1e3, 3),
            "publish_p95_ms": round(_percentile(m["latencies"], 0.95) * 1e3, 3),
        }
        if mode == "batched" and serial is not None:
            entry["speedup_vs_serial"] = round(
                serial["seconds"] / m["seconds"], 2)
        results.append(entry)
    script = _script(DOCUMENT_COUNTS[-1])
    return {
        "benchmark": "service_throughput",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "required_speedup": REQUIRED_BATCH_SPEEDUP,
        "document_counts": DOCUMENT_COUNTS,
        "workload": {
            "clients": CLIENTS,
            "subscriptions_per_client": SUBSCRIPTIONS_PER_CLIENT,
            "topics": TOPICS, "burst": BURST, "entries": ENTRIES,
            "ops": traffic_summary(script),
        },
        "batching": {"batch_max": BATCH_MAX, "flush_interval": FLUSH_INTERVAL},
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    rows = []
    for documents in DOCUMENT_COUNTS:
        serial = _measurements.get((documents, "serial"))
        batched = _measurements.get((documents, "batched"))
        if serial is None and batched is None:
            continue
        rows.append((
            documents,
            f"{documents / serial['seconds']:,.0f}" if serial else "-",
            f"{documents / batched['seconds']:,.0f}" if batched else "-",
            (f"{serial['seconds'] / batched['seconds']:.1f}x"
             if serial and batched else "-"),
            (f"{_percentile(batched['latencies'], 0.95) * 1e3:.2f}ms"
             if batched else "-"),
        ))
    if rows:
        print_table(
            "Extension - pub/sub service throughput (bursty multi-client traffic)",
            ["documents", "serial docs/s", "batched docs/s", "batch speedup",
             "batched p95"],
            rows,
        )
