"""Shared helpers for the benchmark harness.

Every benchmark measures the wall-clock time of a run with ``pytest-benchmark`` and
attaches the paper-relevant quantities (memory bits, frontier tuples, bound values) to
``benchmark.extra_info`` so they appear in the benchmark report.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated result tables printed by each experiment.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Iterable, Sequence

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: the repository-root perf trajectory shared by the filter-bank benchmarks
TRAJECTORY_PATH = os.path.join(os.path.dirname(_SRC), "BENCH_filterbank.json")

#: current trajectory file layout: {"schema": 2, "runs": [run, ...]}
TRAJECTORY_SCHEMA = 2


def append_bench_run(run: dict, path: str = TRAJECTORY_PATH) -> dict:
    """Append one timestamped run entry to the perf-trajectory file.

    The file accumulates runs (schema 2) instead of being overwritten, so it records
    an actual performance trajectory across PRs and machines.  A legacy schema-1
    file (one flat run dict at top level) is converted in place into the first run
    entry, with a ``null`` timestamp marking that its wall-clock time was never
    recorded.  Unreadable files are replaced rather than crashing the benchmark.
    """
    data = None
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except ValueError:
            data = None
    if not isinstance(data, dict):
        data = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    elif "runs" not in data:
        legacy = dict(data)
        legacy.setdefault("timestamp", None)
        data = {"schema": TRAJECTORY_SCHEMA, "runs": [legacy]}
    data["schema"] = TRAJECTORY_SCHEMA
    entry = dict(run)
    entry.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
    data["runs"].append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return data


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a small fixed-width results table (the regenerated 'figure series')."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
