"""Shared helpers for the benchmark harness.

Every benchmark measures the wall-clock time of a run with ``pytest-benchmark`` and
attaches the paper-relevant quantities (memory bits, frontier tuples, bound values) to
``benchmark.extra_info`` so they appear in the benchmark report.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated result tables printed by each experiment.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, Sequence

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a small fixed-width results table (the regenerated 'figure series')."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
