"""Extension experiment: filter-bank engine throughput across the sharing spectrum.

Five engines serve the same subscriptions over the same document streams:

* ``fast``     — :class:`~repro.core.MatchOnlyFilterBank`: the compiled trie engine's
  match-only fast path (no statistics, no frontier records for path-shaped plans,
  early retirement of decided subscriptions) — PR 3;
* ``sharded``  — :class:`~repro.core.ShardedFilterBank`: the match-only engine
  partitioned across worker processes, one token broadcast per document — PR 3;
* ``compiled`` — :class:`~repro.core.CompiledFilterBank`: all queries merged into a
  shared prefix trie, statistics-accurate per-query state on flat plans (PR 2);
* ``indexed``  — :class:`~repro.core.FilterBank`: label → subscription inverted index,
  per-query interpreted filters (PR 1);
* ``naive``    — :class:`~repro.baselines.NaiveFilterBank`: every event to every filter.

Two workloads bracket the sharing spectrum.  The *topic feed* is label-sparse (each
subscription watches disjoint labels), the indexed bank's best case.  The *shared
prefix* workload is the YFilter-style stress test: every subscription starts with
``/catalog/product`` and continues in a small suffix alphabet reused at every depth,
so label dispatch degenerates to broadcast while the trie evaluates the common prefix
once and wakes only the subscriptions whose whole path matched so far.

Timings use ``time.perf_counter`` with ``REPEATS`` repeats per configuration and the
*median* reported, so the asserted speedups cannot be flipped by a single scheduler
hiccup.  The acceptance criteria are asserted, not just reported: at the largest
subscription count on the shared-prefix workload the compiled engine must beat the
indexed bank by ``REQUIRED_SPEEDUP``x, the match-only fast path must beat the
compiled engine by ``REQUIRED_FAST_SPEEDUP``x, and — on machines with at least
``SHARDED_MIN_CORES`` cores — the sharded bank must beat single-process match-only by
``REQUIRED_SHARDED_SPEEDUP``x.  Matched sets agree across all engines, and the
statistics-accurate engines also agree on per-query
:class:`~repro.core.FilterStatistics` byte-for-byte.

Every run *appends* a timestamped entry to ``BENCH_filterbank.json`` at the
repository root (schema 2: ``{"schema": 2, "runs": [...]}``), so the file is an
actual performance trajectory future PRs can diff instead of a snapshot that each
run overwrites.  Setting ``FILTERBANK_BENCH_SMOKE=1`` shrinks the sizes so CI can
exercise every engine on each push without paying the full measurement cost (the
speedup assertions are skipped in smoke mode; the correctness assertions are not).
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.baselines import NaiveFilterBank
from repro.core import (
    CompiledFilterBank,
    FilterBank,
    MatchOnlyFilterBank,
    ShardedFilterBank,
)
from repro.workloads import (
    shared_prefix_feed,
    shared_prefix_subscriptions,
    topic_feed,
    topic_subscriptions,
)
from repro.xpath import parse_query

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

SUBSCRIPTION_COUNTS = [5, 25] if SMOKE else [10, 100, 1000]
TOPICS = 100
ENTRIES = 10 if SMOKE else 60

#: shared-prefix workload shape (see workloads.shared_prefix_subscriptions)
PREFIX_BRANCHING = 4
PREFIX_SUFFIX_DEPTH = 3
PREFIX_ENTRIES = 10 if SMOKE else 60

#: timing repeats per configuration; the median is reported
REPEATS = 2 if SMOKE else 3

#: the asserted acceptance criteria at the largest subscription count (prefix
#: workload): compiled vs indexed, match-only vs compiled, sharded vs match-only
REQUIRED_SPEEDUP = 3.0
REQUIRED_FAST_SPEEDUP = 5.0
REQUIRED_SHARDED_SPEEDUP = 2.0
SHARDED_MIN_CORES = 4

CORES = os.cpu_count() or 1
SHARDS = min(CORES, 4)

_BANKS = {
    "fast": MatchOnlyFilterBank,
    "sharded": lambda: ShardedFilterBank(SHARDS, stats=False),
    "compiled": CompiledFilterBank,
    "indexed": FilterBank,
    "naive": NaiveFilterBank,
}
KINDS = list(_BANKS)

#: engine kinds measured by the parametrized pytest-benchmark sweep (the sharded
#: bank spawns processes per measurement; it is measured by the assertion test only)
SWEEP_KINDS = ["fast", "compiled", "indexed", "naive"]

#: (workload, kind, subscriptions) -> {"seconds", "events", "matched", "stats"}
_measurements = {}


def _subscriptions(workload: str, count: int):
    if workload == "topic":
        return topic_subscriptions(count, topics=TOPICS)
    return shared_prefix_subscriptions(
        count, branching=PREFIX_BRANCHING, suffix_depth=PREFIX_SUFFIX_DEPTH, seed=11)


def _build_bank(workload: str, kind: str, subscriptions: int):
    bank = _BANKS[kind]()
    for index, text in enumerate(_subscriptions(workload, subscriptions)):
        bank.register(f"sub{index}", parse_query(text))
    return bank


def _document(workload: str):
    if workload == "topic":
        return topic_feed(ENTRIES, topics=TOPICS, seed=42)
    return shared_prefix_feed(
        PREFIX_ENTRIES, branching=PREFIX_BRANCHING,
        suffix_depth=PREFIX_SUFFIX_DEPTH, seed=43)


def _measure(workload: str, kind: str, subscriptions: int) -> dict:
    """Median-of-``REPEATS`` wall-clock measurement, cached per configuration.

    Computed on demand so the comparison tests are self-sufficient under
    ``pytest -k`` or test reordering.  An untimed warm-up run builds the trie (and,
    for the sharded bank, spawns the workers) before the timed repeats, and the
    median over ``perf_counter`` samples is reported so a single scheduler hiccup
    cannot flip the speedup assertions.
    """
    key = (workload, kind, subscriptions)
    if key not in _measurements:
        bank = _build_bank(workload, kind, subscriptions)
        try:
            events = _document(workload).events()
            result = bank.filter_events(iter(events))  # warm-up, untimed
            samples = []
            for _ in range(REPEATS):
                start = time.perf_counter()
                result = bank.filter_events(iter(events))
                samples.append(time.perf_counter() - start)
            _measurements[key] = {
                "seconds": statistics.median(samples),
                "events": len(events),
                "matched": sorted(result.matched),
                "stats": result.per_query_stats,
            }
        finally:
            if hasattr(bank, "close"):
                bank.close()
    return _measurements[key]


@pytest.mark.parametrize("subscriptions", SUBSCRIPTION_COUNTS)
@pytest.mark.parametrize("kind", SWEEP_KINDS)
def test_filterbank_events_per_second(benchmark, kind, subscriptions):
    bank = _build_bank("topic", kind, subscriptions)
    events = _document("topic").events()

    result = benchmark.pedantic(
        lambda: bank.filter_events(iter(events)), rounds=1, iterations=1
    )
    measurement = _measure("topic", kind, subscriptions)
    benchmark.extra_info.update({
        "workload": "topic",
        "kind": kind,
        "subscriptions": subscriptions,
        "events": len(events),
        "events_per_second": round(len(events) / measurement["seconds"]),
        "matched": len(result.matched),
    })


def test_indexed_bank_beats_naive_at_scale():
    """PR-1 criterion: indexed strictly faster at 100+ subscriptions, same matches."""
    for subscriptions in SUBSCRIPTION_COUNTS:
        indexed = _measure("topic", "indexed", subscriptions)
        naive = _measure("topic", "naive", subscriptions)
        assert indexed["matched"] == naive["matched"]
        if not SMOKE and subscriptions >= 100:
            assert indexed["seconds"] < naive["seconds"], (
                f"indexed bank not faster at {subscriptions} subscriptions: "
                f"{indexed['seconds']:.4f}s vs naive {naive['seconds']:.4f}s"
            )


def test_compiled_engine_matches_and_outpaces_indexed_bank():
    """PR-2 criterion, asserted: on the shared-prefix workload the compiled trie
    engine reports byte-identical matched sets and per-query statistics at every
    scale, and is at least ``REQUIRED_SPEEDUP``x faster than the PR-1 indexed bank at
    the largest subscription count."""
    for subscriptions in SUBSCRIPTION_COUNTS:
        compiled = _measure("prefix", "compiled", subscriptions)
        indexed = _measure("prefix", "indexed", subscriptions)
        assert compiled["matched"] == indexed["matched"]
        assert compiled["stats"] == indexed["stats"], (
            f"per-query statistics diverge at {subscriptions} subscriptions"
        )
    top = SUBSCRIPTION_COUNTS[-1]
    compiled = _measure("prefix", "compiled", top)
    indexed = _measure("prefix", "indexed", top)
    speedup = indexed["seconds"] / compiled["seconds"]
    if not SMOKE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"compiled engine only {speedup:.2f}x faster than the indexed bank at "
            f"{top} subscriptions (required: {REQUIRED_SPEEDUP}x)"
        )


def test_match_only_fast_path_outpaces_compiled_engine():
    """PR-3 criterion, asserted: the match-only fast path reports the same matched
    sets as the statistics-accurate compiled engine at every scale and is at least
    ``REQUIRED_FAST_SPEEDUP``x faster at the largest subscription count."""
    for subscriptions in SUBSCRIPTION_COUNTS:
        fast = _measure("prefix", "fast", subscriptions)
        compiled = _measure("prefix", "compiled", subscriptions)
        assert fast["matched"] == compiled["matched"]
        assert fast["stats"] == {}
    top = SUBSCRIPTION_COUNTS[-1]
    fast = _measure("prefix", "fast", top)
    compiled = _measure("prefix", "compiled", top)
    speedup = compiled["seconds"] / fast["seconds"]
    if not SMOKE:
        assert speedup >= REQUIRED_FAST_SPEEDUP, (
            f"match-only fast path only {speedup:.2f}x faster than the compiled "
            f"engine at {top} subscriptions (required: {REQUIRED_FAST_SPEEDUP}x)"
        )


def test_sharded_bank_matches_and_scales_on_multicore():
    """PR-3 criterion: the sharded bank reports the same matched sets as the
    single-process match-only engine; on machines with at least
    ``SHARDED_MIN_CORES`` cores it must also be ``REQUIRED_SHARDED_SPEEDUP``x faster
    at the largest subscription count (on smaller machines the broadcast overhead is
    recorded in the trajectory but not asserted against)."""
    top = SUBSCRIPTION_COUNTS[-1]
    sharded = _measure("prefix", "sharded", top)
    fast = _measure("prefix", "fast", top)
    assert sharded["matched"] == fast["matched"]
    if not SMOKE and CORES >= SHARDED_MIN_CORES:
        speedup = fast["seconds"] / sharded["seconds"]
        assert speedup >= REQUIRED_SHARDED_SPEEDUP, (
            f"sharded bank only {speedup:.2f}x faster than single-process "
            f"match-only at {top} subscriptions on {CORES} cores "
            f"(required: {REQUIRED_SHARDED_SPEEDUP}x)"
        )


def test_compiled_engine_matches_naive_on_shared_prefix():
    """The compiled engine also agrees with the pre-index baseline (smallest scale
    suffices for the naive bank; larger scales are covered against indexed above)."""
    subscriptions = SUBSCRIPTION_COUNTS[0]
    compiled = _measure("prefix", "compiled", subscriptions)
    naive = _measure("prefix", "naive", subscriptions)
    assert compiled["matched"] == naive["matched"]
    assert compiled["stats"] == naive["stats"]


def _run_entry() -> dict:
    """Collect every cached measurement into one trajectory run entry."""
    results = []
    for (workload, kind, subscriptions), m in sorted(_measurements.items()):
        indexed = _measurements.get((workload, "indexed", subscriptions))
        compiled = _measurements.get((workload, "compiled", subscriptions))
        entry = {
            "workload": workload,
            "engine": kind,
            "subscriptions": subscriptions,
            "events": m["events"],
            "seconds": round(m["seconds"], 6),
            "events_per_second": round(m["events"] / m["seconds"]),
            "matched": len(m["matched"]),
        }
        if kind == "sharded":
            entry["shards"] = SHARDS
        if indexed is not None and kind != "indexed":
            entry["speedup_vs_indexed"] = round(indexed["seconds"] / m["seconds"], 2)
        if compiled is not None and kind in ("fast", "sharded"):
            entry["speedup_vs_compiled"] = round(
                compiled["seconds"] / m["seconds"], 2)
        results.append(entry)
    return {
        "benchmark": "filterbank_throughput",
        "smoke": SMOKE,
        "cores": CORES,
        "repeats": REPEATS,
        "required_speedups": {
            "compiled_vs_indexed": REQUIRED_SPEEDUP,
            "fast_vs_compiled": REQUIRED_FAST_SPEEDUP,
            "sharded_vs_fast": REQUIRED_SHARDED_SPEEDUP,
        },
        "subscription_counts": SUBSCRIPTION_COUNTS,
        "workloads": {
            "topic": {"entries": ENTRIES, "topics": TOPICS},
            "prefix": {"entries": PREFIX_ENTRIES, "branching": PREFIX_BRANCHING,
                       "suffix_depth": PREFIX_SUFFIX_DEPTH},
        },
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    for workload, title in (("topic", "label-sparse topic feed"),
                            ("prefix", "shared-prefix trie workload")):
        rows = []
        for subscriptions in SUBSCRIPTION_COUNTS:
            row = {kind: _measurements.get((workload, kind, subscriptions))
                   for kind in KINDS}
            if all(value is None for value in row.values()):
                continue
            compiled = row.get("compiled")
            fast = row.get("fast")
            rows.append((
                subscriptions,
                next(m["events"] for m in row.values() if m is not None),
                *(f"{m['events'] / m['seconds']:,.0f}" if m else "-"
                  for m in row.values()),
                (f"{compiled['seconds'] / fast['seconds']:.1f}x"
                 if compiled and fast else "-"),
            ))
        if rows:
            print_table(
                f"Extension - filter bank throughput ({title})",
                ["subscriptions", "events", *(f"{kind} ev/s" for kind in KINDS),
                 "fast speedup"],
                rows,
            )
