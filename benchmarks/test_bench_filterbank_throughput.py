"""Extension experiment: shared-dispatch vs naive multi-subscription throughput.

The indexed :class:`~repro.core.FilterBank` routes each element event only to the
subscriptions whose queries mention its label; :class:`~repro.baselines.NaiveFilterBank`
(the original implementation) feeds every event to every filter.  On a label-sparse
workload (pairwise label-disjoint topic subscriptions over a topic feed) the per-event
dispatch cost drops from O(#subscriptions) to O(1), so throughput in events/sec should
stay roughly flat for the indexed bank while the naive bank degrades linearly.

The final test asserts the acceptance criterion: at 100+ subscriptions the indexed bank
is strictly faster, with identical matched sets.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import NaiveFilterBank
from repro.core import FilterBank
from repro.workloads import topic_feed, topic_subscriptions
from repro.xpath import parse_query

from .conftest import print_table

SUBSCRIPTION_COUNTS = [10, 100, 1000]
TOPICS = 100
ENTRIES = 60

#: (kind, subscriptions) -> {"seconds": ..., "events": ..., "matched": ...}
_measurements = {}


def _build_bank(kind: str, subscriptions: int):
    bank = FilterBank() if kind == "indexed" else NaiveFilterBank()
    for index, text in enumerate(topic_subscriptions(subscriptions, topics=TOPICS)):
        bank.register(f"sub{index}", parse_query(text))
    return bank


def _document():
    return topic_feed(ENTRIES, topics=TOPICS, seed=42)


def _measure(kind: str, subscriptions: int) -> dict:
    """Best-of-two wall-clock measurement of one bank kind, cached per configuration.

    Computed on demand so the comparison test is self-sufficient under ``pytest -k``
    or test reordering, and best-of-two so a single scheduler hiccup cannot flip the
    strictly-faster assertion.
    """
    key = (kind, subscriptions)
    if key not in _measurements:
        bank = _build_bank(kind, subscriptions)
        events = _document().events()
        best = None
        matched = None
        for _ in range(2):
            start = time.perf_counter()
            result = bank.filter_events(iter(events))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            matched = sorted(result.matched)
        _measurements[key] = {
            "seconds": best,
            "events": len(events),
            "matched": matched,
        }
    return _measurements[key]


@pytest.mark.parametrize("subscriptions", SUBSCRIPTION_COUNTS)
@pytest.mark.parametrize("kind", ["indexed", "naive"])
def test_filterbank_events_per_second(benchmark, kind, subscriptions):
    bank = _build_bank(kind, subscriptions)
    events = _document().events()

    result = benchmark.pedantic(
        lambda: bank.filter_events(iter(events)), rounds=3, iterations=1
    )
    measurement = _measure(kind, subscriptions)
    benchmark.extra_info.update({
        "kind": kind,
        "subscriptions": subscriptions,
        "events": len(events),
        "events_per_second": round(len(events) / measurement["seconds"]),
        "matched": len(result.matched),
    })


def test_indexed_bank_beats_naive_at_scale():
    """Acceptance criterion: strictly faster at 100+ subscriptions, same matched sets."""
    for subscriptions in SUBSCRIPTION_COUNTS:
        indexed = _measure("indexed", subscriptions)
        naive = _measure("naive", subscriptions)
        assert indexed["matched"] == naive["matched"]
        if subscriptions >= 100:
            assert indexed["seconds"] < naive["seconds"], (
                f"indexed bank not faster at {subscriptions} subscriptions: "
                f"{indexed['seconds']:.4f}s vs naive {naive['seconds']:.4f}s"
            )


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    rows = []
    for subscriptions in SUBSCRIPTION_COUNTS:
        indexed = _measurements.get(("indexed", subscriptions))
        naive = _measurements.get(("naive", subscriptions))
        if indexed is None or naive is None:
            continue
        rows.append((
            subscriptions,
            indexed["events"],
            f"{indexed['events'] / indexed['seconds']:,.0f}",
            f"{naive['events'] / naive['seconds']:,.0f}",
            f"{naive['seconds'] / indexed['seconds']:.1f}x",
            len(indexed["matched"]),
        ))
    print_table(
        "Extension - shared-dispatch vs naive bank throughput (label-sparse feed)",
        ["subscriptions", "events", "indexed ev/s", "naive ev/s", "speedup", "matched"],
        rows,
    )
