"""Extension experiment: compiled trie vs shared-dispatch vs naive bank throughput.

Three engines serve the same subscriptions over the same document streams:

* ``compiled`` — :class:`~repro.core.CompiledFilterBank`: all queries merged into a
  shared prefix trie, per-query state on flat compiled plans (this PR);
* ``indexed`` — :class:`~repro.core.FilterBank`: label → subscription inverted index,
  per-query interpreted filters (PR 1);
* ``naive`` — :class:`~repro.baselines.NaiveFilterBank`: every event to every filter.

Two workloads bracket the sharing spectrum.  The *topic feed* is label-sparse (each
subscription watches disjoint labels), the indexed bank's best case.  The *shared
prefix* workload is the YFilter-style stress test: every subscription starts with
``/catalog/product`` and continues in a small suffix alphabet reused at every depth,
so label dispatch degenerates to broadcast while the trie evaluates the common prefix
once and wakes only the subscriptions whose whole path matched so far.

The acceptance criterion is asserted, not just reported: at the largest subscription
count the compiled engine must be at least ``REQUIRED_SPEEDUP``x faster than the
indexed bank on the shared-prefix workload, with byte-identical matched sets and
per-query :class:`~repro.core.FilterStatistics`.

Every run also writes ``BENCH_filterbank.json`` at the repository root — a trajectory
file (events/sec, subscriptions, speedups per engine and workload) that future PRs can
diff to catch throughput regressions.  Setting ``FILTERBANK_BENCH_SMOKE=1`` shrinks
the sizes so CI can exercise the compiled path on every push without paying the full
measurement cost (the speedup assertion is skipped in smoke mode; the correctness
assertions are not).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.baselines import NaiveFilterBank
from repro.core import CompiledFilterBank, FilterBank
from repro.workloads import (
    shared_prefix_feed,
    shared_prefix_subscriptions,
    topic_feed,
    topic_subscriptions,
)
from repro.xpath import parse_query

from .conftest import print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

SUBSCRIPTION_COUNTS = [5, 25] if SMOKE else [10, 100, 1000]
TOPICS = 100
ENTRIES = 10 if SMOKE else 60

#: shared-prefix workload shape (see workloads.shared_prefix_subscriptions)
PREFIX_BRANCHING = 4
PREFIX_SUFFIX_DEPTH = 3
PREFIX_ENTRIES = 10 if SMOKE else 60

#: the asserted acceptance criterion (compiled vs indexed at the largest sub count)
REQUIRED_SPEEDUP = 3.0

_BANKS = {"compiled": CompiledFilterBank, "indexed": FilterBank, "naive": NaiveFilterBank}
KINDS = list(_BANKS)

#: (workload, kind, subscriptions) -> {"seconds", "events", "matched", "stats"}
_measurements = {}

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(_REPO_ROOT, "BENCH_filterbank.json")


def _subscriptions(workload: str, count: int):
    if workload == "topic":
        return topic_subscriptions(count, topics=TOPICS)
    return shared_prefix_subscriptions(
        count, branching=PREFIX_BRANCHING, suffix_depth=PREFIX_SUFFIX_DEPTH, seed=11)


def _build_bank(workload: str, kind: str, subscriptions: int):
    bank = _BANKS[kind]()
    for index, text in enumerate(_subscriptions(workload, subscriptions)):
        bank.register(f"sub{index}", parse_query(text))
    return bank


def _document(workload: str):
    if workload == "topic":
        return topic_feed(ENTRIES, topics=TOPICS, seed=42)
    return shared_prefix_feed(
        PREFIX_ENTRIES, branching=PREFIX_BRANCHING,
        suffix_depth=PREFIX_SUFFIX_DEPTH, seed=43)


def _measure(workload: str, kind: str, subscriptions: int) -> dict:
    """Best-of-two wall-clock measurement of one bank kind, cached per configuration.

    Computed on demand so the comparison tests are self-sufficient under ``pytest -k``
    or test reordering, and best-of-two so a single scheduler hiccup cannot flip the
    speedup assertions.
    """
    key = (workload, kind, subscriptions)
    if key not in _measurements:
        bank = _build_bank(workload, kind, subscriptions)
        events = _document(workload).events()
        best = None
        matched = None
        stats = None
        for _ in range(2):
            start = time.perf_counter()
            result = bank.filter_events(iter(events))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            matched = sorted(result.matched)
            stats = result.per_query_stats
        _measurements[key] = {
            "seconds": best,
            "events": len(events),
            "matched": matched,
            "stats": stats,
        }
    return _measurements[key]


@pytest.mark.parametrize("subscriptions", SUBSCRIPTION_COUNTS)
@pytest.mark.parametrize("kind", KINDS)
def test_filterbank_events_per_second(benchmark, kind, subscriptions):
    bank = _build_bank("topic", kind, subscriptions)
    events = _document("topic").events()

    result = benchmark.pedantic(
        lambda: bank.filter_events(iter(events)), rounds=1, iterations=1
    )
    measurement = _measure("topic", kind, subscriptions)
    benchmark.extra_info.update({
        "workload": "topic",
        "kind": kind,
        "subscriptions": subscriptions,
        "events": len(events),
        "events_per_second": round(len(events) / measurement["seconds"]),
        "matched": len(result.matched),
    })


def test_indexed_bank_beats_naive_at_scale():
    """PR-1 criterion: indexed strictly faster at 100+ subscriptions, same matches."""
    for subscriptions in SUBSCRIPTION_COUNTS:
        indexed = _measure("topic", "indexed", subscriptions)
        naive = _measure("topic", "naive", subscriptions)
        assert indexed["matched"] == naive["matched"]
        if not SMOKE and subscriptions >= 100:
            assert indexed["seconds"] < naive["seconds"], (
                f"indexed bank not faster at {subscriptions} subscriptions: "
                f"{indexed['seconds']:.4f}s vs naive {naive['seconds']:.4f}s"
            )


def test_compiled_engine_matches_and_outpaces_indexed_bank():
    """This PR's criterion, asserted: on the shared-prefix workload the compiled trie
    engine reports byte-identical matched sets and per-query statistics at every
    scale, and is at least ``REQUIRED_SPEEDUP``x faster than the PR-1 indexed bank at
    the largest subscription count."""
    for subscriptions in SUBSCRIPTION_COUNTS:
        compiled = _measure("prefix", "compiled", subscriptions)
        indexed = _measure("prefix", "indexed", subscriptions)
        assert compiled["matched"] == indexed["matched"]
        assert compiled["stats"] == indexed["stats"], (
            f"per-query statistics diverge at {subscriptions} subscriptions"
        )
    top = SUBSCRIPTION_COUNTS[-1]
    compiled = _measure("prefix", "compiled", top)
    indexed = _measure("prefix", "indexed", top)
    speedup = indexed["seconds"] / compiled["seconds"]
    if not SMOKE:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"compiled engine only {speedup:.2f}x faster than the indexed bank at "
            f"{top} subscriptions (required: {REQUIRED_SPEEDUP}x)"
        )


def test_compiled_engine_matches_naive_on_shared_prefix():
    """The compiled engine also agrees with the pre-index baseline (smallest scale
    suffices for the naive bank; larger scales are covered against indexed above)."""
    subscriptions = SUBSCRIPTION_COUNTS[0]
    compiled = _measure("prefix", "compiled", subscriptions)
    naive = _measure("prefix", "naive", subscriptions)
    assert compiled["matched"] == naive["matched"]
    assert compiled["stats"] == naive["stats"]


def _trajectory() -> dict:
    """Collect every cached measurement into the regression-tracking trajectory."""
    results = []
    for (workload, kind, subscriptions), m in sorted(_measurements.items()):
        indexed = _measurements.get((workload, "indexed", subscriptions))
        entry = {
            "workload": workload,
            "engine": kind,
            "subscriptions": subscriptions,
            "events": m["events"],
            "seconds": round(m["seconds"], 6),
            "events_per_second": round(m["events"] / m["seconds"]),
            "matched": len(m["matched"]),
        }
        if indexed is not None and kind != "indexed":
            entry["speedup_vs_indexed"] = round(indexed["seconds"] / m["seconds"], 2)
        results.append(entry)
    return {
        "benchmark": "filterbank_throughput",
        "smoke": SMOKE,
        "required_speedup": REQUIRED_SPEEDUP,
        "subscription_counts": SUBSCRIPTION_COUNTS,
        "workloads": {
            "topic": {"entries": ENTRIES, "topics": TOPICS},
            "prefix": {"entries": PREFIX_ENTRIES, "branching": PREFIX_BRANCHING,
                       "suffix_depth": PREFIX_SUFFIX_DEPTH},
        },
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(_trajectory(), handle, indent=2, sort_keys=False)
        handle.write("\n")
    for workload, title in (("topic", "label-sparse topic feed"),
                            ("prefix", "shared-prefix trie workload")):
        rows = []
        for subscriptions in SUBSCRIPTION_COUNTS:
            row = {kind: _measurements.get((workload, kind, subscriptions))
                   for kind in KINDS}
            if all(value is None for value in row.values()):
                continue
            indexed = row.get("indexed")
            compiled = row.get("compiled")
            rows.append((
                subscriptions,
                next(m["events"] for m in row.values() if m is not None),
                *(f"{m['events'] / m['seconds']:,.0f}" if m else "-"
                  for m in row.values()),
                (f"{indexed['seconds'] / compiled['seconds']:.1f}x"
                 if indexed and compiled else "-"),
            ))
        if rows:
            print_table(
                f"Extension - filter bank throughput ({title})",
                ["subscriptions", "events", *(f"{kind} ev/s" for kind in KINDS),
                 "compiled speedup"],
                rows,
            )
