"""Extension experiment: wire-protocol throughput, pipelined vs request-response.

The TCP front end (:mod:`repro.net`) adds a real network round trip to every
published document.  A client that awaits each ack before sending the next
document (request-response) pays that round trip *and* defeats the service's
ingest batching — the server only ever sees one document in flight per
connection, so every document gets its own executor call.  A pipelining client
(:meth:`~repro.net.client.WireClient.publish_many`) writes a burst back to back:
round trips overlap with filtering, the server's reader keeps the ingest queue
fed, and batch coalescing amortizes the executor hop across the burst.

This benchmark replays the same multi-connection bursty traffic
(:func:`~repro.workloads.wire_traffic`, churn disabled so both modes produce
identical matched sets regardless of connection interleaving) against a real
localhost server both ways and asserts the architectural floor — pipelined
throughput at least ``REQUIRED_PIPELINE_SPEEDUP``x request-response — **in smoke
mode too**: overlapping round trips with work is a property of the pipeline
design, not of machine speed.  Correctness rides along: both modes must report
identical per-connection matched-set trails and per-document match counts.

Every run appends a timestamped ``wire_throughput`` entry (publish latency
p50/p95 included — per document in request-response mode, per burst in
pipelined mode) to ``BENCH_filterbank.json``; the CI gate
(``scripts/check_bench_trajectory.py``) enforces the floor on the latest
full-size entry, so the wire layer joins the committed performance trajectory.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import time

import pytest

from repro.net import WireClient, WireServer
from repro.workloads import split_setup, wire_summary, wire_traffic

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

DOCUMENT_COUNTS = [80] if SMOKE else [150, 500]
#: concurrent connections: deliberately few, because the comparison is about
#: per-connection pipelining — with many request-response connections the
#: *aggregate* traffic already keeps the service pipeline fed, which measures
#: connection-count parallelism rather than the protocol property under test
CONNECTIONS = 2 if SMOKE else 3
SUBSCRIPTIONS_PER_CLIENT = 8 if SMOKE else 16
TOPICS = 40
BURST = 12
#: notification-sized documents, as in the service benchmark: small documents
#: are where per-document overhead (round trip + executor hop) dominates, i.e.
#: exactly what pipelining exists to amortize
ENTRIES = 1
REPEATS = 3

#: asserted floor: pipelined vs request-response throughput at the largest
#: document count (asserted in smoke mode too — see module docstring)
REQUIRED_PIPELINE_SPEEDUP = 2.0

#: server-side batching configuration (same as the service benchmark's batched
#: mode, so the wire numbers are comparable to the in-process ones)
BATCH_MAX = 64

#: (documents, mode) -> measurement dict
_measurements = {}


def _scripts(documents: int):
    return wire_traffic(
        documents, connections=CONNECTIONS,
        subscriptions_per_client=SUBSCRIPTIONS_PER_CLIENT,
        topics=TOPICS, burst=BURST, entries=ENTRIES,
        churn_fraction=0.0,  # deterministic matched sets across modes
        seed=11)


async def _publish_phase(client, texts, mode, latencies, trail):
    """One connection's timed phase (churn is disabled: publishes only)."""
    started = time.perf_counter()
    if mode == "request_response":
        for text in texts:
            doc_started = time.perf_counter()
            result = await client.publish(text)
            latencies.append(time.perf_counter() - doc_started)
            trail.append(sorted(result.matched))
    else:
        results = await client.publish_many(texts)
        latencies.append(time.perf_counter() - started)
        for result in results:
            trail.append(sorted(result.matched))
    return time.perf_counter() - started


async def _replay(documents: int, mode: str) -> dict:
    scripts = _scripts(documents)
    latencies: list = []
    trails: dict = {}
    async with WireServer(batch_max=BATCH_MAX) as server:
        host, port = server.address
        clients = []
        try:
            # untimed setup, completed on EVERY connection before any publish:
            # with the full subscription set in place, a document's matched set
            # depends only on its text, so both modes produce identical trails
            # no matter how the event loop interleaves the connections
            phases = []
            for script in scripts:
                setup, rest = split_setup(script)
                client_id = script[0][1] if script else None
                client = await WireClient.connect(host, port,
                                                  client_id=client_id)
                clients.append(client)
                for _kind, _client, name, query in setup:
                    await client.subscribe(name, query)
                texts = [op[2] for op in rest]
                phases.append((client, texts,
                               trails.setdefault(client_id, [])))
            # timed phase: all connections publish concurrently; per-connection
            # elapsed is measured inside, the reported seconds are the wall
            # clock of the slowest connection (max, not sum)
            started = time.perf_counter()
            elapsed = await asyncio.gather(*(
                _publish_phase(client, texts, mode, latencies, trail)
                for client, texts, trail in phases))
            wall = time.perf_counter() - started
        finally:
            for client in clients:
                await client.close()
        metrics = server.service.metrics()
    return {
        "seconds": max(elapsed),
        "wall_seconds": wall,
        "documents": documents,
        "trails": {client: trail for client, trail in sorted(trails.items())},
        "notifications": metrics["notifications"],
        "batches": metrics["batches"],
        "largest_batch": metrics["largest_batch"],
        "latencies": latencies,
    }


def _measure(documents: int, mode: str) -> dict:
    """Median-of-``REPEATS`` replay, cached per configuration (the smoke-mode
    assertion uses best-of-repeats, same rationale as the service benchmark:
    the architectural property must not flake on one slow-scheduled repeat)."""
    key = (documents, mode)
    if key not in _measurements:
        runs = [asyncio.run(_replay(documents, mode)) for _ in range(REPEATS)]
        chosen = sorted(runs, key=lambda run: run["seconds"])[len(runs) // 2]
        chosen["seconds"] = statistics.median(run["seconds"] for run in runs)
        chosen["best_seconds"] = min(run["seconds"] for run in runs)
        _measurements[key] = chosen
    return _measurements[key]


@pytest.mark.parametrize("documents", DOCUMENT_COUNTS)
def test_modes_agree_on_matches(documents):
    """Pipelining must be invisible in the results: with churn disabled, each
    connection's per-document matched-set trail is identical in both modes."""
    serial = _measure(documents, "request_response")
    pipelined = _measure(documents, "pipelined")
    assert serial["trails"] == pipelined["trails"]
    assert serial["notifications"] == pipelined["notifications"]


def test_pipelining_feeds_server_batching():
    """The pipelined replay must actually coalesce on the server: strictly
    fewer ingest batches than documents, with at least one multi-doc batch."""
    pipelined = _measure(DOCUMENT_COUNTS[-1], "pipelined")
    assert pipelined["largest_batch"] > 1
    assert pipelined["batches"] < pipelined["documents"] \
        + sum(len(s) for s in _scripts(0))


def test_pipelined_outpaces_request_response():
    """The acceptance criterion, asserted in smoke mode too: pipelined
    publishes must sustain at least ``REQUIRED_PIPELINE_SPEEDUP``x the
    request-response throughput over real localhost sockets."""
    top = DOCUMENT_COUNTS[-1]
    serial = _measure(top, "request_response")
    pipelined = _measure(top, "pipelined")
    which = "best_seconds" if SMOKE else "seconds"
    speedup = serial[which] / pipelined[which]
    assert speedup >= REQUIRED_PIPELINE_SPEEDUP, (
        f"pipelined wire client only {speedup:.2f}x the request-response "
        f"throughput at {top} documents "
        f"(required: {REQUIRED_PIPELINE_SPEEDUP}x)"
    )


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_entry() -> dict:
    results = []
    for (documents, mode), m in sorted(_measurements.items()):
        serial = _measurements.get((documents, "request_response"))
        entry = {
            "mode": mode,
            "documents": documents,
            "connections": CONNECTIONS,
            "seconds": round(m["seconds"], 6),
            "documents_per_second": round(documents / m["seconds"]),
            "notifications": m["notifications"],
            "batches": m["batches"],
            "largest_batch": m["largest_batch"],
            "publish_p50_ms": round(_percentile(m["latencies"], 0.50) * 1e3, 3),
            "publish_p95_ms": round(_percentile(m["latencies"], 0.95) * 1e3, 3),
        }
        if mode == "pipelined" and serial is not None:
            entry["speedup_vs_request_response"] = round(
                serial["seconds"] / m["seconds"], 2)
        results.append(entry)
    return {
        "benchmark": "wire_throughput",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "required_speedup": REQUIRED_PIPELINE_SPEEDUP,
        "document_counts": DOCUMENT_COUNTS,
        "workload": {
            "connections": CONNECTIONS,
            "subscriptions_per_client": SUBSCRIPTIONS_PER_CLIENT,
            "topics": TOPICS, "burst": BURST, "entries": ENTRIES,
            "ops": wire_summary(_scripts(DOCUMENT_COUNTS[-1])),
        },
        "batching": {"batch_max": BATCH_MAX},
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    rows = []
    for documents in DOCUMENT_COUNTS:
        serial = _measurements.get((documents, "request_response"))
        pipelined = _measurements.get((documents, "pipelined"))
        if serial is None and pipelined is None:
            continue
        rows.append((
            documents,
            f"{documents / serial['seconds']:,.0f}" if serial else "-",
            f"{documents / pipelined['seconds']:,.0f}" if pipelined else "-",
            (f"{serial['seconds'] / pipelined['seconds']:.1f}x"
             if serial and pipelined else "-"),
            (f"{_percentile(serial['latencies'], 0.95) * 1e3:.2f}ms"
             if serial else "-"),
            (f"{_percentile(pipelined['latencies'], 0.95) * 1e3:.2f}ms"
             if pipelined else "-"),
        ))
    if rows:
        print_table(
            "Extension - wire protocol throughput (localhost TCP, "
            f"{CONNECTIONS} connections)",
            ["documents", "req-resp docs/s", "pipelined docs/s", "speedup",
             "req-resp p95", "pipelined burst p95"],
            rows,
        )
