"""Experiments E05/E10: the document-depth lower bound (Theorems 4.6 / 7.14).

The harness builds the depth fooling families for increasing depth budgets d, verifies
the fooling-set property, and measures the filter's cut state.  The regenerated series is

    d, certified lower bound (~ (log2 d)/2 bits), filter cut bits

The paper's claim to check: the required state grows like log d (the level counter),
i.e. doubling d adds a constant number of bits, not a constant factor.
"""

from __future__ import annotations

import math

import pytest

from repro.lowerbounds import (
    build_depth_family,
    build_simple_depth_family,
    measure_filter_cut_state,
    verify_depth_family,
)
from repro.xpath import parse_query

from .conftest import print_table

_simple_results = []
_general_results = []


class _CutPair:
    """Adapter exposing a three-way split as a (prefix, suffix) pair for measurement."""

    def __init__(self, instance):
        self.alpha = list(instance.alpha)
        self.beta = list(instance.beta) + list(instance.gamma)


@pytest.mark.parametrize("depth", [8, 32, 128, 512])
def test_simple_depth_bound(benchmark, depth):
    """Theorem 4.6 family for /a/b."""
    family = build_simple_depth_family(depth)
    check = verify_depth_family(family, max_cross_checks=60)
    assert check.valid, check.violations[:3]
    query = family.query
    pairs = [_CutPair(i) for i in family.instances]

    measurement = benchmark(lambda: measure_filter_cut_state(query, pairs))
    lower_bound = family.expected_bound_bits
    assert measurement.max_state_bits >= lower_bound
    benchmark.extra_info.update({
        "depth": depth,
        "lower_bound_bits": round(lower_bound, 2),
        "filter_cut_bits": measurement.max_state_bits,
    })
    _simple_results.append((depth, round(lower_bound, 2), measurement.max_state_bits))


@pytest.mark.parametrize("name,query_text", [
    ("thm42", "/a[c[.//e and f] and b > 5]"),
    ("a-b-c", "/a[b > 5]/c"),
])
def test_general_depth_bound(benchmark, name, query_text):
    """Theorem 7.14 family built around canonical documents."""
    query = parse_query(query_text)
    family = build_depth_family(query, 64)
    check = verify_depth_family(family, max_cross_checks=60)
    assert check.valid, check.violations[:3]
    pairs = [_CutPair(i) for i in family.instances]

    measurement = benchmark(lambda: measure_filter_cut_state(query, pairs))
    benchmark.extra_info.update({
        "query": query_text,
        "instances": len(family.instances),
        "lower_bound_bits": round(family.expected_bound_bits, 2),
        "filter_cut_bits": measurement.max_state_bits,
    })
    _general_results.append((name, len(family.instances),
                             round(family.expected_bound_bits, 2),
                             measurement.max_state_bits))


def teardown_module(module):  # noqa: D103
    if _simple_results:
        print_table(
            "E05 - document-depth bound, /a/b (Theorem 4.6)",
            ["max depth d", "LB bits (log d / 2)", "filter cut bits"],
            sorted(_simple_results),
        )
    if _general_results:
        print_table(
            "E10 - document-depth bound, general queries (Theorem 7.14)",
            ["query", "instances", "LB bits", "filter cut bits"],
            sorted(_general_results),
        )
