"""Capacity planning vs. the governor's live sample (the ceiling cross-check).

PR 8's resource governor enforces a configured memory ceiling against the
bank's live ``memory_report().modeled_bits`` — standing plan state plus the
folded runtime high-water marks.  That only keeps a service *correct* at its
ceiling if an operator can size the ceiling from static facts: measured
standing bits at registration time plus the cost model's Theorem 8.8 runtime
quote per subscription (``analyze_query(...).predicted_memory_bits``,
instantiated at the document depth and text-size assumptions).

This benchmark closes that loop.  For each subscription count it registers
the shared-prefix workload (descendant axes + a recursive document — the
loosest, most load-bearing regime), computes the planner's ceiling::

    ceiling_bits = standing_bits(after registration)
                 + sum(predicted_memory_bits over subscriptions)

streams the document, and asserts the governor-visible sample never exceeds
it.  The appended ``memory_ceiling`` trajectory entry records
``ceiling_over_modeled`` — ceiling divided by the measured peak
``modeled_bits`` — and ``scripts/check_bench_trajectory.py`` gates it at
>= 1.0: a PR whose engine outgrows the statically-planned ceiling (or whose
analyzer under-quotes the marginal subscription) cannot merge.  Like the
memory-model benchmark these assertions are correctness, not performance, so
they run in smoke mode too (smaller sizes only).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.costmodel import analyze_query
from repro.core import CompiledFilterBank
from repro.workloads import shared_prefix_feed, shared_prefix_subscriptions
from repro.xpath import parse_query

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

SUBSCRIPTION_COUNTS = [25] if SMOKE else [100, 1000]
ENTRIES = 10 if SMOKE else 60

#: workload shape, matched to the memory-model benchmark so the two entries
#: describe the same regime from the per-subscription and whole-bank sides
BRANCHING = 4
SUFFIX_DEPTH = 3
DESCENDANT_FRACTION = 0.15
RECURSION = 2
MAX_TEXT_CHARS = 16

#: (subscriptions,) -> measurement dict
_measurements = {}


def _measure(subscriptions: int) -> dict:
    key = (subscriptions,)
    if key in _measurements:
        return _measurements[key]

    bank = CompiledFilterBank(stats=True)
    queries = {}
    for index, text in enumerate(shared_prefix_subscriptions(
            subscriptions, branching=BRANCHING, suffix_depth=SUFFIX_DEPTH,
            descendant_fraction=DESCENDANT_FRACTION, seed=7)):
        name = f"sub{index}"
        queries[name] = parse_query(text)
        bank.register(name, queries[name])
    standing_bits = bank.memory_report().standing_bits

    document = shared_prefix_feed(
        ENTRIES, branching=BRANCHING, suffix_depth=SUFFIX_DEPTH,
        recursion=RECURSION, seed=13)
    depth = document.depth()
    quoted_bits = sum(
        analyze_query(query, max_depth=depth,
                      max_text_chars=MAX_TEXT_CHARS).predicted_memory_bits
        for query in queries.values())
    ceiling_bits = standing_bits + quoted_bits

    events = document.events()
    start = time.perf_counter()
    result = bank.filter_events(iter(events))
    seconds = time.perf_counter() - start

    report = bank.memory_report()
    _measurements[key] = {
        "subscriptions": subscriptions,
        "depth": depth,
        "events": len(events),
        "seconds": seconds,
        "matched": len(result.matched),
        "standing_bits": standing_bits,
        "quoted_bits": quoted_bits,
        "ceiling_bits": ceiling_bits,
        "modeled_bits": report.modeled_bits,
        "peak_document_bits": report.peak_document_bits,
    }
    return _measurements[key]


@pytest.mark.parametrize("subscriptions", SUBSCRIPTION_COUNTS)
def test_planned_ceiling_dominates_live_sample(subscriptions):
    """The governor sample never exceeds the statically planned ceiling."""
    m = _measure(subscriptions)
    assert m["peak_document_bits"] > 0, "the stream never exercised the bank"
    assert m["modeled_bits"] <= m["ceiling_bits"], (
        f"live modeled bits {m['modeled_bits']} exceed the planned ceiling "
        f"{m['ceiling_bits']} (standing {m['standing_bits']} + quoted "
        f"{m['quoted_bits']}) — a governor configured from the cost model "
        f"would run at HARD in steady state")


def _run_entry() -> dict:
    results = []
    for (subscriptions,), m in sorted(_measurements.items()):
        results.append({
            "subscriptions": subscriptions,
            "events": m["events"],
            "document_depth": m["depth"],
            "max_text_chars": MAX_TEXT_CHARS,
            "seconds": round(m["seconds"], 6),
            "matched": m["matched"],
            "standing_bits": m["standing_bits"],
            "quoted_bits": m["quoted_bits"],
            "ceiling_bits": m["ceiling_bits"],
            "modeled_bits": m["modeled_bits"],
            "peak_document_bits": m["peak_document_bits"],
            "quoted_bytes_per_subscription":
                m["quoted_bits"] // 8 // subscriptions,
            "modeled_bytes_per_subscription":
                m["modeled_bits"] // 8 // subscriptions,
            "ceiling_over_modeled": round(
                m["ceiling_bits"] / m["modeled_bits"], 2),
        })
    return {
        "benchmark": "memory_ceiling",
        "smoke": SMOKE,
        "required_min_ratio": 1.0,
        "workload": {
            "entries": ENTRIES, "branching": BRANCHING,
            "suffix_depth": SUFFIX_DEPTH, "recursion": RECURSION,
            "descendant_fraction": DESCENDANT_FRACTION,
        },
        "subscription_counts": SUBSCRIPTION_COUNTS,
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    rows = []
    for (subscriptions,), m in sorted(_measurements.items()):
        rows.append((
            subscriptions, m["depth"], m["standing_bits"], m["quoted_bits"],
            m["modeled_bits"],
            f"{m['ceiling_bits'] / m['modeled_bits']:.2f}",
        ))
    print_table(
        "planned memory ceiling vs governor-visible sample",
        ("subs", "doc depth", "standing bits", "quoted bits",
         "live modeled bits", "ceiling/modeled"),
        rows,
    )
