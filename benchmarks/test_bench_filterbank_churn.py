"""Extension experiment: subscription churn under incremental trie maintenance.

A live pub/sub service registers and unregisters subscriptions continuously while
serving traffic.  Before PR 3, every ``register``/``unregister`` on
:class:`~repro.core.CompiledFilterBank` discarded the shared prefix trie, so the next
document paid a full rebuild — O(total registered steps) per churn operation.  With
incremental maintenance an operation splices one plan into or out of the live trie in
O(query size).

The benchmark replays the same :func:`~repro.workloads.subscription_churn` operation
sequence against a warm bank two ways:

* ``incremental`` — apply the op; the splice happens inline and the trie stays
  current (this is the production path);
* ``rebuild``     — apply the op, then force
  :meth:`~repro.core.CompiledFilterBank.rebuild_trie` — the pre-PR-3 cost model,
  where the op invalidates the trie and the next filtering call rebuilds it.

Both variants interleave a document filter every ``FILTER_EVERY`` ops, asserting en
passant that the churned trie keeps producing the same matched sets as a freshly
built bank.  The acceptance criterion is asserted at the largest bank size:
incremental maintenance must be at least ``REQUIRED_CHURN_SPEEDUP``x faster than
rebuild-per-op.  Results are appended to the ``BENCH_filterbank.json`` trajectory.
``FILTERBANK_BENCH_SMOKE=1`` shrinks the sizes for CI (the speedup assertion is
skipped; the correctness assertions are not).
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.core import MatchOnlyFilterBank
from repro.workloads import (
    shared_prefix_feed,
    shared_prefix_subscriptions,
    subscription_churn,
)
from repro.xpath import parse_query

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

#: warm bank sizes the churn runs against
BANK_SIZES = [20] if SMOKE else [100, 1000]
#: churn operations per run
CHURN_OPS = 30 if SMOKE else 400
#: interleave one document filter every this many operations
FILTER_EVERY = 10 if SMOKE else 50
#: timing repeats per configuration; the median is reported
REPEATS = 2 if SMOKE else 3

REQUIRED_CHURN_SPEEDUP = 10.0

BRANCHING = 4
SUFFIX_DEPTH = 3

#: (bank_size, variant) -> {"seconds", "ops", "matched_trail"}
_measurements = {}


def _warm_subscriptions(size: int):
    return shared_prefix_subscriptions(
        size, branching=BRANCHING, suffix_depth=SUFFIX_DEPTH, seed=11)


def _operations():
    return subscription_churn(
        CHURN_OPS, branching=BRANCHING, suffix_depth=SUFFIX_DEPTH,
        duplication=0.3, unregister_fraction=0.45, seed=17)


def _document():
    return shared_prefix_feed(5 if SMOKE else 15, branching=BRANCHING,
                              suffix_depth=SUFFIX_DEPTH, seed=43)


def _build_warm_bank(size: int) -> MatchOnlyFilterBank:
    bank = MatchOnlyFilterBank()
    for index, text in enumerate(_warm_subscriptions(size)):
        bank.register(f"warm{index}", parse_query(text))
    bank.trie_size()  # materialize the trie so churn ops run against a live trie
    return bank


def _apply(bank, op) -> None:
    if op[0] == "register":
        bank.register(op[1], parse_query(op[2]))
    else:
        bank.unregister(op[1])


def _measure(size: int, variant: str) -> dict:
    """Median-of-``REPEATS`` wall-clock cost of the churn sequence, cached."""
    key = (size, variant)
    if key not in _measurements:
        operations = _operations()
        events = _document().events()
        samples = []
        matched_trail = None
        for _ in range(REPEATS):
            bank = _build_warm_bank(size)
            trail = []
            start = time.perf_counter()
            for index, op in enumerate(operations):
                _apply(bank, op)
                if variant == "rebuild":
                    bank.rebuild_trie()
                if (index + 1) % FILTER_EVERY == 0:
                    trail.append(sorted(bank.filter_events(iter(events)).matched))
            samples.append(time.perf_counter() - start)
            matched_trail = trail
        _measurements[key] = {
            "seconds": statistics.median(samples),
            "ops": len(operations),
            "matched_trail": matched_trail,
        }
    return _measurements[key]


@pytest.mark.parametrize("size", BANK_SIZES)
def test_churned_bank_matches_fresh_rebuilds(size):
    """Correctness en passant: after the full churn sequence, the incrementally
    maintained bank equals a fresh bank registered with the final state, and the two
    churn variants saw identical matched sets at every interleaved filter."""
    incremental = _measure(size, "incremental")
    rebuild = _measure(size, "rebuild")
    assert incremental["matched_trail"] == rebuild["matched_trail"]

    bank = _build_warm_bank(size)
    for op in _operations():
        _apply(bank, op)
    fresh = MatchOnlyFilterBank()
    for name in bank.subscriptions():
        fresh.register(name, bank.query(name))
    assert bank.trie_size() == fresh.trie_size()
    events = _document().events()
    assert bank.filter_events(iter(events)).matched == \
        fresh.filter_events(iter(events)).matched


def test_incremental_maintenance_outpaces_rebuild_per_op():
    """PR-3 criterion, asserted: incremental register/unregister is at least
    ``REQUIRED_CHURN_SPEEDUP``x faster than rebuild-per-op at the largest bank."""
    top = BANK_SIZES[-1]
    incremental = _measure(top, "incremental")
    rebuild = _measure(top, "rebuild")
    speedup = rebuild["seconds"] / incremental["seconds"]
    if not SMOKE:
        assert speedup >= REQUIRED_CHURN_SPEEDUP, (
            f"incremental maintenance only {speedup:.2f}x faster than "
            f"rebuild-per-op at {top} warm subscriptions "
            f"(required: {REQUIRED_CHURN_SPEEDUP}x)"
        )


def _run_entry() -> dict:
    results = []
    for (size, variant), m in sorted(_measurements.items()):
        rebuild = _measurements.get((size, "rebuild"))
        entry = {
            "warm_subscriptions": size,
            "variant": variant,
            "churn_ops": m["ops"],
            "seconds": round(m["seconds"], 6),
            "ops_per_second": round(m["ops"] / m["seconds"]),
        }
        if variant == "incremental" and rebuild is not None:
            entry["speedup_vs_rebuild"] = round(
                rebuild["seconds"] / m["seconds"], 2)
        results.append(entry)
    return {
        "benchmark": "filterbank_churn",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "required_speedup": REQUIRED_CHURN_SPEEDUP,
        "bank_sizes": BANK_SIZES,
        "churn_ops": CHURN_OPS,
        "filter_every": FILTER_EVERY,
        "workload": {"branching": BRANCHING, "suffix_depth": SUFFIX_DEPTH,
                     "duplication": 0.3, "unregister_fraction": 0.45},
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    rows = []
    for size in BANK_SIZES:
        incremental = _measurements.get((size, "incremental"))
        rebuild = _measurements.get((size, "rebuild"))
        if incremental is None and rebuild is None:
            continue
        rows.append((
            size,
            incremental["ops"] if incremental else "-",
            f"{incremental['ops'] / incremental['seconds']:,.0f}"
            if incremental else "-",
            f"{rebuild['ops'] / rebuild['seconds']:,.0f}" if rebuild else "-",
            (f"{rebuild['seconds'] / incremental['seconds']:.1f}x"
             if incremental and rebuild else "-"),
        ))
    if rows:
        print_table(
            "Extension - subscription churn (incremental trie maintenance)",
            ["warm subs", "churn ops", "incremental ops/s", "rebuild ops/s",
             "incremental speedup"],
            rows,
        )
