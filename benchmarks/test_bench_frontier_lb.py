"""Experiments E02/E03/E08: the query-frontier-size lower bound (Theorems 4.2 / 7.1).

For each query the harness builds the 2^FS(Q) fooling-set family, verifies the
fooling-set property against the reference evaluator, and measures the state our
streaming filter must carry across the prefix/suffix cut.  The regenerated series is

    query, FS(Q) (= certified lower bound, bits), filter tuples at the cut,
    filter state bits at the cut

The paper's claim to check: the lower bound holds (the filter can never use fewer than
FS(Q) tuples on this family) and the algorithm is close to it (tuples ~ FS(Q)).
"""

from __future__ import annotations

import pytest

from repro.core import query_frontier_size
from repro.lowerbounds import (
    build_frontier_family,
    measure_filter_cut_state,
    verify_frontier_family,
)
from repro.xpath import parse_query

from .conftest import print_table

FRONTIER_QUERIES = {
    "thm42": "/a[c[.//e and f] and b > 5]",
    "flat-4": "/r[c0 and c1 and c2 and c3]",
    "flat-6": "/r[c0 and c1 and c2 and c3 and c4 and c5]",
    "fig9": "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
    "balanced-2x3": "/n0[n1[n2 and n3] and n4[n5 and n6]]",
}

_results = []


@pytest.mark.parametrize("name,query_text", sorted(FRONTIER_QUERIES.items()))
def test_frontier_lower_bound(benchmark, name, query_text):
    query = parse_query(query_text)
    family = build_frontier_family(query, max_subsets=64)
    check = verify_frontier_family(family, max_cross_checks=128)
    assert check.valid, check.violations[:3]

    def run():
        return measure_filter_cut_state(query, family.pairs,
                                        [True] * len(family.pairs))

    measurement = benchmark(run)
    fs = query_frontier_size(query)
    assert measurement.decisions_correct
    assert measurement.max_frontier_tuples >= fs
    benchmark.extra_info.update({
        "query": query_text,
        "FS(Q)": fs,
        "fooling_set_size": len(family.pairs),
        "lower_bound_bits": family.expected_bound_bits,
        "filter_cut_tuples": measurement.max_frontier_tuples,
        "filter_cut_bits": measurement.max_state_bits,
    })
    _results.append((name, fs, len(family.pairs), measurement.max_frontier_tuples,
                     measurement.max_state_bits))


def teardown_module(module):  # noqa: D103 - prints the regenerated series
    if _results:
        print_table(
            "E03/E08 - frontier-size lower bound vs. filter state at the cut",
            ["query", "FS(Q)=LB bits", "fooling pairs", "filter tuples", "filter bits"],
            sorted(_results),
        )
