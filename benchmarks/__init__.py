"""Package marker so relative imports (e.g. ``from ..strategies import ...``) resolve."""
