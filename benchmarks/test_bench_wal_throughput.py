"""Extension experiment: the durability tax — WAL-on vs in-memory throughput.

With ``durable_dir`` set, every accepted publish pays a write-ahead-log append
(CRC-framed record, flushed to the OS page cache) *before* ingest-queue
admission, plus a cursor record per acknowledged delivery.  That is the price
of at-least-once delivery across ``kill -9`` (see ``tests/faultinject/``), and
this benchmark pins it down: the same single-session burst
(:func:`~repro.workloads.publish_burst`) is replayed through the service
in-memory and with the WAL at each fsync policy, and the floor asserted — in
smoke mode too, since the append path's cost structure is architectural — is
that ``fsync="interval"`` (the recommended production policy) sustains at
least ``REQUIRED_WAL_RATIO`` of the in-memory document throughput.
``fsync="always"`` rides along unasserted: its per-publish ``fsync(2)`` cost
is hardware truth, not a property this code can promise.

Correctness rides along: every mode must produce the identical per-document
matched trail, and the WAL must physically contain the burst (its size bounds
the document text from below).  Every run appends a timestamped
``wal_throughput`` entry to ``BENCH_filterbank.json``; the CI gate
(``scripts/check_bench_trajectory.py``) enforces the ``wal_overhead`` floor on
the latest full-size entry.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import statistics
import tempfile
import time

import pytest

from repro.service import PubSubService
from repro.service.server import WAL_FILENAME
from repro.workloads import publish_burst

from .conftest import append_bench_run, print_table

SMOKE = os.environ.get("FILTERBANK_BENCH_SMOKE") == "1"

DOCUMENT_COUNTS = [100] if SMOKE else [300, 1000]
SUBSCRIPTIONS = 8 if SMOKE else 16
TOPICS = 8
ENTRIES = 3
REPEATS = 3
BATCH_MAX = 64

#: asserted floor: WAL-on (``fsync="interval"``) document throughput divided
#: by in-memory throughput, at the largest document count (the CI gate's
#: ``wal_overhead`` floor reads the same ratio from the committed entry)
REQUIRED_WAL_RATIO = 0.5

#: mode name -> PubSubService durability configuration
MODES = {
    "memory": None,
    "wal_interval": {"fsync": "interval"},
    "wal_always": {"fsync": "always"},
}

#: (documents, mode) -> measurement dict
_measurements = {}


async def _replay(documents: int, mode: str) -> dict:
    docs = publish_burst(documents, topics=TOPICS, entries=ENTRIES, seed=13)
    durable_dir = None
    config = dict(batch_max=BATCH_MAX)
    if MODES[mode] is not None:
        durable_dir = tempfile.mkdtemp(prefix="walbench-")
        config.update(durable_dir=durable_dir, **MODES[mode])
    try:
        async with PubSubService(**config) as service:
            session = await service.connect("bench")
            for index in range(SUBSCRIPTIONS):
                topic = index % TOPICS
                threshold = (index * 13) % 90
                await session.subscribe(
                    f"s{index}",
                    f"/feed/topic{topic}[score{topic} > {threshold}]")
            # untimed warm-up: executor spin-up and first-append file creation
            # are one-time costs, not part of the steady-state tax
            await service.publish("<feed></feed>")
            started = time.perf_counter()
            results = await service.publish_many(docs)
            seconds = time.perf_counter() - started
            trail = [(r.document_id, sorted(r.matched)) for r in results]
            wal_bytes = 0
            if durable_dir is not None:
                wal_bytes = os.path.getsize(
                    os.path.join(durable_dir, WAL_FILENAME))
        return {
            "seconds": seconds,
            "documents": documents,
            "trail": trail,
            "wal_bytes": wal_bytes,
            "text_bytes": sum(len(doc) for doc in docs),
        }
    finally:
        if durable_dir is not None:
            shutil.rmtree(durable_dir, ignore_errors=True)


def _measure(documents: int, mode: str) -> dict:
    """Median-of-``REPEATS`` replay, cached per configuration (the smoke-mode
    assertion uses best-of-repeats, as in the other architectural floors)."""
    key = (documents, mode)
    if key not in _measurements:
        runs = [asyncio.run(_replay(documents, mode)) for _ in range(REPEATS)]
        chosen = sorted(runs, key=lambda run: run["seconds"])[len(runs) // 2]
        chosen["seconds"] = statistics.median(run["seconds"] for run in runs)
        chosen["best_seconds"] = min(run["seconds"] for run in runs)
        _measurements[key] = chosen
    return _measurements[key]


@pytest.mark.parametrize("documents", DOCUMENT_COUNTS)
def test_wal_is_invisible_in_the_results(documents):
    """Durability must change persistence, never matching: all three modes
    report the identical per-document matched trail."""
    memory = _measure(documents, "memory")
    for mode in ("wal_interval", "wal_always"):
        assert _measure(documents, mode)["trail"] == memory["trail"]


def test_the_wal_physically_contains_the_burst():
    """The log on disk is at least as large as the document text it claims to
    make durable (records add framing on top)."""
    for mode in ("wal_interval", "wal_always"):
        m = _measure(DOCUMENT_COUNTS[-1], mode)
        assert m["wal_bytes"] > m["text_bytes"]
    assert _measure(DOCUMENT_COUNTS[-1], "memory")["wal_bytes"] == 0


def test_interval_fsync_tax_stays_within_budget():
    """The acceptance criterion, asserted in smoke mode too: with
    ``fsync="interval"`` the WAL costs at most half the in-memory
    throughput."""
    top = DOCUMENT_COUNTS[-1]
    memory = _measure(top, "memory")
    wal = _measure(top, "wal_interval")
    which = "best_seconds" if SMOKE else "seconds"
    ratio = memory[which] / wal[which]
    assert ratio >= REQUIRED_WAL_RATIO, (
        f"fsync=interval WAL sustains only {ratio:.2f}x the in-memory "
        f"throughput at {top} documents (required: {REQUIRED_WAL_RATIO}x)"
    )


def _run_entry() -> dict:
    results = []
    for (documents, mode), m in sorted(_measurements.items()):
        memory = _measurements.get((documents, "memory"))
        entry = {
            "mode": mode,
            "documents": documents,
            "seconds": round(m["seconds"], 6),
            "documents_per_second": round(documents / m["seconds"]),
            "wal_bytes": m["wal_bytes"],
        }
        if mode != "memory" and memory is not None:
            entry["throughput_vs_memory"] = round(
                memory["seconds"] / m["seconds"], 3)
        results.append(entry)
    return {
        "benchmark": "wal_throughput",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "required_ratio": REQUIRED_WAL_RATIO,
        "document_counts": DOCUMENT_COUNTS,
        "workload": {
            "subscriptions": SUBSCRIPTIONS,
            "topics": TOPICS,
            "entries": ENTRIES,
        },
        "batching": {"batch_max": BATCH_MAX},
        "results": results,
    }


def teardown_module(module):  # noqa: D103
    if not _measurements:
        return
    append_bench_run(_run_entry())
    rows = []
    for documents in DOCUMENT_COUNTS:
        by_mode = {mode: _measurements.get((documents, mode))
                   for mode in MODES}
        if not any(by_mode.values()):
            continue
        memory = by_mode["memory"]
        rows.append((
            documents,
            f"{documents / memory['seconds']:,.0f}" if memory else "-",
            (f"{documents / by_mode['wal_interval']['seconds']:,.0f}"
             if by_mode["wal_interval"] else "-"),
            (f"{documents / by_mode['wal_always']['seconds']:,.0f}"
             if by_mode["wal_always"] else "-"),
            (f"{memory['seconds'] / by_mode['wal_interval']['seconds']:.2f}x"
             if memory and by_mode["wal_interval"] else "-"),
            (f"{by_mode['wal_interval']['wal_bytes'] / 1024:,.0f}KiB"
             if by_mode["wal_interval"] else "-"),
        ))
    if rows:
        print_table(
            "Extension - durability tax (publish WAL vs in-memory)",
            ["documents", "memory docs/s", "interval docs/s",
             "always docs/s", "interval ratio", "wal size"],
            rows,
        )
