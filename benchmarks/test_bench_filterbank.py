"""Extension experiment: multi-subscription filtering (the dissemination front end).

The paper's motivating application (selective dissemination of information) registers
many XPath subscriptions and filters every incoming document against all of them.  The
sweep measures how the filter bank's time and aggregate memory scale with the number of
subscriptions, and compares the memory against buffering the document once (DOM).

Expected shape: time and memory grow linearly with the number of subscriptions and stay
independent of the document size, while the DOM cost is independent of the subscription
count but linear in the document.
"""

from __future__ import annotations

import pytest

from repro.baselines import NaiveDOMFilter
from repro.core import FilterBank
from repro.workloads import book_catalog, frontier_sweep_queries
from repro.xpath import parse_query

from .conftest import print_table

_rows = []


def _subscriptions(count: int):
    """A pool of `count` distinct catalog subscriptions."""
    templates = [
        "/catalog/book[price < {v}]",
        "/catalog/book[year > {y}]",
        '/catalog/book[genre = "{g}" and price < {v}]',
        "//book[price > {v} and year < {y}]",
    ]
    genres = ("fiction", "reference", "biography", "science", "poetry")
    queries = []
    for index in range(count):
        template = templates[index % len(templates)]
        text = template.format(v=10 + index, y=1995 + (index % 10), g=genres[index % 5])
        queries.append((f"sub{index}", parse_query(text)))
    return queries


@pytest.mark.parametrize("subscriptions", [4, 16, 64])
def test_filterbank_scaling(benchmark, subscriptions):
    bank = FilterBank()
    for name, query in _subscriptions(subscriptions):
        bank.register(name, query)
    document = book_catalog(100, seed=31)

    result = benchmark(lambda: bank.filter_document(document))
    dom = NaiveDOMFilter(parse_query("/catalog"))
    dom.run_document(document)
    dom_bits = dom.memory_report().total_bits
    benchmark.extra_info.update({
        "subscriptions": subscriptions,
        "matched": len(result.matched),
        "bank_bits": result.total_peak_memory_bits,
        "dom_bits": dom_bits,
    })
    _rows.append((subscriptions, len(result.matched), result.total_peak_memory_bits,
                  dom_bits))


@pytest.mark.parametrize("width", [4, 16])
def test_filterbank_memory_independent_of_document_size(benchmark, width):
    bank = FilterBank()
    for size, query in frontier_sweep_queries([width]).items():
        bank.register(f"flat{size}", query)
    small = book_catalog(10, seed=7)
    large = book_catalog(500, seed=7)

    def run():
        return bank.filter_document(small), bank.filter_document(large)

    small_result, large_result = benchmark(run)
    # neither document matches the synthetic flat query, but the memory comparison is
    # the point: the bank's state does not grow with the document
    assert large_result.total_peak_memory_bits <= small_result.total_peak_memory_bits * 2
    benchmark.extra_info.update({
        "width": width,
        "small_doc_bits": small_result.total_peak_memory_bits,
        "large_doc_bits": large_result.total_peak_memory_bits,
    })


def teardown_module(module):  # noqa: D103
    if _rows:
        print_table(
            "Extension - filter-bank scaling with the number of subscriptions",
            ["subscriptions", "matched", "bank peak bits", "DOM bits (one buffer)"],
            sorted(_rows),
        )
