"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so that
``python setup.py develop`` works in offline environments where the ``wheel`` package
(required by pip's PEP 660 editable-install path) is unavailable.
"""

from setuptools import setup

setup()
