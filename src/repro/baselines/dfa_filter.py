"""Baselines: lazy and eager DFA filtering of a linear path query.

These model the deterministic-automaton approach (Green et al. style): the NFA of the
query is determinized by the subset construction — either up front (*eager*), which pays
for every reachable subset, or on demand while the stream is processed (*lazy*), which
pays only for the subsets the document actually visits but keeps the growing transition
table across documents.  In both cases the runtime state is a stack of DFA state ids
(one per open element), and the dominant memory cost is the transition table, which is
what the paper's Section 1.2 identifies as the first source of memory blow-up.
"""

from __future__ import annotations

from typing import Iterable, List

from ..instrument.memory import AutomatonMemoryModel, bits_for
from ..xmlstream.events import EndElement, Event, StartDocument, StartElement
from ..xpath.query import Query
from .automata import DFA, PathNFA, determinize
from .base import BaselineFilter, MemoryReport


class _DFAFilterBase(BaselineFilter):
    """Shared stream-processing loop for the two DFA baselines."""

    def __init__(self, query: Query, dfa: DFA) -> None:
        self.query = query
        self.dfa = dfa
        self._model = AutomatonMemoryModel()
        self._peak_stack_depth = 0

    def run(self, events: Iterable[Event]) -> bool:
        stack: List[int] = []
        matched = False
        self._peak_stack_depth = 0
        for event in events:
            if isinstance(event, StartDocument):
                stack = [self.dfa.initial_id]
                matched = matched or self.dfa.is_accepting(stack[-1])
            elif isinstance(event, StartElement):
                state = self.dfa.transition(stack[-1], event.name)
                stack.append(state)
                matched = matched or self.dfa.is_accepting(state)
            elif isinstance(event, EndElement):
                stack.pop()
            self._peak_stack_depth = max(self._peak_stack_depth, len(stack))
        return matched

    def memory_report(self) -> MemoryReport:
        table_bits = self._model.transition_table_bits(
            self.dfa.state_count, len(self.dfa.alphabet) + 1
        )
        stack_bits = self._model.stack_bits(self._peak_stack_depth, self.dfa.state_count)
        return MemoryReport(
            algorithm=self.name,
            total_bits=table_bits + stack_bits + bits_for(self._peak_stack_depth + 1),
            components={
                "dfa_states": self.dfa.state_count,
                "transition_entries": self.dfa.transition_count,
                "table_bits": table_bits,
                "peak_stack_depth": self._peak_stack_depth,
                "stack_bits": stack_bits,
            },
        )


class LazyDFAFilter(_DFAFilterBase):
    """Determinize on demand: only the subsets visited by the stream are materialized."""

    name = "lazy-dfa"

    def __init__(self, query: Query) -> None:
        super().__init__(query, DFA(nfa=PathNFA(query), alphabet=list(PathNFA(query).alphabet)))


class EagerDFAFilter(_DFAFilterBase):
    """Full subset construction up front (the worst-case transition-table cost)."""

    name = "eager-dfa"

    def __init__(self, query: Query) -> None:
        nfa = PathNFA(query)
        super().__init__(query, determinize(nfa))
