"""The pre-index multi-subscription filter bank (per-event × per-filter loop).

This is the original :class:`~repro.core.filterbank.FilterBank` dispatch strategy, kept
verbatim as a baseline: every event of the document stream is fed to every registered
:class:`~repro.core.filter.StreamingFilter`, so the per-event cost is O(#subscriptions)
regardless of how many subscriptions could actually react to the event.  The throughput
benchmark compares it against the indexed shared-dispatch bank, which routes each
element event only to the filters whose queries mention its name.

Both banks produce identical matched sets and per-query statistics on complete
document streams (a hypothesis property test enforces this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.filter import StreamingFilter
from ..core.filterbank import BankResult
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import EndDocument, Event
from ..xpath.query import Query


class NaiveFilterBank:
    """A set of named XPath subscriptions, each fed every event of every document."""

    def __init__(self) -> None:
        self._filters: Dict[str, StreamingFilter] = {}

    # ------------------------------------------------------------------ registration
    def register(self, name: str, query: Query) -> None:
        """Register a subscription under a unique name.

        Raises ``ValueError`` for duplicate names and
        :class:`~repro.core.errors.UnsupportedQueryError` for unsupported queries.
        """
        if name in self._filters:
            raise ValueError(f"a subscription named {name!r} is already registered")
        self._filters[name] = StreamingFilter(query)

    def unregister(self, name: str) -> None:
        """Remove a subscription; unknown names raise ``KeyError``."""
        del self._filters[name]

    def subscriptions(self) -> List[str]:
        """The registered subscription names, in registration order."""
        return list(self._filters)

    def __len__(self) -> int:
        return len(self._filters)

    def query(self, name: str) -> Query:
        """The query registered under ``name``."""
        return self._filters[name].query

    # ------------------------------------------------------------------ filtering
    def filter_events(self, events: Iterable[Event]) -> BankResult:
        """Feed one document stream to every subscription (a single pass over events)."""
        outcomes: Dict[str, Optional[bool]] = {name: None for name in self._filters}
        saw_end = False
        completed = False
        try:
            for event in events:
                for name, streaming_filter in self._filters.items():
                    outcomes[name] = streaming_filter.process_event(event)
                if isinstance(event, EndDocument):
                    saw_end = True
            if not saw_end:
                raise ValueError("event stream did not contain an endDocument event")
            completed = True
        finally:
            if not completed:
                for streaming_filter in self._filters.values():
                    streaming_filter.reset()
        matched = [name for name, outcome in outcomes.items() if outcome]
        stats = {name: streaming_filter.stats
                 for name, streaming_filter in self._filters.items()}
        return BankResult(matched=matched, per_query_stats=stats)

    def filter_document(self, document: XMLDocument) -> BankResult:
        """Convenience wrapper over :meth:`filter_events`."""
        return self.filter_events(document.events())
