"""Baseline: NFA simulation of a linear path query over the document stream.

The filter keeps a stack of NFA state *sets*: on ``startElement`` the next set is
computed from the set on top of the stack, on ``endElement`` the set is popped.  The
document matches when an accepting set is ever reached.  Memory is the stack of state
sets (one bit per NFA state per frame) — linear in the query size times the document
depth, but without any transition table.
"""

from __future__ import annotations

from typing import Iterable, List

from ..instrument.memory import AutomatonMemoryModel, bits_for
from ..xmlstream.events import EndElement, Event, StartDocument, StartElement
from ..xpath.query import Query
from .automata import PathNFA
from .base import BaselineFilter, MemoryReport


class PathNFAFilter(BaselineFilter):
    """Stack-based NFA simulation (the XFilter/YFilter-style baseline, single query)."""

    name = "path-nfa"

    def __init__(self, query: Query) -> None:
        self.query = query
        self.nfa = PathNFA(query)
        self._model = AutomatonMemoryModel()
        self._peak_stack_depth = 0

    def run(self, events: Iterable[Event]) -> bool:
        stack: List = []
        matched = False
        self._peak_stack_depth = 0
        for event in events:
            if isinstance(event, StartDocument):
                stack = [self.nfa.initial()]
                matched = matched or self.nfa.accepts(stack[-1])
            elif isinstance(event, StartElement):
                label = event.name if event.name in self.nfa.alphabet else "#other"
                next_states = self.nfa.step(stack[-1], label)
                stack.append(next_states)
                matched = matched or self.nfa.accepts(next_states)
            elif isinstance(event, EndElement):
                stack.pop()
            self._peak_stack_depth = max(self._peak_stack_depth, len(stack))
        return matched

    def memory_report(self) -> MemoryReport:
        stack_bits = self._model.nfa_state_set_bits(
            self.nfa.state_count, self._peak_stack_depth
        )
        return MemoryReport(
            algorithm=self.name,
            total_bits=stack_bits + bits_for(self._peak_stack_depth + 1),
            components={
                "nfa_states": self.nfa.state_count,
                "peak_stack_depth": self._peak_stack_depth,
                "stack_bits": stack_bits,
            },
        )
