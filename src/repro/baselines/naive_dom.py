"""Baseline: buffer the entire document and evaluate in memory.

This is the trivial (non-streaming) approach: build the DOM tree from the event stream
and run the reference evaluator on it.  It supports every query the reference evaluator
supports, but its memory is proportional to the document size — exactly the cost the
streaming algorithms are designed to avoid.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..instrument.memory import DOMMemoryModel
from ..semantics.evaluator import bool_eval
from ..xmlstream.build import build_document
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import Event
from ..xmlstream.node import TEXT
from ..xpath.query import Query
from .base import BaselineFilter, MemoryReport


class NaiveDOMFilter(BaselineFilter):
    """Materialize the document, then evaluate the query with the reference semantics."""

    name = "naive-dom"

    def __init__(self, query: Query) -> None:
        self.query = query
        self._model = DOMMemoryModel()
        self._last_document: Optional[XMLDocument] = None

    def run(self, events: Iterable[Event]) -> bool:
        document = build_document(list(events))
        self._last_document = document
        return bool_eval(self.query, document)

    def memory_report(self) -> MemoryReport:
        document = self._last_document
        if document is None:
            return MemoryReport(algorithm=self.name, total_bits=0)
        element_count = 0
        text_chars = 0
        name_chars = 0
        for node in document.iter_nodes(include_root=False):
            if node.kind == TEXT:
                text_chars += len(node.text_content or "")
            else:
                element_count += 1
                name_chars += len(node.name or "")
        total = self._model.bits(element_count, text_chars, name_chars)
        return MemoryReport(
            algorithm=self.name,
            total_bits=total,
            components={
                "elements": element_count,
                "text_chars": text_chars,
                "name_chars": name_chars,
            },
        )
