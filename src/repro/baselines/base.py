"""Common interface for the baseline filtering algorithms.

The baselines exist so the benchmark harness can reproduce the paper's motivating
comparison (Sections 1.2 and 2): automata-based streaming filters pay for large
transition tables (exponential in the query in the worst case), and naive approaches pay
for buffering the document, while the paper's algorithm needs neither.

Every baseline implements :class:`BaselineFilter`: a ``run`` method over a SAX event
stream returning the boolean filtering decision, and a ``memory_report`` describing the
bits of state it had to maintain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from ..xmlstream.document import XMLDocument
from ..xmlstream.events import Event


@dataclass
class MemoryReport:
    """Bit-level memory accounting of one baseline run."""

    algorithm: str
    total_bits: int
    components: Dict[str, int] = field(default_factory=dict)

    def component(self, name: str) -> int:
        return self.components.get(name, 0)


class BaselineFilter:
    """Abstract base class of baseline streaming filters."""

    #: short identifier used in benchmark output
    name = "baseline"

    def run(self, events: Iterable[Event]) -> bool:
        """Process a complete document stream and return the filtering decision."""
        raise NotImplementedError

    def run_document(self, document: XMLDocument) -> bool:
        """Convenience wrapper feeding a materialized document's events."""
        return self.run(document.events())

    def memory_report(self) -> MemoryReport:
        """The memory used by the most recent :meth:`run`."""
        raise NotImplementedError
