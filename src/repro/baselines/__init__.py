"""Baseline filters: DOM buffering, NFA simulation, and lazy/eager DFA determinization."""

from .automata import DFA, OTHER, PathNFA, PathStep, determinize, linear_steps, nfa_state_blowup
from .base import BaselineFilter, MemoryReport
from .dfa_filter import EagerDFAFilter, LazyDFAFilter
from .naive_dom import NaiveDOMFilter
from .nfa_filter import PathNFAFilter

__all__ = [
    "BaselineFilter",
    "DFA",
    "EagerDFAFilter",
    "LazyDFAFilter",
    "MemoryReport",
    "NaiveDOMFilter",
    "OTHER",
    "PathNFA",
    "PathNFAFilter",
    "PathStep",
    "determinize",
    "linear_steps",
    "nfa_state_blowup",
]
