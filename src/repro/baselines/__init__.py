"""Baseline filters: DOM buffering, NFA simulation, lazy/eager DFA determinization,
and the pre-index (per-event × per-filter) multi-subscription bank."""

from .automata import DFA, OTHER, PathNFA, PathStep, determinize, linear_steps, nfa_state_blowup
from .base import BaselineFilter, MemoryReport
from .dfa_filter import EagerDFAFilter, LazyDFAFilter
from .naive_bank import NaiveFilterBank
from .naive_dom import NaiveDOMFilter
from .nfa_filter import PathNFAFilter

__all__ = [
    "BaselineFilter",
    "DFA",
    "EagerDFAFilter",
    "LazyDFAFilter",
    "MemoryReport",
    "NaiveDOMFilter",
    "NaiveFilterBank",
    "OTHER",
    "PathNFA",
    "PathNFAFilter",
    "PathStep",
    "determinize",
    "linear_steps",
    "nfa_state_blowup",
]
