"""Automaton construction for linear (path) XPath queries.

The automata-based streaming filters in the literature translate the query into a finite
automaton over the alphabet of element names and simulate it along the document's
root-to-node paths.  For the baseline comparison we only need the *linear* case (a
single path of child/descendant steps without predicates): it already exhibits the
exponential determinization blow-up the paper discusses, and it keeps the baseline
honest (its answers are checked against the reference evaluator in the tests).

``PathNFA`` builds the standard nondeterministic automaton:

* one state per query step (state 0 is the initial state, state ``n`` accepts);
* a child step ``/name`` gives a transition ``i --name--> i+1``;
* a descendant step ``//name`` additionally lets the automaton wait: ``i --ANY--> i``;
* a wildcard step matches every label.

``determinize`` performs the subset construction, either eagerly (all reachable
subsets) or lazily (on demand while a document is being filtered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.errors import UnsupportedQueryError
from ..xpath.query import CHILD, DESCENDANT, Query, WILDCARD

#: pseudo-label standing for "any element name not mentioned in the query"
OTHER = "#other"


@dataclass(frozen=True)
class PathStep:
    """One step of a linear path query."""

    axis: str
    ntest: str


def linear_steps(query: Query) -> List[PathStep]:
    """Extract the steps of a linear query; raise if the query is not a single path."""
    steps: List[PathStep] = []
    node = query.root
    while node is not None:
        if node.predicate is not None or len(node.children) > (1 if node.successor else 0):
            raise UnsupportedQueryError(
                "automata baselines support linear path queries without predicates only"
            )
        next_node = node.successor
        if next_node is None and node is not query.root:
            break
        if next_node is None:
            raise UnsupportedQueryError("query has no steps")
        if next_node.axis not in (CHILD, DESCENDANT):
            raise UnsupportedQueryError(
                f"unsupported axis {next_node.axis!r} in automata baseline"
            )
        steps.append(PathStep(axis=next_node.axis, ntest=next_node.ntest or WILDCARD))
        node = next_node
    return steps


class PathNFA:
    """The nondeterministic automaton of a linear path query."""

    def __init__(self, query: Query) -> None:
        self.query = query
        self.steps = linear_steps(query)
        self.state_count = len(self.steps) + 1
        self.accept_state = len(self.steps)
        self.alphabet = sorted({s.ntest for s in self.steps if s.ntest != WILDCARD})

    def initial(self) -> FrozenSet[int]:
        return frozenset({0})

    def step(self, states: FrozenSet[int], label: str) -> FrozenSet[int]:
        """The set of states reachable after reading one more path element ``label``."""
        out: Set[int] = set()
        for state in states:
            if state < len(self.steps):
                step = self.steps[state]
                if step.ntest == WILDCARD or step.ntest == label:
                    out.add(state + 1)
                if step.axis == DESCENDANT:
                    out.add(state)
            else:
                # the accept state absorbs (a match deeper in the path stays a match)
                out.add(state)
        return frozenset(out)

    def accepts(self, states: FrozenSet[int]) -> bool:
        return self.accept_state in states


@dataclass
class DFA:
    """A determinized path automaton (possibly partial, when built lazily)."""

    nfa: PathNFA
    alphabet: List[str]
    states: Dict[FrozenSet[int], int] = field(default_factory=dict)
    transitions: Dict[Tuple[int, str], int] = field(default_factory=dict)
    accepting: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.states:
            self._intern(self.nfa.initial())

    @property
    def initial_id(self) -> int:
        return 0

    def _intern(self, subset: FrozenSet[int]) -> int:
        if subset not in self.states:
            self.states[subset] = len(self.states)
            if self.nfa.accepts(subset):
                self.accepting.add(self.states[subset])
        return self.states[subset]

    def subset_of(self, state_id: int) -> FrozenSet[int]:
        for subset, identifier in self.states.items():
            if identifier == state_id:
                return subset
        raise KeyError(state_id)  # pragma: no cover - internal invariant

    def transition(self, state_id: int, label: str) -> int:
        """The successor state, computing and caching it on demand (lazy subset step)."""
        key_label = label if label in self.alphabet else OTHER
        key = (state_id, key_label)
        cached = self.transitions.get(key)
        if cached is not None:
            return cached
        subset = self.subset_of(state_id)
        target = self._intern(self.nfa.step(subset, key_label))
        self.transitions[key] = target
        return target

    def is_accepting(self, state_id: int) -> bool:
        return state_id in self.accepting

    # ------------------------------------------------------------------ statistics
    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def transition_count(self) -> int:
        return len(self.transitions)

    def full_table_size(self) -> int:
        """Entries of a dense table over the query alphabet plus the OTHER label."""
        return self.state_count * (len(self.alphabet) + 1)


def determinize(nfa: PathNFA) -> DFA:
    """Eager subset construction: materialize every reachable DFA state and transition."""
    dfa = DFA(nfa=nfa, alphabet=list(nfa.alphabet))
    labels = list(nfa.alphabet) + [OTHER]
    worklist = [dfa.initial_id]
    seen = {dfa.initial_id}
    while worklist:
        state_id = worklist.pop()
        for label in labels:
            target = dfa.transition(state_id, label)
            if target not in seen:
                seen.add(target)
                worklist.append(target)
    return dfa


def nfa_state_blowup(query: Query) -> Tuple[int, int]:
    """(NFA states, eager DFA states) for a linear query — the classic blow-up figure."""
    nfa = PathNFA(query)
    dfa = determinize(nfa)
    return nfa.state_count, dfa.state_count
