"""Predicate expression trees.

The predicate of a query node ``u`` (Section 3.1.2) is an expression tree whose internal
nodes are logical, comparison, arithmetic, or functional operators and whose leaves are
constants or pointers to (predicate) children of ``u``.

The AST node classes here mirror that structure.  ``NodeRef`` leaves hold a reference to
the query node they point at (the predicate child), which is filled in by the parser.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING

from .functions import is_boolean_output
from .values import Atomic

if TYPE_CHECKING:  # pragma: no cover - only for type checkers
    from .query import QueryNode

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "div", "idiv", "mod")
LOGICAL_OPS = ("and", "or", "not")


class Expr:
    """Base class of all predicate expression nodes."""

    def children(self) -> Sequence["Expr"]:
        """Direct sub-expressions."""
        return ()

    def iter_nodes(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.iter_nodes()

    # --- classification helpers used by the Redundancy-free XPath definitions --------
    def is_boolean_operator(self) -> bool:
        """True for operators *on boolean arguments* (the logical operators)."""
        return False

    def has_boolean_output(self) -> bool:
        """True for operators/functions whose output is boolean."""
        return False

    def node_refs(self) -> List["NodeRef"]:
        """All ``NodeRef`` leaves below (and including) this expression."""
        return [node for node in self.iter_nodes() if isinstance(node, NodeRef)]

    def to_xpath(self) -> str:
        """Serialize back to XPath syntax."""
        raise NotImplementedError


class Constant(Expr):
    """A constant leaf (string or number literal)."""

    __slots__ = ("value",)

    def __init__(self, value: Atomic) -> None:
        self.value = value

    def to_xpath(self) -> str:
        if isinstance(self.value, str):
            return '"' + self.value.replace('"', '""') + '"'
        if isinstance(self.value, float) and self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constant({self.value!r})"


class NodeRef(Expr):
    """A leaf that points to a predicate child of the query node owning the predicate."""

    __slots__ = ("target",)

    def __init__(self, target: "QueryNode") -> None:
        self.target = target

    def to_xpath(self) -> str:
        return self.target.relative_path_string()

    def __repr__(self) -> str:  # pragma: no cover
        return f"NodeRef({self.target.ntest!r})"


class Comparison(Expr):
    """A comparison operator: non-boolean arguments, boolean output."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def has_boolean_output(self) -> bool:
        return True

    def to_xpath(self) -> str:
        return f"{self.left.to_xpath()} {self.op} {self.right.to_xpath()}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Comparison({self.op!r})"


class Arithmetic(Expr):
    """An arithmetic operator: non-boolean arguments and output."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def to_xpath(self) -> str:
        return f"{self.left.to_xpath()} {self.op} {self.right.to_xpath()}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Arithmetic({self.op!r})"


class Negation(Expr):
    """Unary minus."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def to_xpath(self) -> str:
        return f"-{self.operand.to_xpath()}"


class FunctionCall(Expr):
    """A call to a registered XPath function on atomic arguments."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        self.name = name
        self.args = list(args)

    def children(self) -> Sequence[Expr]:
        return tuple(self.args)

    def has_boolean_output(self) -> bool:
        return is_boolean_output(self.name)

    def to_xpath(self) -> str:
        return f"{self.name}({', '.join(a.to_xpath() for a in self.args)})"

    def __repr__(self) -> str:  # pragma: no cover
        return f"FunctionCall({self.name!r}, arity={len(self.args)})"


class And(Expr):
    """Logical conjunction: boolean arguments (via EBV), boolean output."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def is_boolean_operator(self) -> bool:
        return True

    def has_boolean_output(self) -> bool:
        return True

    def to_xpath(self) -> str:
        return f"{self.left.to_xpath()} and {self.right.to_xpath()}"


class Or(Expr):
    """Logical disjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def is_boolean_operator(self) -> bool:
        return True

    def has_boolean_output(self) -> bool:
        return True

    def to_xpath(self) -> str:
        return f"{self.left.to_xpath()} or {self.right.to_xpath()}"


class Not(Expr):
    """Logical negation ``not(...)``."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def is_boolean_operator(self) -> bool:
        return True

    def has_boolean_output(self) -> bool:
        return True

    def to_xpath(self) -> str:
        return f"not({self.operand.to_xpath()})"


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Split a predicate into its top-level conjuncts (flattening nested ``and``)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def is_atomic_predicate(expr: Expr) -> bool:
    """Definition 5.3: no boolean-argument operators anywhere, and no boolean-output
    operator except possibly at the root."""
    for node in expr.iter_nodes():
        if node.is_boolean_operator():
            return False
        if node is not expr and node.has_boolean_output():
            return False
    return True
