"""Tokenizer for the Forward XPath grammar of Fig. 1."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


class XPathSyntaxError(ValueError):
    """Raised for malformed XPath query text."""


# Token kinds
DOUBLE_SLASH = "DOUBLE_SLASH"       # //
SLASH = "SLASH"                     # /
DOT_DOUBLE_SLASH = "DOT_DOUBLE_SLASH"  # .//
AT = "AT"                           # @
LBRACKET = "LBRACKET"               # [
RBRACKET = "RBRACKET"               # ]
LPAREN = "LPAREN"                   # (
RPAREN = "RPAREN"                   # )
COMMA = "COMMA"                     # ,
STAR = "STAR"                       # * (wildcard node test OR multiplication)
PLUS = "PLUS"                       # +
MINUS = "MINUS"                     # -
COMPARE = "COMPARE"                 # = != < <= > >=
NUMBER = "NUMBER"                   # numeric literal
STRING = "STRING"                   # quoted string literal
NAME = "NAME"                       # element name / function name / keyword
DOLLAR = "DOLLAR"                   # $ (the root marker in figures; accepted, ignored)
END = "END"                         # end of input


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}@{self.position})"


# NAME tokens: letters/underscore start, then word chars; internal '-' or '.' allowed when
# followed by a letter (so function names like fn:starts-with lex as one token while the
# arithmetic expression "b - 5" still needs spaces, which the paper's examples always use).
_NAME_PATTERN = r"[A-Za-z_][A-Za-z0-9_]*(?:[-.:][A-Za-z_][A-Za-z0-9_]*)*"

_TOKEN_SPEC = [
    (DOT_DOUBLE_SLASH, r"\.//"),
    (DOUBLE_SLASH, r"//"),
    (SLASH, r"/"),
    (AT, r"@"),
    (LBRACKET, r"\["),
    (RBRACKET, r"\]"),
    (LPAREN, r"\("),
    (RPAREN, r"\)"),
    (COMMA, r","),
    (STAR, r"\*"),
    (PLUS, r"\+"),
    (MINUS, r"-"),
    (COMPARE, r"!=|<=|>=|=|<|>"),
    (NUMBER, r"\d+(?:\.\d+)?"),
    (STRING, r'"[^"]*"|\'[^\']*\''),
    (NAME, _NAME_PATTERN),
    (DOLLAR, r"\$"),
    ("WS", r"\s+"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{kind}>{pattern})" for kind, pattern in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Tokenize XPath text, raising :class:`XPathSyntaxError` on unknown characters."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _MASTER_RE.match(text, pos)
        if match is None:
            raise XPathSyntaxError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token(END, "", pos))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @classmethod
    def from_text(cls, text: str) -> "TokenStream":
        return cls(tokenize(text))

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != END:
            self._index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        """Consume and return the next token if it has the given kind, else ``None``."""
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        """Consume the next token, raising if it does not have the given kind."""
        token = self.next()
        if token.kind != kind:
            raise XPathSyntaxError(
                f"expected {kind} but found {token.kind} ({token.text!r}) "
                f"at position {token.position}"
            )
        return token

    def at_end(self) -> bool:
        return self.peek().kind == END

    def __iter__(self) -> Iterator[Token]:  # pragma: no cover - convenience
        return iter(self._tokens[self._index:])
