"""The basic XPath function/operator library used in predicates.

The grammar (Fig. 1) allows "any basic XPath function or operator on atomic arguments",
excluding ``position()`` and ``last()``.  We implement the functions that appear in the
paper's examples plus the commonly used string/numeric helpers.  Each function is
registered with a *signature* describing:

* whether its output is boolean (this is what the atomic-predicate definition cares
  about, Definition 5.3);
* whether its arguments are boolean (only the logical operators qualify, and those are
  modelled as dedicated AST nodes rather than registry functions);
* a Python callable on atomic values.

Function names may be written with or without the ``fn:`` prefix.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from .values import Atomic, NAN, to_number, to_string


@dataclass(frozen=True)
class FunctionSpec:
    """Metadata and implementation of one XPath function."""

    name: str
    arity_min: int
    arity_max: int
    boolean_output: bool
    handler: Callable[..., Atomic]

    def accepts_arity(self, n: int) -> bool:
        return self.arity_min <= n <= self.arity_max


class UnknownFunctionError(ValueError):
    """Raised when a predicate references a function that is not registered."""


def _matches(value: Atomic, pattern: Atomic) -> bool:
    """``fn:matches``: unanchored regular-expression search (XPath regex ~ Python re)."""
    try:
        return re.search(to_string(pattern), to_string(value)) is not None
    except re.error:
        return False


def _substring(value: Atomic, start: Atomic, length: Atomic = None) -> str:
    text = to_string(value)
    start_index = to_number(start)
    if math.isnan(start_index):
        return ""
    begin = max(int(round(start_index)) - 1, 0)
    if length is None:
        return text[begin:]
    span = to_number(length)
    if math.isnan(span):
        return ""
    end = max(int(round(start_index)) - 1 + int(round(span)), 0)
    return text[begin:end]


def _round(value: Atomic) -> float:
    number = to_number(value)
    if math.isnan(number):
        return NAN
    return float(math.floor(number + 0.5))


_RAW_SPECS = [
    # string predicates (boolean output)
    ("contains", 2, 2, True, lambda a, b: to_string(b) in to_string(a)),
    ("starts-with", 2, 2, True, lambda a, b: to_string(a).startswith(to_string(b))),
    ("ends-with", 2, 2, True, lambda a, b: to_string(a).endswith(to_string(b))),
    ("matches", 2, 2, True, _matches),
    # string constructors
    ("concat", 2, 16, False, lambda *parts: "".join(to_string(p) for p in parts)),
    ("string", 1, 1, False, to_string),
    ("upper-case", 1, 1, False, lambda a: to_string(a).upper()),
    ("lower-case", 1, 1, False, lambda a: to_string(a).lower()),
    ("normalize-space", 1, 1, False, lambda a: " ".join(to_string(a).split())),
    ("substring", 2, 3, False, _substring),
    ("string-length", 1, 1, False, lambda a: float(len(to_string(a)))),
    ("translate", 3, 3, False,
     lambda a, b, c: to_string(a).translate(
         str.maketrans(to_string(b)[: len(to_string(c))],
                       to_string(c)[: len(to_string(b))],
                       to_string(b)[len(to_string(c)):]))),
    # numeric
    ("number", 1, 1, False, to_number),
    ("abs", 1, 1, False, lambda a: abs(to_number(a))),
    ("floor", 1, 1, False, lambda a: float(math.floor(to_number(a)))
     if not math.isnan(to_number(a)) else NAN),
    ("ceiling", 1, 1, False, lambda a: float(math.ceil(to_number(a)))
     if not math.isnan(to_number(a)) else NAN),
    ("round", 1, 1, False, _round),
    # boolean constants
    ("true", 0, 0, True, lambda: True),
    ("false", 0, 0, True, lambda: False),
]


FUNCTIONS: Dict[str, FunctionSpec] = {}
for _name, _amin, _amax, _bool_out, _fn in _RAW_SPECS:
    spec = FunctionSpec(_name, _amin, _amax, _bool_out, _fn)
    FUNCTIONS[_name] = spec
    FUNCTIONS["fn:" + _name] = spec


def lookup_function(name: str) -> FunctionSpec:
    """Find the registered function spec for ``name`` (with or without ``fn:`` prefix)."""
    spec = FUNCTIONS.get(name)
    if spec is None:
        raise UnknownFunctionError(f"unknown XPath function: {name!r}")
    return spec


def call_function(name: str, args: Sequence[Atomic]) -> Atomic:
    """Call the function on atomic arguments and return an atomic result."""
    spec = lookup_function(name)
    if not spec.accepts_arity(len(args)):
        raise UnknownFunctionError(
            f"function {name!r} called with {len(args)} arguments "
            f"(expects between {spec.arity_min} and {spec.arity_max})"
        )
    return spec.handler(*args)


def is_boolean_output(name: str) -> bool:
    """Whether the function's output type is boolean (used for atomic-predicate checks)."""
    return lookup_function(name).boolean_output
