"""Atomic value model and type conversions for the XPath fragment.

The paper works with the set ``V`` of atomic data values (numbers, strings, booleans) and
relies on the standard XPath conversions, most importantly the Effective Boolean Value
(EBV) function.  Values are represented by plain Python objects:

* strings        -> ``str``
* numbers        -> ``float`` (integers are represented as floats, as in XPath 1.0-style
                    arithmetic; NaN models conversion failures)
* booleans       -> ``bool``
* sequences      -> ``list`` of the above

Conversion failures never raise: casting a non-numeric string to a number yields NaN and
comparisons involving NaN are false, mirroring the forgiving XPath semantics the paper's
constructions rely on.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Union

Atomic = Union[str, float, bool]
Value = Union[Atomic, List[Atomic]]

NAN = float("nan")


def is_sequence(value: Value) -> bool:
    """True if ``value`` is a sequence (list) rather than an atomic value."""
    return isinstance(value, list)


def as_sequence(value: Value) -> List[Atomic]:
    """View an atomic value as a singleton sequence; sequences pass through."""
    if isinstance(value, list):
        return value
    return [value]


def to_number(value: Value) -> float:
    """Cast to a number.  Non-numeric strings become NaN; sequences use their first item."""
    if isinstance(value, list):
        if not value:
            return NAN
        return to_number(value[0])
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return NAN


def to_string(value: Value) -> str:
    """Cast to a string.  Numbers drop a trailing ``.0``; sequences use their first item."""
    if isinstance(value, list):
        if not value:
            return ""
        return to_string(value[0])
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, int):
        return str(value)
    return str(value)


def effective_boolean_value(value: Value) -> bool:
    """The Effective Boolean Value (EBV) function of Section 3.1.3.

    For a sequence the EBV is true iff the sequence is non-empty (this is what gives most
    XPath predicates their existential semantics).  For atomic values: booleans are
    themselves, numbers are true unless zero or NaN, strings are true unless empty.
    """
    if isinstance(value, list):
        return len(value) > 0
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return not (value == 0 or (isinstance(value, float) and math.isnan(value)))
    return len(str(value)) > 0


def _numeric_pair(left: Atomic, right: Atomic) -> tuple[float, float]:
    return to_number(left), to_number(right)


def _general_compare(left: Atomic, right: Atomic, op: Callable[[float, float], bool],
                     str_op: Callable[[str, str], bool]) -> bool:
    """Compare two atomics: numerically when either side is a number, else as strings."""
    if isinstance(left, (int, float)) and not isinstance(left, bool) or (
        isinstance(right, (int, float)) and not isinstance(right, bool)
    ):
        a, b = _numeric_pair(left, right)
        if math.isnan(a) or math.isnan(b):
            return False
        return op(a, b)
    # two strings (or booleans): try numbers first, fall back to string comparison
    a, b = _numeric_pair(left, right)
    if not math.isnan(a) and not math.isnan(b):
        return op(a, b)
    return str_op(to_string(left), to_string(right))


def compare_atomic(op_symbol: str, left: Atomic, right: Atomic) -> bool:
    """Evaluate ``left <op> right`` for two atomic values."""
    ops = {
        "=": (lambda a, b: a == b, lambda a, b: a == b),
        "!=": (lambda a, b: a != b, lambda a, b: a != b),
        "<": (lambda a, b: a < b, lambda a, b: a < b),
        "<=": (lambda a, b: a <= b, lambda a, b: a <= b),
        ">": (lambda a, b: a > b, lambda a, b: a > b),
        ">=": (lambda a, b: a >= b, lambda a, b: a >= b),
    }
    if op_symbol not in ops:
        raise ValueError(f"unknown comparison operator {op_symbol!r}")
    num_op, str_op = ops[op_symbol]
    return _general_compare(left, right, num_op, str_op)


def arithmetic_atomic(op_symbol: str, left: Atomic, right: Atomic) -> float:
    """Evaluate ``left <op> right`` for the arithmetic operators of the grammar."""
    a, b = _numeric_pair(left, right)
    if math.isnan(a) or math.isnan(b):
        return NAN
    if op_symbol == "+":
        return a + b
    if op_symbol == "-":
        return a - b
    if op_symbol == "*":
        return a * b
    if op_symbol == "div":
        return a / b if b != 0 else NAN
    if op_symbol == "idiv":
        return float(int(a // b)) if b != 0 else NAN
    if op_symbol == "mod":
        return math.fmod(a, b) if b != 0 else NAN
    raise ValueError(f"unknown arithmetic operator {op_symbol!r}")


def negate_atomic(value: Atomic) -> float:
    """Unary minus."""
    number = to_number(value)
    return NAN if math.isnan(number) else -number


def cartesian_sequences(sequences: Iterable[List[Atomic]]) -> Iterable[List[Atomic]]:
    """All combinations, one element from each sequence, in lexicographic order.

    This is the combination order used in part 5 of Definition 3.5.
    """
    sequences = list(sequences)
    if not sequences:
        yield []
        return
    head, *rest = sequences
    for item in head:
        for combo in cartesian_sequences(rest):
            yield [item, *combo]
