"""Recursive-descent parser for the Forward XPath grammar (Fig. 1 of the paper).

The parser produces :class:`~repro.xpath.query.Query` trees in which

* main-path steps form the successor chain of the root;
* relative paths inside predicates become predicate-child subtrees whose first step is
  attached as a (non-successor) child of the node owning the predicate and is pointed at
  by a :class:`~repro.xpath.ast.NodeRef` leaf of the predicate expression;
* the attribute axis is lowered to a child axis with an ``@``-prefixed node test, which
  is how the paper treats attributes ("a special case of the child axis").

Two small, documented liberalizations of the written grammar are made to accommodate the
paper's own example queries:

* a relative path inside a predicate may start with a bare name or ``*`` (meaning a child
  step), e.g. ``/a[b > 5]`` or ``/a[*/b > 5]``; the written grammar only lists ``.//``
  and ``@`` as relative axes, yet every example in the paper uses the bare form;
* parentheses may be used for grouping inside predicates.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    And,
    Arithmetic,
    Comparison,
    Constant,
    Expr,
    FunctionCall,
    Negation,
    NodeRef,
    Not,
    Or,
)
from .functions import UnknownFunctionError, lookup_function
from .lexer import (
    AT,
    COMPARE,
    COMMA,
    DOLLAR,
    DOT_DOUBLE_SLASH,
    DOUBLE_SLASH,
    LBRACKET,
    LPAREN,
    MINUS,
    NAME,
    NUMBER,
    PLUS,
    RBRACKET,
    RPAREN,
    SLASH,
    STAR,
    STRING,
    TokenStream,
    XPathSyntaxError,
)
from .query import CHILD, DESCENDANT, Query, QueryNode

_MULTIPLICATIVE_NAMES = ("div", "idiv", "mod")
_RESERVED_NAMES = ("and", "or", "not", "div", "idiv", "mod")


def parse_query(text: str) -> Query:
    """Parse an absolute Forward XPath expression into a :class:`Query`."""
    parser = _Parser(TokenStream.from_text(text))
    query = parser.parse_absolute_path(source=text)
    query.validate()
    return query


def parse_predicate(text: str, owner: Optional[QueryNode] = None) -> Expr:
    """Parse a predicate expression in isolation (mainly for tests and tools).

    ``owner`` is the query node the predicate belongs to; a fresh node is created when it
    is omitted.  Relative paths in the predicate are attached to ``owner`` as predicate
    children.
    """
    if owner is None:
        owner = QueryNode(CHILD, "predicate-host")
    parser = _Parser(TokenStream.from_text(text))
    expr = parser.parse_predicate_expr(owner)
    if not parser.tokens.at_end():
        token = parser.tokens.peek()
        raise XPathSyntaxError(f"trailing input at position {token.position}: {token.text!r}")
    owner.predicate = expr
    return expr


class _Parser:
    """Internal recursive-descent parser (one instance per parse call)."""

    def __init__(self, tokens: TokenStream) -> None:
        self.tokens = tokens

    # ------------------------------------------------------------------ paths
    def parse_absolute_path(self, source: Optional[str] = None) -> Query:
        root = QueryNode.root()
        self.tokens.accept(DOLLAR)
        current = root
        steps = 0
        while not self.tokens.at_end():
            step = self.parse_step()
            if step is None:
                break
            current.add_child(step, successor=True)
            current = step
            steps += 1
        if steps == 0:
            raise XPathSyntaxError("a query must contain at least one step")
        if not self.tokens.at_end():
            token = self.tokens.peek()
            raise XPathSyntaxError(
                f"trailing input at position {token.position}: {token.text!r}"
            )
        return Query(root, source=source)

    def parse_step(self) -> Optional[QueryNode]:
        """Parse one ``Axis NodeTest Predicate?`` step of the main path."""
        token = self.tokens.peek()
        if token.kind == DOUBLE_SLASH:
            self.tokens.next()
            axis = DESCENDANT
            attribute = False
        elif token.kind == SLASH:
            self.tokens.next()
            if self.tokens.accept(AT):
                axis = CHILD
                attribute = True
            else:
                axis = CHILD
                attribute = False
        elif token.kind == AT:
            self.tokens.next()
            axis = CHILD
            attribute = True
        else:
            return None
        return self._finish_step(axis, attribute)

    def _finish_step(self, axis: str, attribute: bool) -> QueryNode:
        ntest = self.parse_node_test()
        if attribute:
            ntest = "@" + ntest if ntest != "*" else "@*"
        node = QueryNode(axis, ntest)
        if self.tokens.accept(LBRACKET):
            node.predicate = self.parse_predicate_expr(node)
            self.tokens.expect(RBRACKET)
        return node

    def parse_node_test(self) -> str:
        token = self.tokens.peek()
        if token.kind == STAR:
            self.tokens.next()
            return "*"
        if token.kind == NAME:
            if token.text in _RESERVED_NAMES:
                raise XPathSyntaxError(
                    f"reserved word {token.text!r} cannot be used as a node test "
                    f"(position {token.position})"
                )
            self.tokens.next()
            return token.text
        raise XPathSyntaxError(
            f"expected a node test but found {token.kind} ({token.text!r}) "
            f"at position {token.position}"
        )

    def parse_relative_path(self, owner: QueryNode) -> NodeRef:
        """Parse a relative path inside a predicate of ``owner``.

        The first step becomes a predicate child of ``owner``; the remaining steps chain
        via successor links.  Returns the ``NodeRef`` leaf pointing at the first step.
        """
        token = self.tokens.peek()
        if token.kind == DOT_DOUBLE_SLASH:
            self.tokens.next()
            axis, attribute = DESCENDANT, False
        elif token.kind == AT:
            self.tokens.next()
            axis, attribute = CHILD, True
        elif token.kind in (NAME, STAR):
            axis, attribute = CHILD, False
        else:
            raise XPathSyntaxError(
                f"expected a relative path but found {token.kind} at position {token.position}"
            )
        first = self._finish_step(axis, attribute)
        owner.add_child(first, successor=False)
        current = first
        while True:
            step = self.parse_step()
            if step is None:
                break
            current.add_child(step, successor=True)
            current = step
        return NodeRef(first)

    # ------------------------------------------------------------------ predicates
    def parse_predicate_expr(self, owner: QueryNode) -> Expr:
        return self.parse_or(owner)

    def parse_or(self, owner: QueryNode) -> Expr:
        left = self.parse_and(owner)
        while self._peek_name("or"):
            self.tokens.next()
            right = self.parse_and(owner)
            left = Or(left, right)
        return left

    def parse_and(self, owner: QueryNode) -> Expr:
        left = self.parse_comparison(owner)
        while self._peek_name("and"):
            self.tokens.next()
            right = self.parse_comparison(owner)
            left = And(left, right)
        return left

    def parse_comparison(self, owner: QueryNode) -> Expr:
        left = self.parse_additive(owner)
        token = self.tokens.peek()
        if token.kind == COMPARE:
            self.tokens.next()
            right = self.parse_additive(owner)
            return Comparison(token.text, left, right)
        return left

    def parse_additive(self, owner: QueryNode) -> Expr:
        left = self.parse_multiplicative(owner)
        while True:
            token = self.tokens.peek()
            if token.kind == PLUS:
                self.tokens.next()
                left = Arithmetic("+", left, self.parse_multiplicative(owner))
            elif token.kind == MINUS:
                self.tokens.next()
                left = Arithmetic("-", left, self.parse_multiplicative(owner))
            else:
                return left

    def parse_multiplicative(self, owner: QueryNode) -> Expr:
        left = self.parse_unary(owner)
        while True:
            token = self.tokens.peek()
            if token.kind == STAR:
                self.tokens.next()
                left = Arithmetic("*", left, self.parse_unary(owner))
            elif token.kind == NAME and token.text in _MULTIPLICATIVE_NAMES:
                self.tokens.next()
                left = Arithmetic(token.text, left, self.parse_unary(owner))
            else:
                return left

    def parse_unary(self, owner: QueryNode) -> Expr:
        if self.tokens.accept(MINUS):
            return Negation(self.parse_unary(owner))
        return self.parse_primary(owner)

    def parse_primary(self, owner: QueryNode) -> Expr:
        token = self.tokens.peek()
        if token.kind == NUMBER:
            self.tokens.next()
            return Constant(float(token.text))
        if token.kind == STRING:
            self.tokens.next()
            return Constant(token.text[1:-1])
        if token.kind == LPAREN:
            self.tokens.next()
            expr = self.parse_predicate_expr(owner)
            self.tokens.expect(RPAREN)
            return expr
        if token.kind in (DOT_DOUBLE_SLASH, AT, STAR):
            return self.parse_relative_path(owner)
        if token.kind == NAME:
            if token.text == "not" and self.tokens.peek(1).kind == LPAREN:
                self.tokens.next()
                self.tokens.expect(LPAREN)
                inner = self.parse_predicate_expr(owner)
                self.tokens.expect(RPAREN)
                return Not(inner)
            if self.tokens.peek(1).kind == LPAREN and token.text not in ("and", "or"):
                return self.parse_function_call(owner)
            if token.text in _RESERVED_NAMES:
                raise XPathSyntaxError(
                    f"unexpected keyword {token.text!r} at position {token.position}"
                )
            return self.parse_relative_path(owner)
        raise XPathSyntaxError(
            f"unexpected token {token.kind} ({token.text!r}) at position {token.position}"
        )

    def parse_function_call(self, owner: QueryNode) -> Expr:
        name_token = self.tokens.expect(NAME)
        try:
            lookup_function(name_token.text)
        except UnknownFunctionError as exc:
            raise XPathSyntaxError(str(exc)) from exc
        self.tokens.expect(LPAREN)
        args: List[Expr] = []
        if self.tokens.peek().kind != RPAREN:
            args.append(self.parse_predicate_expr(owner))
            while self.tokens.accept(COMMA):
                args.append(self.parse_predicate_expr(owner))
        self.tokens.expect(RPAREN)
        return FunctionCall(name_token.text, args)

    # ------------------------------------------------------------------ helpers
    def _peek_name(self, text: str) -> bool:
        token = self.tokens.peek()
        return token.kind == NAME and token.text == text
