"""Generic evaluation of predicate expression trees (the PEVAL rules of Definition 3.5).

The evaluation is parameterized by a *resolver*: a callable mapping a ``NodeRef`` leaf to
the sequence of atomic values selected by the referenced query child.  This lets the same
code serve two clients:

* the full document evaluator (``repro.semantics.evaluator``), where the resolver runs
  the SELECT semantics against a document node; and
* truth sets (``repro.xpath.truthset``), where the resolver returns a single candidate
  value, implementing "replace the variable of P by alpha" from Definition 5.6.

The rules follow the paper's (slightly non-standard) semantics:

1. constants evaluate to themselves;
2. a ``NodeRef`` evaluates to the sequence supplied by the resolver;
3. boolean operators (and/or/not) cast their arguments with EBV;
4. operators/functions with boolean output but non-boolean arguments are *existential*:
   they are true iff some combination of argument values makes them true;
5. other operators/functions map over the cartesian product of their argument sequences.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .ast import (
    And,
    Arithmetic,
    Comparison,
    Constant,
    Expr,
    FunctionCall,
    Negation,
    NodeRef,
    Not,
    Or,
)
from .functions import call_function
from .values import (
    Atomic,
    Value,
    arithmetic_atomic,
    as_sequence,
    cartesian_sequences,
    compare_atomic,
    effective_boolean_value,
    negate_atomic,
)

Resolver = Callable[[NodeRef], List[Atomic]]


def evaluate_expression(expr: Expr, resolver: Resolver) -> Value:
    """Evaluate an expression tree, returning an atomic value or a sequence."""
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, NodeRef):
        return list(resolver(expr))
    if isinstance(expr, And):
        return _ebv(expr.left, resolver) and _ebv(expr.right, resolver)
    if isinstance(expr, Or):
        return _ebv(expr.left, resolver) or _ebv(expr.right, resolver)
    if isinstance(expr, Not):
        return not _ebv(expr.operand, resolver)
    if isinstance(expr, Comparison):
        return _existential(
            [expr.left, expr.right],
            resolver,
            lambda a, b: compare_atomic(expr.op, a, b),
        )
    if isinstance(expr, Arithmetic):
        return _map_cartesian(
            [expr.left, expr.right],
            resolver,
            lambda a, b: arithmetic_atomic(expr.op, a, b),
        )
    if isinstance(expr, Negation):
        return _map_cartesian([expr.operand], resolver, negate_atomic)
    if isinstance(expr, FunctionCall):
        if expr.has_boolean_output():
            return _existential(
                expr.args, resolver, lambda *args: bool(call_function(expr.name, args))
            )
        return _map_cartesian(
            expr.args, resolver, lambda *args: call_function(expr.name, args)
        )
    raise TypeError(f"cannot evaluate expression node {expr!r}")


def evaluate_predicate(expr: Expr, resolver: Resolver) -> bool:
    """Evaluate the predicate and cast the result with EBV (Definition 3.3, part 2)."""
    return effective_boolean_value(evaluate_expression(expr, resolver))


def _ebv(expr: Expr, resolver: Resolver) -> bool:
    return effective_boolean_value(evaluate_expression(expr, resolver))


def _argument_sequences(args: Sequence[Expr], resolver: Resolver) -> List[List[Atomic]]:
    """Evaluate the arguments and normalize each to a sequence (rule 4/5 preparation)."""
    sequences: List[List[Atomic]] = []
    for arg in args:
        value = evaluate_expression(arg, resolver)
        sequences.append(as_sequence(value))
    return sequences


def _existential(args: Sequence[Expr], resolver: Resolver, fn) -> bool:
    """Rule 4: true iff some combination of argument values satisfies ``fn``."""
    sequences = _argument_sequences(args, resolver)
    for combo in cartesian_sequences(sequences):
        if fn(*combo):
            return True
    return False


def _map_cartesian(args: Sequence[Expr], resolver: Resolver, fn) -> Value:
    """Rule 5: map ``fn`` over the cartesian product of the argument sequences.

    When every argument was atomic (a singleton that came from a constant or an atomic
    sub-expression) the result is returned as an atomic value, which keeps simple
    arithmetic like ``2 + 3`` atomic.
    """
    raw_values = [evaluate_expression(arg, resolver) for arg in args]
    all_atomic = all(not isinstance(value, list) for value in raw_values)
    sequences = [as_sequence(value) for value in raw_values]
    results = [fn(*combo) for combo in cartesian_sequences(sequences)]
    if all_atomic and len(results) == 1:
        return results[0]
    return results
