"""Serialization of query trees back to XPath text."""

from __future__ import annotations

from .query import Query, QueryNode


def serialize_query(query: Query) -> str:
    """Render the query's main path (the root's succession chain) as XPath text.

    Predicate subtrees are rendered recursively through the predicate expressions, so the
    output round-trips through :func:`~repro.xpath.parser.parse_query` to an equivalent
    query tree.
    """
    parts = []
    node = query.root.successor
    while node is not None:
        parts.append(_step_text(node))
        node = node.successor
    return "".join(parts)


def _step_text(node: QueryNode) -> str:
    from .query import DESCENDANT

    if node.axis == DESCENDANT:
        prefix = "//"
    else:
        prefix = "/"
    text = f"{prefix}{node.ntest}"
    if node.predicate is not None:
        text += f"[{node.predicate.to_xpath()}]"
    return text
