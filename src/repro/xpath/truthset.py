"""Truth sets of query nodes (Definition 5.6) and witness search for canonical documents.

The truth set ``TRUTH(u)`` of a query node is the set of string values that make the
atomic predicate constraining ``u`` evaluate to true.  Truth sets are generally infinite,
so they are represented *symbolically* by the atomic predicate itself; membership is
decided by evaluation (substituting the candidate value for the variable, exactly as in
Definition 5.6).

Canonical-document construction (Section 6.4) and the strong-subsumption-freeness check
(Definitions 5.16/5.17) additionally need *witnesses*:

* a value in ``TRUTH(u)`` that lies outside the union of other truth sets
  (the sunflower property), and
* a string that is not a prefix of any value in a union of truth sets
  (the prefix sunflower property).

Witness search is heuristic-but-verified: candidate values are generated from the
constants occurring in the predicates (plus generic probes) and every returned witness is
checked by membership evaluation, so a returned witness is always sound.  ``None`` is
returned when no witness can be found, in which case the query is (conservatively)
rejected as not strongly subsumption-free — the same situation in which the paper's
construction has nothing to offer.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from .ast import Comparison, Constant, Expr, FunctionCall, NodeRef, conjuncts
from .evalexpr import evaluate_predicate
from .query import QueryNode
from .values import to_number, to_string

#: characters that can occur in a string successfully cast to a number by ``to_number``
_NUMERIC_CHARS = set("0123456789.+-eE \t\r\ninfaINFA")

#: generic probe values used when no structure-specific candidates are available
_GENERIC_PROBES = (
    "", "0", "1", "2", "3", "5", "6", "7", "10", "42", "100", "-1", "0.5",
    "hello", "world", "A", "B", "AB", "ABC", "xyz", "q", "qq", "zzz", "true", "false",
)

#: probe strings for prefix-witness search: they contain a letter ('q') that cannot occur
#: in any numeric string, plus a few generic shapes
_PREFIX_PROBES = ("q", "qq", "q7", "zq", "hello-q", "qqqqq", "prefix-q", "#", "#q")


class TruthSet:
    """Abstract base class of truth-set representations."""

    def contains(self, value: str) -> bool:
        """Membership test for a string value."""
        raise NotImplementedError

    def is_universal(self) -> bool:
        """True if the set is (syntactically) all of ``S``."""
        return False

    def is_proper(self) -> bool:
        """Best-effort test for ``TRUTH(u)`` being a *proper* subset of ``S``.

        Returns True iff some probe value is provably excluded; the probes include the
        structure-derived candidates so simple comparisons and string predicates are
        always recognized.
        """
        for candidate in self.candidate_values():
            if not self.contains(candidate):
                return True
        return False

    def candidate_values(self) -> List[str]:
        """Candidate values used for witness search (always includes generic probes)."""
        return list(_GENERIC_PROBES)

    def excludes_prefix(self, alpha: str) -> bool:
        """Return True only if *provably* no member of the set has ``alpha`` as a prefix.

        The default is the safe answer ``False`` ("cannot prove exclusion").
        """
        return False

    # ------------------------------------------------------------------ witness search
    def find_member_excluding(self, others: Sequence["TruthSet"]) -> Optional[str]:
        """Find a value in this set that belongs to none of ``others`` (sunflower)."""
        candidates = list(self.candidate_values())
        for other in others:
            candidates.extend(other.candidate_values())
        seen = set()
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            if self.contains(candidate) and all(
                not other.contains(candidate) for other in others
            ):
                return candidate
        return None


class UniversalTruthSet(TruthSet):
    """``TRUTH(u) = S``: every string value belongs."""

    def contains(self, value: str) -> bool:
        return True

    def is_universal(self) -> bool:
        return True

    def is_proper(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return "UniversalTruthSet()"


class AtomicPredicateTruthSet(TruthSet):
    """Truth set defined by a univariate atomic predicate (Definition 5.6)."""

    def __init__(self, predicate: Expr) -> None:
        self.predicate = predicate
        refs = predicate.node_refs()
        if len(refs) != 1:
            raise ValueError(
                "an atomic-predicate truth set requires exactly one variable "
                f"(found {len(refs)})"
            )
        self._profile = _analyze(predicate, refs[0])

    # ------------------------------------------------------------------ membership
    def contains(self, value: str) -> bool:
        return evaluate_predicate(self.predicate, lambda _ref: [value])

    # ------------------------------------------------------------------ candidates
    def candidate_values(self) -> List[str]:
        candidates: List[str] = []
        kind, payload = self._profile
        if kind == "numeric" and payload is not None:
            constant = payload
            for delta in (-10.0, -1.0, -0.5, 0.0, 0.5, 1.0, 10.0):
                candidates.append(to_string(constant + delta))
            candidates.extend(["0", to_string(2 * constant + 17), to_string(-constant - 17)])
        for constant in _string_constants(self.predicate):
            candidates.extend(
                [constant, constant + "x", "x" + constant, constant[:-1],
                 constant.upper(), constant.lower(), constant + constant]
            )
        for number in _numeric_constants(self.predicate):
            for delta in (-1.0, -0.5, 0.0, 0.5, 1.0):
                candidates.append(to_string(number + delta))
        candidates.extend(_GENERIC_PROBES)
        return [c for c in candidates if c is not None]

    # ------------------------------------------------------------------ prefix exclusion
    def excludes_prefix(self, alpha: str) -> bool:
        kind, payload = self._profile
        if kind == "numeric":
            # every member must cast to a number, so a prefix containing a character that
            # can never occur in a numeric string proves exclusion
            return any(ch not in _NUMERIC_CHARS for ch in alpha)
        if kind == "equals-string":
            return not str(payload).startswith(alpha)
        if kind == "starts-with":
            target = str(payload)
            return not (target.startswith(alpha) or alpha.startswith(target))
        # contains / ends-with / matches / generic: any string can typically be extended
        # into a member, so exclusion is not provable
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicPredicateTruthSet({self.predicate.to_xpath()!r})"


# --------------------------------------------------------------------------- analysis
def _analyze(predicate: Expr, ref: NodeRef) -> tuple[str, Optional[object]]:
    """Classify the predicate's shape for prefix reasoning and candidate generation.

    Returns ``(kind, payload)`` where kind is one of ``numeric``, ``equals-string``,
    ``starts-with``, ``generic``.
    """
    if isinstance(predicate, Comparison):
        ref_side, const_side = _split_sides(predicate, ref)
        if const_side is not None:
            const_value = _constant_value(const_side)
            if const_value is not None:
                number = to_number(const_value)
                if predicate.op in ("<", "<=", ">", ">=") and not math.isnan(number):
                    return "numeric", number
                if predicate.op in ("=", "!="):
                    if not math.isnan(number):
                        return "numeric", number
                    if predicate.op == "=" and isinstance(const_value, str):
                        return "equals-string", const_value
        # comparisons whose reference side passes through arithmetic still force the
        # member to be numeric
        if ref_side is not None and _ref_under_arithmetic_only(ref_side, ref):
            return "numeric", _first_numeric_constant(predicate)
        return "generic", None
    if isinstance(predicate, FunctionCall):
        name = predicate.name.removeprefix("fn:")
        if name == "starts-with" and len(predicate.args) == 2:
            prefix = _constant_value(predicate.args[1])
            if isinstance(prefix, str):
                return "starts-with", prefix
        return "generic", None
    return "generic", None


def _split_sides(comparison: Comparison, ref: NodeRef):
    """Return (side containing the ref, constant-only other side) or (None, None)."""
    left_has = any(node is ref for node in comparison.left.iter_nodes())
    right_has = any(node is ref for node in comparison.right.iter_nodes())
    if left_has and not right_has and not comparison.right.node_refs():
        return comparison.left, comparison.right
    if right_has and not left_has and not comparison.left.node_refs():
        return comparison.right, comparison.left
    return None, None


def _constant_value(expr: Expr):
    if isinstance(expr, Constant):
        return expr.value
    return None


def _ref_under_arithmetic_only(expr: Expr, ref: NodeRef) -> bool:
    """True if the path from ``expr`` down to ``ref`` only crosses arithmetic nodes."""
    from .ast import Arithmetic, Negation

    if expr is ref:
        return True
    if isinstance(expr, (Arithmetic, Negation)):
        return any(_ref_under_arithmetic_only(child, ref) for child in expr.children())
    return False


def _numeric_constants(expr: Expr) -> List[float]:
    out = []
    for node in expr.iter_nodes():
        if isinstance(node, Constant):
            number = to_number(node.value)
            if not math.isnan(number):
                out.append(number)
    return out


def _string_constants(expr: Expr) -> List[str]:
    out = []
    for node in expr.iter_nodes():
        if isinstance(node, Constant) and isinstance(node.value, str):
            out.append(node.value)
    return out


def _first_numeric_constant(expr: Expr) -> Optional[float]:
    numbers = _numeric_constants(expr)
    return numbers[0] if numbers else None


# --------------------------------------------------------------------------- node truth sets
def atomic_predicate_of(node: QueryNode) -> Optional[Expr]:
    """The atomic conjunct of the parent's predicate whose variable points at ``node``.

    Returns ``None`` when the node is not a predicate child (e.g. it is a successor or
    the query root).
    """
    parent = node.parent
    if parent is None or parent.predicate is None or node.is_successor():
        return None
    for conjunct in conjuncts(parent.predicate):
        if any(ref.target is node for ref in conjunct.node_refs()):
            return conjunct
    return None


def truth_set(node: QueryNode) -> TruthSet:
    """``TRUTH(u)`` per Definition 5.6.

    Only succession leaves whose succession root is a variable of an atomic predicate get
    a non-universal truth set.
    """
    if node.successor is not None:
        return UniversalTruthSet()
    root_of_chain = node.succession_root()
    predicate = atomic_predicate_of(root_of_chain)
    if predicate is None:
        return UniversalTruthSet()
    if isinstance(predicate, NodeRef):
        # a bare existence predicate like [b] or [.//b]: evaluated on the singleton
        # sequence containing any value it is always true, so TRUTH(u) = S
        return UniversalTruthSet()
    refs = predicate.node_refs()
    if len(refs) != 1:
        # multivariate atomic predicates have no well-defined univariate truth set;
        # callers working inside Redundancy-free XPath never reach this branch
        return UniversalTruthSet()
    return AtomicPredicateTruthSet(predicate)


def is_value_restricted(node: QueryNode) -> bool:
    """Definition 5.7: ``TRUTH(u)`` is a proper subset of ``S``."""
    return truth_set(node).is_proper()


def find_prefix_witness(excluded: Sequence[TruthSet],
                        extra_probes: Iterable[str] = ()) -> Optional[str]:
    """Find a string that is provably not a prefix of any member of the given sets.

    Used by the canonical-document construction for internal nodes (prefix sunflower).
    """
    probes: List[str] = list(extra_probes) + list(_PREFIX_PROBES)
    for candidate in probes:
        if all(other.excludes_prefix(candidate) for other in excluded):
            return candidate
    return None
