"""Query trees for the Forward XPath fragment (Section 3.1.2 of the paper).

A query is a rooted tree of :class:`QueryNode` objects.  Every non-root node has

* ``axis``       -- ``child``, ``attribute`` or ``descendant``;
* ``ntest``      -- an element name or the wildcard ``*``;
* ``successor``  -- either ``None`` or one of the node's children (the next step of the
                    same path expression);
* ``predicate``  -- an optional expression tree whose ``NodeRef`` leaves point at the
                    node's remaining children (the *predicate children*).

The root carries no axis, node test or value restriction; its successor chain is the main
path of the query and its succession leaf is the query's output node ``OUT(Q)``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .ast import Expr, NodeRef

CHILD = "child"
DESCENDANT = "descendant"
ATTRIBUTE = "attribute"
WILDCARD = "*"

_AXES = (CHILD, DESCENDANT, ATTRIBUTE)

_AXIS_PREFIX = {CHILD: "/", DESCENDANT: "//", ATTRIBUTE: "/@"}


class QueryNode:
    """One node of a query tree."""

    __slots__ = ("axis", "ntest", "children", "parent", "successor", "predicate")

    def __init__(
        self,
        axis: Optional[str],
        ntest: Optional[str],
        predicate: Optional[Expr] = None,
    ) -> None:
        if axis is not None and axis not in _AXES:
            raise ValueError(f"unknown axis {axis!r}")
        self.axis = axis
        self.ntest = ntest
        self.children: List[QueryNode] = []
        self.parent: Optional[QueryNode] = None
        self.successor: Optional[QueryNode] = None
        self.predicate = predicate

    # ------------------------------------------------------------------ construction
    @classmethod
    def root(cls) -> "QueryNode":
        """Create the query root (denoted ``$`` in the paper's figures)."""
        return cls(axis=None, ntest=None)

    def add_child(self, child: "QueryNode", *, successor: bool = False) -> "QueryNode":
        """Attach ``child``; mark it as the successor if requested."""
        child.parent = self
        self.children.append(child)
        if successor:
            if self.successor is not None:
                raise ValueError("a query node can have at most one successor")
            self.successor = child
        return child

    # ------------------------------------------------------------------ basic queries
    def is_root(self) -> bool:
        return self.parent is None

    def is_leaf(self) -> bool:
        return not self.children

    def is_wildcard(self) -> bool:
        return self.ntest == WILDCARD

    def predicate_children(self) -> List["QueryNode"]:
        """Children other than the successor (each is pointed to by a predicate leaf)."""
        return [c for c in self.children if c is not self.successor]

    def is_successor(self) -> bool:
        """True if this node is the successor of its parent."""
        return self.parent is not None and self.parent.successor is self

    def is_succession_root(self) -> bool:
        """A node is a succession root if it is the query root or a predicate child."""
        return self.parent is None or not self.is_successor()

    def succession_root(self) -> "QueryNode":
        """The succession root reached by walking up through successor links."""
        node = self
        while not node.is_succession_root():
            assert node.parent is not None
            node = node.parent
        return node

    def succession_leaf(self) -> "QueryNode":
        """``LEAF(u)``: the successor-less node reached by following successors."""
        node = self
        while node.successor is not None:
            node = node.successor
        return node

    # ------------------------------------------------------------------ traversal
    def iter_subtree(self) -> Iterator["QueryNode"]:
        """Pre-order traversal of the subtree rooted at this node (self included)."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def iter_ancestors(self, include_self: bool = False) -> Iterator["QueryNode"]:
        node: Optional[QueryNode] = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> List["QueryNode"]:
        """``PATH(u)``: nodes from the query root down to this node (inclusive)."""
        return list(reversed(list(self.iter_ancestors(include_self=True))))

    def depth(self) -> int:
        """``DEPTH(u) - 1``: number of edges from the root (root has depth 0)."""
        return sum(1 for _ in self.iter_ancestors())

    def is_ancestor_of(self, other: "QueryNode") -> bool:
        return any(anc is self for anc in other.iter_ancestors())

    # ------------------------------------------------------------------ rendering
    def step_string(self) -> str:
        """This node rendered as a single XPath step (axis, node test, predicate)."""
        if self.is_root():
            return ""
        prefix = _AXIS_PREFIX[self.axis or CHILD]
        text = f"{prefix}{self.ntest}"
        if self.predicate is not None:
            text += f"[{self.predicate.to_xpath()}]"
        return text

    def relative_path_string(self) -> str:
        """Render the succession chain starting at this node as a relative path.

        This is how ``NodeRef`` leaves are serialized back into predicate text.
        """
        parts: List[str] = []
        node: Optional[QueryNode] = self
        first = True
        while node is not None:
            if first:
                if node.axis == DESCENDANT:
                    prefix = ".//"
                elif node.axis == ATTRIBUTE:
                    prefix = "@"
                else:
                    prefix = ""
            else:
                prefix = _AXIS_PREFIX[node.axis or CHILD].lstrip()
                prefix = {"/": "/", "//": "//", "/@": "/@"}[_AXIS_PREFIX[node.axis or CHILD]]
            text = f"{prefix}{node.ntest}"
            if node.predicate is not None:
                text += f"[{node.predicate.to_xpath()}]"
            parts.append(text)
            node = node.successor
            first = False
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_root():
            return "QueryNode($)"
        return f"QueryNode({self.axis}::{self.ntest})"


class Query:
    """A Forward XPath query, i.e. a rooted tree of :class:`QueryNode` objects."""

    def __init__(self, root: QueryNode, source: Optional[str] = None) -> None:
        if not root.is_root():
            raise ValueError("query root must have no parent")
        self.root = root
        self.source = source

    # ------------------------------------------------------------------ basics
    @classmethod
    def parse(cls, text: str) -> "Query":
        """Parse an XPath string (convenience wrapper around the parser module)."""
        from .parser import parse_query

        return parse_query(text)

    def nodes(self) -> List[QueryNode]:
        """All query nodes in pre-order (root first)."""
        return list(self.root.iter_subtree())

    def non_root_nodes(self) -> List[QueryNode]:
        return [node for node in self.nodes() if not node.is_root()]

    def size(self) -> int:
        """``|Q|``: number of nodes, excluding the root (matching the paper's figures)."""
        return len(self.non_root_nodes())

    def output_node(self) -> QueryNode:
        """``OUT(Q)``: the succession leaf of the root."""
        return self.root.succession_leaf()

    def depth(self) -> int:
        """Longest root-to-leaf path length (in edges)."""
        return max((node.depth() for node in self.nodes()), default=0)

    def node_tests(self) -> List[str]:
        """All node tests appearing in the query (wildcards included)."""
        return [node.ntest for node in self.non_root_nodes() if node.ntest is not None]

    def element_names(self) -> List[str]:
        """All non-wildcard names appearing in the query."""
        return [t for t in self.node_tests() if t != WILDCARD]

    def max_wildcard_chain(self) -> int:
        """``h``: length of the longest path segment of consecutive wildcard nodes."""
        best = 0
        for node in self.non_root_nodes():
            if not node.is_wildcard():
                continue
            length = 0
            current: Optional[QueryNode] = node
            while current is not None and not current.is_root() and current.is_wildcard():
                length += 1
                current = current.parent
            best = max(best, length)
        return best

    # ------------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the structural invariants of Section 3.1.2.

        Every child of a node is either the successor or is pointed to by exactly one
        ``NodeRef`` leaf of the node's predicate, and no two leaves point at the same
        child.
        """
        for node in self.nodes():
            refs = node.predicate.node_refs() if node.predicate is not None else []
            targets = [ref.target for ref in refs]
            for target in targets:
                if target.parent is not node:
                    raise ValueError(
                        "predicate leaf points at a node that is not a child of its owner"
                    )
            seen_ids = [id(t) for t in targets]
            if len(seen_ids) != len(set(seen_ids)):
                raise ValueError("two predicate leaves point at the same child")
            for child in node.predicate_children():
                if not any(t is child for t in targets):
                    raise ValueError(
                        f"predicate child {child!r} is not referenced by the predicate"
                    )

    # ------------------------------------------------------------------ rendering
    def to_xpath(self) -> str:
        """Serialize the query back to XPath text."""
        from .serializer import serialize_query

        return serialize_query(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({self.to_xpath()!r})"


def iter_succession_chain(node: QueryNode) -> Iterator[QueryNode]:
    """Iterate the succession chain starting at ``node`` (node, successor, ...)."""
    current: Optional[QueryNode] = node
    while current is not None:
        yield current
        current = current.successor


def collect_leaves(query: Query) -> List[QueryNode]:
    """All leaf nodes of the query tree."""
    return [node for node in query.nodes() if node.is_leaf()]
