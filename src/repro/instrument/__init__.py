"""Instrumentation: bit-level memory accounting models for all algorithms."""

from .memory import AutomatonMemoryModel, DOMMemoryModel, FrontierMemoryModel, bits_for

__all__ = [
    "AutomatonMemoryModel",
    "DOMMemoryModel",
    "FrontierMemoryModel",
    "bits_for",
]
