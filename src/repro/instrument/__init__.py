"""Instrumentation: bit-level memory accounting models for all algorithms."""

from .memory import (
    AutomatonMemoryModel,
    DOMMemoryModel,
    FrontierMemoryModel,
    bits_for,
    current_rss_bytes,
    peak_rss_bytes,
)

__all__ = [
    "AutomatonMemoryModel",
    "DOMMemoryModel",
    "FrontierMemoryModel",
    "bits_for",
    "current_rss_bytes",
    "peak_rss_bytes",
]
