"""Bit-level memory accounting models.

The paper's bounds are stated in *bits*, so the benchmark harness needs an explicit
model of how many bits each data structure costs.  Two models are provided:

* :class:`FrontierMemoryModel` — the Theorem 8.8 accounting for the streaming filter:
  each frontier tuple stores a query-node reference (``log |Q|`` bits), a document level
  (``log d`` bits), a string-value start offset (``log w`` bits) and the ``matched``
  flag; the text buffer costs 8 bits per buffered character; plus the level counter.

* :class:`AutomatonMemoryModel` — the accounting used for the automata baselines: the
  transition table costs ``states * alphabet * log(states)`` bits, plus the runtime
  stack of state identifiers.

The module also hosts the process-level counterpart to the modeled bits:
:func:`current_rss_bytes` / :func:`peak_rss_bytes` sample real resident memory
without any third-party dependency, so the resource governor can enforce both a
modeled-bits budget and an RSS safety net.
"""

from __future__ import annotations

import math
import os
import resource
import sys
from dataclasses import dataclass


def current_rss_bytes(pid: "int | None" = None) -> "int | None":
    """Current resident set size of ``pid`` (default: this process) in bytes.

    Reads ``/proc/<pid>/statm`` (resident pages x page size), which is the only
    dependency-free way to sample *current* (not peak) RSS on Linux.  Returns
    ``None`` when the value cannot be sampled — foreign platforms, or a pid
    that has already exited — so callers can treat RSS enforcement as
    best-effort and fall back to the modeled-bits budget alone.
    """
    target = os.getpid() if pid is None else pid
    try:
        with open(f"/proc/{target}/statm", "rb") as fh:
            fields = fh.read().split()
        resident_pages = int(fields[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        if pid is None or pid == os.getpid():
            return peak_rss_bytes()
        return None


def peak_rss_bytes() -> "int | None":
    """Lifetime peak resident set size of *this* process in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are covered.
    Peak RSS never decreases, so this is the right number for "did the run stay
    under the ceiling" assertions and the wrong one for live governor samples
    (use :func:`current_rss_bytes` there).
    """
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (OSError, ValueError):  # pragma: no cover - platform-specific
        return None
    if peak <= 0:  # pragma: no cover - platform-specific
        return None
    return peak if sys.platform == "darwin" else peak * 1024


def bits_for(count: int) -> int:
    """Number of bits needed to address ``count`` distinct values (at least 1)."""
    return max(1, math.ceil(math.log2(max(count, 2))))


@dataclass
class FrontierMemoryModel:
    """Memory model for the Section 8 filter (Theorem 8.8 accounting)."""

    query_size: int
    char_bits: int = 8

    def tuple_bits(self, current_level: int, buffer_chars: int) -> int:
        """Bits for one frontier tuple: node reference + level + offset + flag."""
        return (
            bits_for(self.query_size + 1)
            + bits_for(current_level + 2)
            + bits_for(buffer_chars + 2)
            + 1
        )

    def bits(self, frontier_records: int, buffer_chars: int, current_level: int) -> int:
        """Total bits for the filter's live state."""
        frontier_bits = frontier_records * self.tuple_bits(current_level, buffer_chars)
        buffer_bits = buffer_chars * self.char_bits
        counter_bits = bits_for(current_level + 2)
        return frontier_bits + buffer_bits + counter_bits


@dataclass
class AutomatonMemoryModel:
    """Memory model for automaton-based baselines."""

    char_bits: int = 8

    def transition_table_bits(self, states: int, alphabet_size: int) -> int:
        """Bits for a dense transition table over the given alphabet."""
        return states * max(alphabet_size, 1) * bits_for(states)

    def stack_bits(self, stack_depth: int, states: int) -> int:
        """Bits for a runtime stack of state identifiers."""
        return stack_depth * bits_for(states)

    def nfa_state_set_bits(self, nfa_states: int, stack_depth: int) -> int:
        """Bits for a stack of NFA state *sets* (one bit per NFA state per frame)."""
        return stack_depth * max(nfa_states, 1)


@dataclass
class DOMMemoryModel:
    """Memory model for the buffering (DOM) baseline: the whole document is retained."""

    char_bits: int = 8
    pointer_bits: int = 32

    def bits(self, element_count: int, text_chars: int, name_chars: int) -> int:
        """Bits for a DOM tree with the given number of elements and characters."""
        structural = element_count * 3 * self.pointer_bits  # parent/first-child/sibling
        return structural + (text_chars + name_chars) * self.char_bits
