"""Static per-query cost facts in the paper's accounting.

Everything here is computed from the query tree alone (no documents, no
running bank): the quantities the paper proves bounds in — frontier size
``FS(Q)`` (Definition 4.1), depth, closure-freeness — plus the facts the
compiled engine's behavior depends on (fast-path eligibility, value tests).

The headline output is a *predicted memory bound*: the number of frontier
records the Section 8 filter can hold live at once, instantiated for an
assumed maximum document depth, and converted to bits with exactly the
:class:`~repro.instrument.memory.FrontierMemoryModel` accounting the engines
measure themselves with (``FilterStatistics.peak_memory_bits``).  Because the
static formula and the runtime observation share the same model, "measured
stays within the static bound" is a meaningful, enforceable invariant rather
than a unit-mismatched comparison:

* **Closure-free queries** (no ``descendant`` axis): the filter's live
  frontier never exceeds ``FS(Q) + 1`` records (the ``+1`` is the root
  record; Theorem 8.8 — every record the engine holds at a fire point is the
  fired node or one of its super-siblings, and the child-axis removal
  optimization evicts the fired record itself).  This bound is *tight*: the
  fooling-set families of :mod:`repro.lowerbounds` reach it.

* **Queries with closures**: records are no longer level-locked, so the
  bound picks up document-depth factors.  A record of step ``u`` can occupy
  one level per open element once any ancestor step of ``u`` uses the
  descendant axis, and each level holds at most as many records as the
  parent step can hold — giving the (sound but loose) recurrence
  ``live(u) = live(parent(u)) * (depth if depth-exposed else 1)``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..core.frontier import query_frontier_size
from ..instrument.memory import bits_for
from ..xpath.query import DESCENDANT, Query, QueryNode
from ..xpath.truthset import is_value_restricted


def _closure_free(query: Query) -> bool:
    return all(node.axis != DESCENDANT for node in query.non_root_nodes())


def _is_path(query: Query) -> bool:
    """A pure chain: every node has at most one child (fast-path eligible)."""
    return all(len(node.children) <= 1 for node in query.nodes())


def _depth_exposed(node: QueryNode) -> bool:
    """Whether records of this step can occupy more than one document level.

    True once any step on the root path (this one included) uses the
    descendant axis: below that point candidate matches are no longer pinned
    to a single document level.
    """
    current: QueryNode = node
    while not current.is_root():
        if current.axis == DESCENDANT:
            return True
        assert current.parent is not None
        current = current.parent
    return False


def predicted_frontier_records(query: Query, *, max_depth: int) -> int:
    """Upper bound on the filter's live frontier records for this query.

    ``max_depth`` is the assumed maximum document depth (elements open at
    once); it only matters for queries with descendant axes.  The bound
    counts the root record, hence the ``+ 1`` against ``FS(Q)``.
    """
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    if _closure_free(query):
        return query_frontier_size(query) + 1
    total = 1  # the root record
    live: dict = {id(query.root): 1}
    for node in query.nodes():
        if node.is_root():
            continue
        assert node.parent is not None
        parent_live = live[id(node.parent)]
        factor = max_depth if _depth_exposed(node) else 1
        live[id(node)] = parent_live * factor
        total += live[id(node)]
    return total


def predicted_memory_bits(query: Query, *, max_depth: int,
                          max_text_chars: int) -> int:
    """Static Theorem 8.8 bit bound for the filter's live state.

    Mirrors the engine's per-event observation
    (``FrontierMemoryModel.bits``): each live record costs a query-node
    reference, a level, a buffer offset and the matched flag; the text buffer
    costs 8 bits per buffered character; plus the level counter.  The bound
    is valid whenever the document keeps its depth within ``max_depth`` and
    the filter never buffers more than ``max_text_chars`` characters (i.e.
    no single value-tested element's subtree holds more text than that).
    ``bits_for`` is monotone, so instantiating at the maxima dominates every
    per-event observation.
    """
    if max_text_chars < 0:
        raise ValueError("max_text_chars must be non-negative")
    records = predicted_frontier_records(query, max_depth=max_depth)
    qnode_bits = bits_for(max(query.size(), 1) + 1)
    level_bits = bits_for(max_depth + 2)
    tuple_bits = qnode_bits + level_bits + bits_for(max_text_chars + 2) + 1
    return records * tuple_bits + max_text_chars * 8 + level_bits


@dataclass(frozen=True)
class QueryCostFacts:
    """Statically derived cost facts for one subscription query."""

    canonical: str  #: deterministic XPath serialization (the interning key)
    size: int  #: ``|Q|``: nodes excluding the root
    depth: int  #: longest root-to-leaf path, in edges
    frontier_size: int  #: ``FS(Q)`` (Definition 4.1)
    closure_free: bool  #: no descendant axis: memory independent of depth
    depth_sensitive: bool  #: records (hence memory) grow with document depth
    wildcard_steps: int  #: steps whose node test is ``*`` / ``@*``
    value_tests: int  #: leaves carrying a proper (non-universal) truth set
    fast_path_eligible: bool  #: pure chain: match-only engine keeps no records
    predicted_frontier_records: int  #: live-record bound at ``assumed_max_depth``
    predicted_memory_bits: int  #: Theorem 8.8 bit bound at the assumptions
    predicted_bytes_per_subscription: int  #: the bit bound, in whole bytes
    assumed_max_depth: int  #: document-depth assumption the bound is valid for
    assumed_max_text_chars: int  #: buffered-text assumption the bound is valid for

    def to_dict(self) -> dict:
        return asdict(self)


def analyze_query(query: Query, *, max_depth: int = 32,
                  max_text_chars: int = 256) -> QueryCostFacts:
    """Compute the full static cost profile of one query."""
    records = predicted_frontier_records(query, max_depth=max_depth)
    bits = predicted_memory_bits(query, max_depth=max_depth,
                                 max_text_chars=max_text_chars)
    closure_free = _closure_free(query)
    return QueryCostFacts(
        canonical=query.to_xpath(),
        size=query.size(),
        depth=query.depth(),
        frontier_size=query_frontier_size(query),
        closure_free=closure_free,
        depth_sensitive=not closure_free,
        wildcard_steps=sum(1 for node in query.non_root_nodes()
                           if node.is_wildcard()),
        value_tests=sum(1 for node in query.non_root_nodes()
                        if node.is_leaf() and is_value_restricted(node)),
        fast_path_eligible=_is_path(query),
        predicted_frontier_records=records,
        predicted_memory_bits=bits,
        predicted_bytes_per_subscription=(bits + 7) // 8,
        assumed_max_depth=max_depth,
        assumed_max_text_chars=max_text_chars,
    )
