"""Whole-bank analysis: cost facts + subsumption over a subscription set.

This is the aggregation layer over :mod:`~repro.analysis.costmodel` and
:mod:`~repro.analysis.subsumption`: given the subscriptions of a
:class:`~repro.core.compile.CompiledFilterBank` (or any named query set), it
produces one JSON-serializable report with

* per-plan static cost facts (``FS(Q)``, fast-path eligibility, the
  Theorem 8.8 memory bound at the stated depth/text assumptions), computed
  once per *distinct canonical form* — the bank's plan-interning key — and
  fanned out to subscription names exactly as the bank fans out runtimes;
* trie-sharing aggregates (shared trie nodes vs the unshared step count);
* subsumption findings (duplicates, equivalent and properly contained
  subscriptions).

Entry points: :meth:`CompiledFilterBank.analyze` and
``scripts/analyze_bank.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..xpath.query import Query
from .costmodel import QueryCostFacts, analyze_query
from .subsumption import SubsumptionFinding, find_subsumptions


@dataclass
class BankAnalysis:
    """The full static-analysis report for one subscription set."""

    subscription_count: int
    distinct_plan_count: int
    unshared_step_count: int  #: total query steps if no trie sharing happened
    trie_size: Optional[int]  #: shared trie nodes (None when no bank was given)
    assumed_max_depth: int
    assumed_max_text_chars: int
    subscriptions: Dict[str, str]  #: subscription name -> canonical form
    plans: Dict[str, QueryCostFacts]  #: canonical form -> static cost facts
    subsumptions: List[SubsumptionFinding] = field(default_factory=list)
    subsumption_pairs_checked: int = 0
    subsumption_truncated: bool = False

    # ------------------------------------------------------------------ aggregates
    @property
    def trie_sharing_factor(self) -> Optional[float]:
        """Unshared steps per shared trie node (1.0 = no sharing at all)."""
        if self.trie_size is None or self.trie_size == 0:
            return None
        return self.unshared_step_count / self.trie_size

    def facts_for(self, name: str) -> QueryCostFacts:
        """The cost facts of the plan serving subscription ``name``."""
        return self.plans[self.subscriptions[name]]

    def predicted_total_bytes(self) -> int:
        """Predicted worst-case live state, summed over all subscriptions."""
        return sum(
            self.plans[canonical].predicted_bytes_per_subscription
            for canonical in self.subscriptions.values()
        )

    def summary(self) -> dict:
        per_sub = [self.plans[c] for c in self.subscriptions.values()]
        kinds: Dict[str, int] = {}
        for finding in self.subsumptions:
            kinds[finding.kind] = kinds.get(finding.kind, 0) + 1
        return {
            "subscription_count": self.subscription_count,
            "distinct_plan_count": self.distinct_plan_count,
            "trie_size": self.trie_size,
            "unshared_step_count": self.unshared_step_count,
            "trie_sharing_factor": self.trie_sharing_factor,
            "fast_path_subscriptions": sum(
                1 for f in per_sub if f.fast_path_eligible
            ),
            "closure_free_subscriptions": sum(
                1 for f in per_sub if f.closure_free
            ),
            "depth_sensitive_subscriptions": sum(
                1 for f in per_sub if f.depth_sensitive
            ),
            "max_frontier_size": max((f.frontier_size for f in per_sub), default=0),
            "predicted_total_bytes": self.predicted_total_bytes(),
            "predicted_max_bytes_per_subscription": max(
                (f.predicted_bytes_per_subscription for f in per_sub), default=0
            ),
            "subsumption_findings": kinds,
            "subsumption_pairs_checked": self.subsumption_pairs_checked,
            "subsumption_truncated": self.subsumption_truncated,
        }

    def to_dict(self) -> dict:
        """The JSON report emitted by ``scripts/analyze_bank.py``."""
        return {
            "assumptions": {
                "max_depth": self.assumed_max_depth,
                "max_text_chars": self.assumed_max_text_chars,
            },
            "summary": self.summary(),
            "plans": {c: facts.to_dict() for c, facts in self.plans.items()},
            "subscriptions": dict(self.subscriptions),
            "subsumptions": [f.to_dict() for f in self.subsumptions],
        }


def analyze_queries(
    subscriptions: Iterable[Tuple[str, Query]],
    *,
    max_depth: int = 32,
    max_text_chars: int = 256,
    subsumption: bool = True,
    pair_limit: Optional[int] = None,
    trie_size: Optional[int] = None,
) -> BankAnalysis:
    """Analyze a named query set without needing a bank instance.

    ``pair_limit`` caps the pairwise containment checks of the subsumption
    sweep (``None`` = exhaustive); when the cap bites, the report carries
    ``subsumption_truncated=True`` rather than silently under-reporting.
    """
    named: List[Tuple[str, Query]] = list(subscriptions)
    name_to_canonical: Dict[str, str] = {}
    plans: Dict[str, QueryCostFacts] = {}
    representatives: List[Tuple[str, Query]] = []
    for name, query in named:
        if name in name_to_canonical:
            raise ValueError(f"duplicate subscription name {name!r}")
        canonical = query.to_xpath()
        name_to_canonical[name] = canonical
        if canonical not in plans:
            plans[canonical] = analyze_query(
                query, max_depth=max_depth, max_text_chars=max_text_chars
            )
            representatives.append((name, query))

    findings: List[SubsumptionFinding] = []
    pairs_checked = 0
    truncated = False
    if subsumption:
        findings = find_subsumptions(named, pair_limit=pair_limit)
        potential = len(representatives) * (len(representatives) - 1) // 2
        pairs_checked = (
            potential if pair_limit is None else min(potential, pair_limit)
        )
        truncated = pair_limit is not None and potential > pair_limit

    return BankAnalysis(
        subscription_count=len(named),
        distinct_plan_count=len(plans),
        unshared_step_count=sum(
            query.size() for _name, query in representatives
        ),
        trie_size=trie_size,
        assumed_max_depth=max_depth,
        assumed_max_text_chars=max_text_chars,
        subscriptions=name_to_canonical,
        plans=plans,
        subsumptions=findings,
        subsumption_pairs_checked=pairs_checked,
        subsumption_truncated=truncated,
    )


def analyze_bank(
    bank,
    *,
    max_depth: int = 32,
    max_text_chars: int = 256,
    subsumption: bool = True,
    pair_limit: Optional[int] = None,
) -> BankAnalysis:
    """Analyze a live :class:`~repro.core.compile.CompiledFilterBank`.

    Reads the registered subscriptions and the shared-trie geometry from the
    bank; the bank is not mutated (``trie_size`` forces the trie build, which
    ``register`` performs lazily anyway).
    """
    named = [(name, bank.query(name)) for name in bank.subscriptions()]
    return analyze_queries(
        named,
        max_depth=max_depth,
        max_text_chars=max_text_chars,
        subsumption=subsumption,
        pair_limit=pair_limit,
        trie_size=bank.trie_size() if named else 0,
    )
