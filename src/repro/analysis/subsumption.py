"""Query containment and subscription subsumption detection.

A subscription is *redundant* when another subscription's query matches every
document its own query matches: the bank pays frontier records, trie slots and
delivery work for a filter whose answers are implied by an existing one.
Canonical-form interning (``core/compile.py``) already collapses textually
identical queries; this module goes further and detects *semantic* containment
between distinct plans.

Containment of tree-pattern queries is decided by homomorphism (the classic
Miklau–Suciu characterization): ``container`` contains ``contained`` if there
is a mapping of ``container``'s query tree into ``contained``'s that preserves
the root, maps child/attribute edges to like-axis edges, maps descendant edges
to arbitrary element paths, never weakens a node test, and only strengthens
value tests.  Any document matching ``contained`` provides a witness embedding
of ``contained``'s tree; composing it with the homomorphism yields a witness
for ``container``.  This direction is always sound; for queries mixing
wildcards with descendant axes it is incomplete, so :func:`query_contains`
returning ``False`` means "could not prove", never "provably incomparable".

Soundness relies on two certifications tied to this repo's predicate
semantics (:mod:`repro.xpath.evalexpr`):

* **Container side** — every predicate conjunct must be an atomic predicate
  with at most one variable (plus bare existence refs).  Atomic conjuncts are
  evaluated *existentially* over the selected value sequences (rule 4 of
  Definition 3.5), so a single witness embedding satisfies them; conjuncts we
  cannot fully mirror in the tree-pattern reading (``not(...)``, ``or``,
  multivariate comparisons) make the proof unsound and the check bails out.

* **Contained side** — homomorphism targets must be *guaranteed to exist* in
  every matching document.  A predicate child is guaranteed exactly when its
  conjunct is an atomic predicate: with existential semantics an empty
  selection yields an empty combination product, so the conjunct is false
  unless the full chain exists.  Children of ``not``/``or`` conjuncts are not
  guaranteed and are simply excluded as mapping targets.

Value-test implication is decided on the truth sets of Definition 5.6:
syntactically equal predicates, or single-variable comparisons against
*numeric literal* constants, where the implication table over the reals is
exact (both predicates already exclude values that do not cast to a number).
String-literal comparisons fall back to string ordering for non-numeric
values, which breaks the numeric table (``"2x" > "10"`` holds but
``"2x" > "5"`` does not), so only syntactic equality certifies those.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..xpath.ast import Comparison, Constant, NodeRef, conjuncts, is_atomic_predicate
from ..xpath.evalexpr import evaluate_predicate
from ..xpath.query import (
    CHILD,
    DESCENDANT,
    Query,
    QueryNode,
    iter_succession_chain,
)
from ..xpath.truthset import (
    AtomicPredicateTruthSet,
    TruthSet,
    atomic_predicate_of,
    truth_set,
)
from ..xpath.values import compare_atomic

# ---------------------------------------------------------------------------
# value-test implication
# ---------------------------------------------------------------------------

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _numeric_atom(predicate) -> Optional[Tuple[str, float]]:
    """Extract ``(op, constant)`` from ``ref op number`` / ``number op ref``.

    Only *numeric literal* constants qualify: they force the engine's
    comparison onto the numeric branch (non-numeric values compare false), so
    implication over the reals is exact.  A numeric *string* constant would
    fall back to string comparison for non-numeric values, where the table
    below is wrong.
    """
    if not isinstance(predicate, Comparison):
        return None
    op = predicate.op
    if isinstance(predicate.left, NodeRef) and isinstance(predicate.right, Constant):
        const = predicate.right.value
    elif isinstance(predicate.right, NodeRef) and isinstance(predicate.left, Constant):
        const = predicate.left.value
        op = _FLIP[op]
    else:
        return None
    if isinstance(const, bool) or not isinstance(const, (int, float)):
        return None
    if math.isnan(const):
        return None
    return op, float(const)


def _numeric_implies(sub: Tuple[str, float], sup: Tuple[str, float]) -> bool:
    """Does ``x op2 c2`` imply ``x op1 c1`` for every real ``x``?"""
    op2, c2 = sub
    op1, c1 = sup
    if op2 == "=":
        return compare_atomic(op1, c2, c1)
    if op1 == "!=":
        if op2 == "!=":
            return c1 == c2
        return (
            (op2 == ">" and c1 <= c2)
            or (op2 == ">=" and c1 < c2)
            or (op2 == "<" and c1 >= c2)
            or (op2 == "<=" and c1 > c2)
        )
    if op2 == ">":
        return op1 in (">", ">=") and c1 <= c2
    if op2 == ">=":
        return (op1 == ">=" and c1 <= c2) or (op1 == ">" and c1 < c2)
    if op2 == "<":
        return op1 in ("<", "<=") and c1 >= c2
    if op2 == "<=":
        return (op1 == "<=" and c1 >= c2) or (op1 == "<" and c1 > c2)
    return False


def _truth_implies(sub: TruthSet, sup: TruthSet) -> bool:
    """Certify ``sub ⊆ sup``; False means "could not prove"."""
    if sup.is_universal():
        return True
    if not isinstance(sub, AtomicPredicateTruthSet) or not isinstance(
        sup, AtomicPredicateTruthSet
    ):
        return False
    if sub.predicate.to_xpath() == sup.predicate.to_xpath():
        return True
    sub_atom = _numeric_atom(sub.predicate)
    sup_atom = _numeric_atom(sup.predicate)
    if sub_atom is not None and sup_atom is not None:
        return _numeric_implies(sub_atom, sup_atom)
    return False


# ---------------------------------------------------------------------------
# certification of the two sides
# ---------------------------------------------------------------------------

def _container_supported(query: Query) -> bool:
    """All of the container's constraints are expressible in the tree-pattern
    reading the homomorphism proves: atomic conjuncts with at most one
    variable (constant conjuncts must be vacuously true)."""
    for node in query.nodes():
        if node.predicate is None:
            continue
        for conjunct in conjuncts(node.predicate):
            if not is_atomic_predicate(conjunct):
                return False
            refs = conjunct.node_refs()
            if len(refs) > 1:
                return False
            if not refs and not evaluate_predicate(conjunct, lambda _ref: []):
                return False
    return True


def _guaranteed_ids(query: Query) -> Set[int]:
    """Nodes guaranteed to have a document image in every match of ``query``.

    The main succession chain always matches; a predicate child's chain is
    guaranteed when its conjunct is an atomic predicate (existential
    evaluation over an empty selection is false, so the conjunct forces the
    chain to exist).  Children referenced from ``not``/``or`` conjuncts stay
    out of the set.
    """
    guaranteed: Set[int] = set()

    def add_chain(start: QueryNode) -> None:
        for node in iter_succession_chain(start):
            guaranteed.add(id(node))
            for child in node.predicate_children():
                conjunct = atomic_predicate_of(child)
                if conjunct is not None and is_atomic_predicate(conjunct):
                    add_chain(child)

    add_chain(query.root)
    return guaranteed


# ---------------------------------------------------------------------------
# the homomorphism search
# ---------------------------------------------------------------------------

def _element_descendants(node: QueryNode) -> List[QueryNode]:
    """Proper descendants reachable through element (child/descendant) edges."""
    out: List[QueryNode] = []
    stack = [c for c in node.children if c.axis in (CHILD, DESCENDANT)]
    while stack:
        current = stack.pop()
        out.append(current)
        stack.extend(c for c in current.children if c.axis in (CHILD, DESCENDANT))
    return out


def _compatible(u: QueryNode, v: QueryNode) -> bool:
    """Node test and value test of container node ``u`` hold at image ``v``."""
    if not u.is_wildcard() and u.ntest != v.ntest:
        return False
    required = truth_set(u)
    if required.is_universal():
        return True
    return _truth_implies(truth_set(v), required)


def _embeds(container: Query, contained: Query, guaranteed: Set[int]) -> bool:
    memo: Dict[Tuple[int, int], bool] = {}

    def images(u: QueryNode, v: QueryNode) -> List[QueryNode]:
        if u.axis == DESCENDANT:
            candidates = _element_descendants(v)
        else:
            candidates = [c for c in v.children if c.axis == u.axis]
        return [c for c in candidates if id(c) in guaranteed and _compatible(u, c)]

    def children_embed(u: QueryNode, v: QueryNode) -> bool:
        # Homomorphisms need not be injective, so each child of ``u`` just
        # needs some valid image below ``v``, independently of its siblings.
        key = (id(u), id(v))
        cached = memo.get(key)
        if cached is not None:
            return cached
        ok = all(
            any(children_embed(cu, cv) for cv in images(cu, v))
            for cu in u.children
        )
        memo[key] = ok
        return ok

    return children_embed(container.root, contained.root)


def query_contains(container: Query, contained: Query) -> bool:
    """Certify that every document matched by ``contained`` is matched by
    ``container`` (boolean filter semantics; output nodes are ignored).

    Sound but incomplete: ``False`` means the containment could not be
    proved, not that the queries are incomparable.
    """
    if container.to_xpath() == contained.to_xpath():
        return True
    if not _container_supported(container):
        return False
    if not set(container.element_names()) <= set(contained.element_names()):
        return False
    return _embeds(container, contained, _guaranteed_ids(contained))


# ---------------------------------------------------------------------------
# bank-level sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SubsumptionFinding:
    """One redundancy between two subscriptions.

    ``container`` is the subscription whose query is at least as general;
    ``contained`` is the one whose matches it implies (the redundant side).
    """

    kind: str  #: ``duplicate`` (same canonical form), ``equivalent``, or ``subsumed``
    container: str
    contained: str
    container_query: str
    contained_query: str

    def to_dict(self) -> dict:
        return asdict(self)


def find_subsumptions(
    subscriptions: Iterable[Tuple[str, Query]],
    *,
    pair_limit: Optional[int] = None,
) -> List[SubsumptionFinding]:
    """Report duplicate, equivalent and subsumed subscriptions.

    Subscriptions sharing a canonical form are reported as ``duplicate``
    against the first registrant (mirroring the bank's plan interning).  The
    distinct canonical forms are then compared pairwise with
    :func:`query_contains` in both directions; ``pair_limit`` caps the number
    of candidate pairs examined (``None`` = exhaustive).
    """
    groups: Dict[str, List[str]] = {}
    representative: Dict[str, Query] = {}
    order: List[str] = []
    for name, query in subscriptions:
        canonical = query.to_xpath()
        if canonical not in groups:
            groups[canonical] = []
            representative[canonical] = query
            order.append(canonical)
        groups[canonical].append(name)

    findings: List[SubsumptionFinding] = []
    for canonical in order:
        names = groups[canonical]
        findings.extend(
            SubsumptionFinding("duplicate", names[0], name, canonical, canonical)
            for name in names[1:]
        )

    # Per-representative facts, computed once: certification, guaranteed
    # nodes, and concrete-label sets (a container's concrete labels must all
    # occur in the contained query — a cheap necessary condition).
    reps = [(groups[c][0], representative[c], c) for c in order]
    supported = [_container_supported(q) for (_n, q, _c) in reps]
    guaranteed = [_guaranteed_ids(q) for (_n, q, _c) in reps]
    labels = [set(q.element_names()) for (_n, q, _c) in reps]

    checked = 0
    for i in range(len(reps)):
        for j in range(i + 1, len(reps)):
            if pair_limit is not None and checked >= pair_limit:
                return findings
            checked += 1
            name_i, query_i, canon_i = reps[i]
            name_j, query_j, canon_j = reps[j]
            forward = (
                supported[i]
                and labels[i] <= labels[j]
                and _embeds(query_i, query_j, guaranteed[j])
            )
            backward = (
                supported[j]
                and labels[j] <= labels[i]
                and _embeds(query_j, query_i, guaranteed[i])
            )
            if forward and backward:
                findings.append(
                    SubsumptionFinding("equivalent", name_i, name_j, canon_i, canon_j)
                )
            elif forward:
                findings.append(
                    SubsumptionFinding("subsumed", name_i, name_j, canon_i, canon_j)
                )
            elif backward:
                findings.append(
                    SubsumptionFinding("subsumed", name_j, name_i, canon_j, canon_i)
                )
    return findings
