"""Static analysis of query plans and of the codebase's async discipline.

The paper's central claim is that the memory a streaming XPath filter needs is
*statically predictable*: the query frontier size ``FS(Q)``, the document depth
and the recursion depth bound the space of any correct filter.  This package
turns that claim into tooling, in two independent prongs:

* **Plan analysis** (:mod:`~repro.analysis.costmodel`,
  :mod:`~repro.analysis.subsumption`, :mod:`~repro.analysis.bank`): given a
  :class:`~repro.core.compile.CompiledFilterBank` (or a plain query set),
  compute per-subscription cost facts — ``FS(Q)``, depth/recursion
  sensitivity, fast-path eligibility, trie sharing, and a predicted
  bytes-per-subscription memory bound in the Theorem 8.8 accounting — plus
  subsumption/duplicate detection between subscriptions, so redundant
  registrations are reported before they cost memory.  The static bits bound
  is cross-checked against :mod:`repro.instrument.memory` high-water
  measurements by ``benchmarks/test_bench_memory_model.py`` and enforced as a
  trajectory floor, making the paper's space guarantee a CI invariant.

* **Async-discipline linting** (:mod:`~repro.analysis.astlint`): an AST-based
  checker for the invariants the service/net layers rely on — every
  ``asyncio.Queue`` bounded, no swallowed ``CancelledError``, no blocking
  calls inside coroutines, no orphaned tasks — run by
  ``scripts/lint_async.py`` and as a tier-1 test over the real source tree.
"""

from .astlint import LintFinding, lint_paths, lint_source
from .bank import BankAnalysis, analyze_bank, analyze_queries
from .costmodel import (
    QueryCostFacts,
    analyze_query,
    predicted_frontier_records,
    predicted_memory_bits,
)
from .subsumption import SubsumptionFinding, find_subsumptions, query_contains

__all__ = [
    "BankAnalysis",
    "LintFinding",
    "QueryCostFacts",
    "SubsumptionFinding",
    "analyze_bank",
    "analyze_queries",
    "analyze_query",
    "find_subsumptions",
    "lint_paths",
    "lint_source",
    "predicted_frontier_records",
    "predicted_memory_bits",
    "query_contains",
]
