"""AST linter for the repo's async discipline (the codebase prong).

The service and net layers rely on a handful of concurrency invariants that
Python will not enforce and that unit tests only catch probabilistically:

* **ASY101 — every ``asyncio.Queue`` is bounded.**  An unbounded queue turns
  a slow consumer into unbounded memory growth; delivery queues here are
  bounded + lossy-oldest by design, so an unbounded constructor is always a
  bug or needs an explicit waiver.
* **ASY102 — cancellation is never swallowed.**  ``contextlib.suppress`` over
  ``CancelledError``/``BaseException``, or an ``except`` clause catching them
  (or a bare ``except:``) without re-raising, breaks task teardown: the
  awaiting coroutine absorbs its own cancellation and keeps running.
  (``except Exception`` is fine — ``CancelledError`` derives from
  ``BaseException`` on all supported interpreters.)
* **ASY103 — no blocking calls inside ``async def``.**  ``time.sleep``, sync
  ``subprocess``/``os`` process helpers, ``open``, sync socket connects and
  ``urllib`` requests stall the entire event loop.
* **ASY104 — every spawned task is retained.**  A bare
  ``create_task(...)``/``ensure_future(...)`` expression statement leaves the
  task unreferenced: the event loop holds only a weak reference, so the task
  can be garbage-collected mid-flight, and its exception is lost either way.

A violation that is deliberate is waived with a trailing comment on the
offending line (or the line above it)::

    task = loop.create_task(work())  # lint-async: allow[ASY104]

The comment must name the exact code; a waiver without a reason comment next
to it should not survive review.  Run via ``scripts/lint_async.py`` (the CI
gate) or :func:`lint_paths`; the linter is itself regression-tested against
fixture files in ``tests/analysis/fixtures/``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

#: constructors that must receive a non-zero bound (positional or ``maxsize=``)
_QUEUE_TYPES = {"asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue"}

#: exception names whose suppression swallows task cancellation
_CANCEL_NAMES = {"asyncio.CancelledError", "BaseException"}

#: calls that block the event loop when made from a coroutine
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "open",
}

#: task-spawning calls whose result must be retained (ASY104); matched both as
#: qualified names and as bare method names so ``loop.create_task`` and
#: ``asyncio.get_running_loop().create_task`` are caught
_SPAWN_QUALNAMES = {"asyncio.create_task", "asyncio.ensure_future"}
_SPAWN_METHODS = {"create_task", "ensure_future"}

_ALLOW_RE = re.compile(r"#\s*lint-async:\s*allow\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _allowed_codes(lines: Sequence[str], line: int) -> Set[str]:
    """Waiver codes applying to 1-indexed ``line``: a trailing comment on the
    line itself, or a comment-*only* line directly above (a trailing waiver
    never leaks onto the next statement)."""
    codes: Set[str] = set()
    candidates = [line - 1]
    if 0 <= line - 2 < len(lines) and lines[line - 2].lstrip().startswith("#"):
        candidates.append(line - 2)
    for idx in candidates:
        if 0 <= idx < len(lines):
            match = _ALLOW_RE.search(lines[idx])
            if match:
                codes.update(c.strip() for c in match.group(1).split(","))
    return codes


class _ImportTable:
    """Resolves local names back to canonical dotted names.

    Tracks ``import x [as y]`` and ``from x import y [as z]`` so that e.g.
    ``from asyncio import Queue`` still trips ASY101 and ``import time as t``
    still trips ASY103.  Resolution is best-effort: unknown names resolve to
    themselves.
    """

    def __init__(self) -> None:
        self._modules: Dict[str, str] = {}  # local alias -> module dotted name
        self._names: Dict[str, str] = {}  # local alias -> module.name

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self._modules[local] = alias.name if alias.asname else local

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never shadow the stdlib names we match
        for alias in node.names:
            local = alias.asname or alias.name
            self._names[local] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.expr) -> Optional[str]:
        """Dotted name of an expression, with aliases resolved; None if it is
        not a plain name/attribute chain (calls in the chain keep their
        trailing attribute path, so ``asyncio.get_running_loop().create_task``
        qualifies as ``create_task``)."""
        if isinstance(node, ast.Name):
            if node.id in self._names:
                return self._names[node.id]
            if node.id in self._modules:
                return self._modules[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.qualify(node.value)
            if base is None:
                return node.attr
            return f"{base}.{node.attr}"
        return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines
        self.imports = _ImportTable()
        self.findings: List[LintFinding] = []
        self._async_depth = 0

    # ------------------------------------------------------------------ helpers
    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in _allowed_codes(self.lines, line):
            return
        self.findings.append(
            LintFinding(self.path, line, getattr(node, "col_offset", 0), code, message)
        )

    def _is_cancel_catcher(self, expr: Optional[ast.expr]) -> bool:
        """Does this except/suppress type include CancelledError (or a base)?"""
        if expr is None:
            return True  # bare ``except:`` catches everything
        if isinstance(expr, ast.Tuple):
            return any(self._is_cancel_catcher(item) for item in expr.elts)
        qualified = self.imports.qualify(expr)
        return qualified in _CANCEL_NAMES

    # ------------------------------------------------------------------ imports
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------ async scope
    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a sync def nested in a coroutine is its own (non-async) execution
        # context: don't attribute its calls to the enclosing coroutine
        depth, self._async_depth = self._async_depth, 0
        try:
            self.generic_visit(node)
        finally:
            self._async_depth = depth

    def visit_Lambda(self, node: ast.Lambda) -> None:
        depth, self._async_depth = self._async_depth, 0
        try:
            self.generic_visit(node)
        finally:
            self._async_depth = depth

    # ------------------------------------------------------------------ ASY101/103
    def visit_Call(self, node: ast.Call) -> None:
        qualified = self.imports.qualify(node.func)
        if qualified in _QUEUE_TYPES:
            self._check_queue_bound(node, qualified)
        if self._async_depth and qualified in _BLOCKING_CALLS:
            self._report(
                node,
                "ASY103",
                f"blocking call {qualified}() inside an async function stalls "
                "the event loop; use an async equivalent or run_in_executor",
            )
        if qualified == "contextlib.suppress":
            for arg in node.args:
                if self._is_cancel_catcher(arg):
                    self._report(
                        node,
                        "ASY102",
                        "contextlib.suppress() over CancelledError/BaseException "
                        "swallows task cancellation; catch narrowly and re-raise "
                        "CancelledError",
                    )
                    break
        self.generic_visit(node)

    def _check_queue_bound(self, node: ast.Call, qualified: str) -> None:
        bound: Optional[ast.expr] = None
        if node.args:
            bound = node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                bound = keyword.value
        unbounded = bound is None or (
            isinstance(bound, ast.Constant) and not bound.value
        )
        if unbounded:
            self._report(
                node,
                "ASY101",
                f"{qualified}() without a positive maxsize is unbounded; a slow "
                "consumer then grows memory without limit — pass maxsize and "
                "choose a full-queue policy",
            )

    # ------------------------------------------------------------------ ASY102
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_cancel_catcher(node.type):
            if not any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                what = "bare except:" if node.type is None else (
                    f"except {ast.unparse(node.type)}:"
                )
                self._report(
                    node,
                    "ASY102",
                    f"{what} catches CancelledError without re-raising; task "
                    "cancellation is swallowed — re-raise CancelledError (or "
                    "catch Exception instead)",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ ASY104
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            qualified = self.imports.qualify(value.func)
            if qualified is not None and (
                qualified in _SPAWN_QUALNAMES
                or qualified.rsplit(".", 1)[-1] in _SPAWN_METHODS
            ):
                self._report(
                    node,
                    "ASY104",
                    f"task from {qualified}() is not retained: the loop keeps "
                    "only a weak reference, so the task can be collected "
                    "mid-flight and its exception is lost — keep a reference "
                    "(and add a done callback) or await it",
                )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text; syntax errors are reported as ASY000."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(path, exc.lineno or 0, exc.offset or 0, "ASY000",
                        f"syntax error: {exc.msg}")
        ]
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.path, f.line, f.col, f.code))


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[LintFinding]:
    """Lint ``.py`` files; directories are walked recursively (sorted order)."""
    findings: List[LintFinding] = []
    for entry in paths:
        root = Path(entry)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(
                lint_source(file.read_text(encoding="utf-8"), str(file))
            )
    return findings
