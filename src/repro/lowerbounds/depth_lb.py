"""The document-depth lower-bound construction (Theorems 4.6 and 7.14).

For a query containing a child-axis step whose node test and parent's node test are not
wildcards, the construction produces a fooling set of ``Omega(d)`` three-way splits
``(alpha_i, beta_i, gamma_i)`` of documents of depth at most ``d``: the distinguished
element is pushed ``i`` levels down a fresh padding chain on both sides.  Combining the
middle part of one document with the outer parts of a deeper one re-parents the
distinguished element onto a padding node, so the crossing document is well formed but
no longer matches — which forces any streaming algorithm to remember the current depth
(``Omega(log d)`` bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.canonical import CanonicalDocument, build_canonical_document
from ..core.errors import UnsupportedQueryError
from ..core.fragments import depth_lb_witness
from ..xmlstream.build import try_build_document
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import EndElement, Event, StartElement
from ..xpath.query import Query, QueryNode
from .streamsplit import split_around


@dataclass
class DepthInstance:
    """One member of the depth fooling set: a three-way split of a document stream."""

    index: int
    alpha: Tuple[Event, ...]
    beta: Tuple[Event, ...]
    gamma: Tuple[Event, ...]

    def document(self) -> Optional[XMLDocument]:
        return try_build_document(list(self.alpha) + list(self.beta) + list(self.gamma))


@dataclass
class DepthFamily:
    """The fooling-set family for the document-depth bound."""

    query: Query
    max_depth: int
    witness: QueryNode
    padding_name: str
    canonical: Optional[CanonicalDocument]
    instances: List[DepthInstance] = field(default_factory=list)

    @property
    def expected_bound_bits(self) -> float:
        """``log2(t) / 2`` where ``t`` is the family size (the Theorem 4.6 bound)."""
        import math

        return math.log2(len(self.instances)) / 2 if self.instances else 0.0

    def cross_document(self, outer: DepthInstance, inner: DepthInstance
                       ) -> Optional[XMLDocument]:
        """``alpha_i . beta_j . gamma_i`` — the cross combination used by the proof."""
        return try_build_document(
            list(outer.alpha) + list(inner.beta) + list(outer.gamma)
        )


def _fresh_padding_name(query: Query, avoid: Tuple[str, ...]) -> str:
    used = set(query.element_names()) | set(avoid)
    for candidate in ("Y", "Y0", "Y1", "PAD", "PAD0"):
        if candidate not in used:
            return candidate
    index = 0
    while f"Pad{index}" in used:  # pragma: no cover - fixed candidates exhausted
        index += 1
    return f"Pad{index}"


def build_simple_depth_family(max_depth: int) -> DepthFamily:
    """The Theorem 4.6 construction for the concrete query ``/a/b``.

    ``D_i`` nests a padding chain of length ``i`` on each side of the ``b`` element, for
    ``i = 0 .. max_depth - 1``.
    """
    query = Query.parse("/a/b")
    witness = depth_lb_witness(query)
    assert witness is not None
    family = DepthFamily(query=query, max_depth=max_depth, witness=witness,
                         padding_name="Z", canonical=None)
    from ..xmlstream.events import EndDocument, StartDocument

    for i in range(max_depth):
        alpha: List[Event] = [StartDocument(), StartElement("a")]
        alpha.extend(StartElement("Z") for _ in range(i))
        beta: List[Event] = []
        beta.extend(EndElement("Z") for _ in range(i))
        beta.extend([StartElement("b"), EndElement("b")])
        beta.extend(StartElement("Z") for _ in range(i))
        gamma: List[Event] = []
        gamma.extend(EndElement("Z") for _ in range(i))
        gamma.extend([EndElement("a"), EndDocument()])
        family.instances.append(
            DepthInstance(index=i, alpha=tuple(alpha), beta=tuple(beta),
                          gamma=tuple(gamma))
        )
    return family


def build_depth_family(query: Query, max_depth: int) -> DepthFamily:
    """The Theorem 7.14 construction for an arbitrary redundancy-free query.

    The canonical document is split around the shadow of the witness node ``u``; each
    instance pushes that shadow ``i`` levels down a fresh padding chain (and opens a
    second chain of the same length after it, so the two halves stay balanced).
    """
    witness = depth_lb_witness(query)
    if witness is None:
        raise UnsupportedQueryError(
            f"{query.to_xpath()!r} has no child-axis step with non-wildcard node tests; "
            "the document-depth bound does not apply"
        )
    canonical = build_canonical_document(query)
    padding = _fresh_padding_name(query, avoid=(canonical.aux_name,))
    alpha_base, beta_base, gamma_base = split_around(
        canonical.document, canonical.shadow(witness)
    )
    base_depth = canonical.document.depth()
    available = max(max_depth - base_depth, 1)
    family = DepthFamily(query=query, max_depth=max_depth, witness=witness,
                         padding_name=padding, canonical=canonical)
    for i in range(available):
        alpha = list(alpha_base) + [StartElement(padding)] * i
        beta = (
            [EndElement(padding)] * i
            + list(beta_base)
            + [StartElement(padding)] * i
        )
        gamma = [EndElement(padding)] * i + list(gamma_base)
        family.instances.append(
            DepthInstance(index=i, alpha=tuple(alpha), beta=tuple(beta),
                          gamma=tuple(gamma))
        )
    return family
