"""Lower-bound machinery: communication complexity, fooling sets, and the three
document-family constructions of the paper (frontier, recursion depth, document depth)."""

from .communication import (
    FoolingPair,
    FoolingSetCheck,
    ProtocolSimulation,
    disjointness_instances,
    disjointness_lower_bound_bits,
    simulate_protocol,
    verify_fooling_set,
)
from .depth_lb import DepthFamily, DepthInstance, build_depth_family, build_simple_depth_family
from .frontier_lb import FrontierFamily, build_frontier_family
from .recursion_lb import (
    RecursionFamily,
    RecursionInstance,
    build_recursion_family,
    build_simple_recursion_family,
)
from .streamsplit import event_spans, slice_between, split_around
from .verify import (
    CutStateMeasurement,
    DepthFamilyCheck,
    RecursionFamilyCheck,
    measure_filter_cut_state,
    verify_depth_family,
    verify_frontier_family,
    verify_recursion_family,
)

__all__ = [
    "CutStateMeasurement",
    "DepthFamily",
    "DepthFamilyCheck",
    "DepthInstance",
    "FoolingPair",
    "FoolingSetCheck",
    "FrontierFamily",
    "ProtocolSimulation",
    "RecursionFamily",
    "RecursionFamilyCheck",
    "RecursionInstance",
    "build_depth_family",
    "build_frontier_family",
    "build_recursion_family",
    "build_simple_depth_family",
    "build_simple_recursion_family",
    "disjointness_instances",
    "disjointness_lower_bound_bits",
    "event_spans",
    "measure_filter_cut_state",
    "simulate_protocol",
    "slice_between",
    "split_around",
    "verify_depth_family",
    "verify_fooling_set",
    "verify_frontier_family",
    "verify_recursion_family",
]
