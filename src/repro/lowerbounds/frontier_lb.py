"""The query-frontier-size lower-bound construction (Theorems 4.2 and 7.1).

For a redundancy-free query the construction builds a fooling set of ``2^{FS(Q)}``
prefix/suffix pairs of XML streams: the canonical document's largest document frontier
is partitioned into a subset ``T`` (streamed early, inside the prefix) and its
complement (streamed late, inside the suffix).  All diagonal combinations form documents
that match the query; crossing a prefix of ``T`` with a suffix of ``T' != T`` drops at
least one frontier subtree, so the crossing document cannot match.  The fooling-set
technique together with the reduction lemma then gives an ``FS(Q)``-bit memory lower
bound for any streaming algorithm.

This module builds the family; :mod:`repro.lowerbounds.verify` checks the fooling-set
property against the reference evaluator, and the benchmark harness measures the state
our own streaming filter must carry across the prefix/suffix cut.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.canonical import CanonicalDocument, build_canonical_document
from ..core.frontier import document_frontier, query_frontier_size
from ..xmlstream.build import try_build_document
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import EndDocument, EndElement, Event, StartDocument, StartElement
from ..xmlstream.node import TEXT, XMLNode
from ..xpath.query import Query
from .communication import FoolingPair
from .streamsplit import event_spans


@dataclass
class FrontierFamily:
    """The fooling-set family for one query."""

    query: Query
    canonical: CanonicalDocument
    frontier_node: XMLNode
    frontier: List[XMLNode]
    pairs: List[FoolingPair[Tuple[Event, ...]]] = field(default_factory=list)
    subsets: List[Tuple[int, ...]] = field(default_factory=list)

    @property
    def frontier_size(self) -> int:
        return len(self.frontier)

    @property
    def expected_bound_bits(self) -> int:
        """The memory bound the family certifies: ``log2(2^FS) = FS`` bits."""
        return self.frontier_size

    def document_for(self, pair: FoolingPair[Tuple[Event, ...]]) -> Optional[XMLDocument]:
        """The document formed by a (prefix, suffix) pair, or ``None`` if malformed."""
        return try_build_document(list(pair.alpha) + list(pair.beta))

    def cross_document(self, first: FoolingPair, second: FoolingPair
                       ) -> Optional[XMLDocument]:
        """The document ``alpha_T . beta_{T'}`` for two (possibly different) pairs."""
        return try_build_document(list(first.alpha) + list(second.beta))


def _largest_shadow_frontier_node(canonical: CanonicalDocument) -> XMLNode:
    """The shadow node with the largest document frontier.

    Artificial nodes are skipped: each has a shadow descendant whose frontier is at
    least as large (they sit on sibling-less chains).
    """
    best_node: Optional[XMLNode] = None
    best_size = -1
    for node in canonical.document.iter_nodes():
        if node.kind == TEXT or node is canonical.document.root:
            continue
        if canonical.is_artificial(node):
            continue
        size = len(document_frontier(node))
        if size > best_size:
            best_node, best_size = node, size
    if best_node is None:  # pragma: no cover - canonical documents are never empty
        raise ValueError("canonical document has no shadow nodes")
    return best_node


def _subtree_events(events: List[Event], spans: Dict[int, Tuple[int, int]],
                    node: XMLNode) -> List[Event]:
    start, end = spans[id(node)]
    return events[start:end + 1]


def build_frontier_family(query: Query, *, max_subsets: Optional[int] = None
                          ) -> FrontierFamily:
    """Build the ``2^{FS}`` fooling-set family for a redundancy-free query.

    ``max_subsets`` truncates the family (keeping the empty and full subsets plus the
    lexicographically first ones) so that benchmarks can work with queries whose
    frontier would otherwise produce an impractically large family.
    """
    canonical = build_canonical_document(query)
    document = canonical.document
    events, spans = event_spans(document)
    x = _largest_shadow_frontier_node(canonical)
    frontier = document_frontier(x)
    path = x.path_from_root()  # document root first, x last

    family = FrontierFamily(
        query=query,
        canonical=canonical,
        frontier_node=x,
        frontier=frontier,
    )

    frontier_ids = {id(node) for node in frontier}
    subsets: List[Tuple[int, ...]] = [
        tuple(bits) for bits in itertools.product((0, 1), repeat=len(frontier))
    ]
    if max_subsets is not None and len(subsets) > max_subsets:
        keep = [subsets[0], subsets[-1]]
        keep.extend(s for s in subsets[1:-1][: max_subsets - 2])
        subsets = keep

    for bits in subsets:
        chosen = {id(node) for node, bit in zip(frontier, bits) if bit}
        alpha, beta = _pair_for_subset(events, spans, path, frontier_ids, chosen)
        label = "T={" + ",".join(
            (node.name or "?") for node, bit in zip(frontier, bits) if bit
        ) + "}"
        family.pairs.append(FoolingPair(alpha=tuple(alpha), beta=tuple(beta), label=label))
        family.subsets.append(bits)
    return family


def _pair_for_subset(
    events: List[Event],
    spans: Dict[int, Tuple[int, int]],
    path: Sequence[XMLNode],
    frontier_ids: set,
    chosen: set,
) -> Tuple[List[Event], List[Event]]:
    """Build the (alpha_T, beta_T) streams for one frontier subset.

    Walking down the path ``x_1 .. x_l`` (``x_1`` is the document root, ``x_l = x``),
    every path node except ``x`` acts as a wrapper: its start tag plus the subtrees of
    its children that belong to ``T`` go into the prefix, and the subtrees of its
    children in the complement plus its end tag go into the suffix (closing inner-most
    first).  The frontier node ``x`` itself is a child of the last wrapper and its
    subtree goes to whichever side the subset assigns it.  The document root contributes
    the ``<$>``/``</$>`` envelope instead of element tags.
    """
    alpha: List[Event] = []
    closing_segments: List[List[Event]] = []

    wrappers = list(path[:-1])
    for wrapper in wrappers:
        if wrapper.kind == "root":
            alpha.append(StartDocument())
            end_tag: List[Event] = [EndDocument()]
        else:
            alpha.append(StartElement(wrapper.name or ""))
            end_tag = [EndElement(wrapper.name or "")]
        early: List[Event] = []
        late: List[Event] = []
        for child in wrapper.children:
            if child.kind == TEXT:
                # leading canonical text values stay with the start tag (prefix side)
                early.append(_text_event(child))
                continue
            if id(child) not in frontier_ids:
                # the next path node: emitted by the next loop iteration
                continue
            subtree = _subtree_events(events, spans, child)
            if id(child) in chosen:
                early.extend(subtree)
            else:
                late.extend(subtree)
        alpha.extend(early)
        closing_segments.append(late + end_tag)

    beta: List[Event] = []
    for segment in reversed(closing_segments):
        beta.extend(segment)
    return alpha, beta


def _text_event(node: XMLNode):
    from ..xmlstream.events import Text

    return Text(node.text_content or "")
