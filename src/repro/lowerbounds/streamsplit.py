"""Helpers for splitting document event streams at specific nodes.

The lower-bound constructions cut the canonical document's event stream at positions
defined by particular document nodes (e.g. "just before the startElement of SHADOW(u)").
This module computes, for every element node of a document, the index of its start and
end events in the document's event list.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..xmlstream.document import XMLDocument
from ..xmlstream.events import Event
from ..xmlstream.node import TEXT, XMLNode


def event_spans(document: XMLDocument) -> Tuple[List[Event], Dict[int, Tuple[int, int]]]:
    """Return the document's events and a map ``id(element) -> (start_idx, end_idx)``.

    ``start_idx`` is the index of the element's ``StartElement`` event and ``end_idx``
    the index of its ``EndElement`` event in the returned list.  The document envelope
    occupies indices ``0`` and ``len(events) - 1``.
    """
    events = document.events()
    spans: Dict[int, Tuple[int, int]] = {}
    index = 0  # we recount by walking the tree in emission order

    def walk(node: XMLNode, position: int) -> int:
        for child in node.children:
            if child.kind == TEXT:
                position += 1
                continue
            start = position
            position += 1
            position = walk(child, position)
            end = position
            position += 1
            spans[id(child)] = (start, end)
        return position

    walk(document.root, 1)
    return events, spans


def split_around(document: XMLDocument, node: XMLNode
                 ) -> Tuple[List[Event], List[Event], List[Event]]:
    """Split the stream into (before, element-of-node, after) around ``node``.

    ``before`` ends just before the node's start event; ``after`` begins just after its
    end event.
    """
    events, spans = event_spans(document)
    start, end = spans[id(node)]
    return events[:start], events[start:end + 1], events[end + 1:]


def slice_between(document: XMLDocument, first: XMLNode, second: XMLNode) -> List[Event]:
    """Events strictly between the end of ``first`` and the start of ``second``."""
    events, spans = event_spans(document)
    _, first_end = spans[id(first)]
    second_start, _ = spans[id(second)]
    if second_start < first_end:
        raise ValueError("second node does not follow first node in document order")
    return events[first_end + 1:second_start]
