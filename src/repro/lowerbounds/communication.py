"""Communication-complexity machinery (Section 3.2) in executable form.

The lower bounds go through two tools:

* the **reduction lemma** (Lemma 3.7): a streaming algorithm using ``S`` bits of state
  yields a ``k``-round communication protocol with ``(k-1) * S + log|Z|`` bits of
  communication, obtained by sending the algorithm's state at each cut of the stream;
* the **fooling-set technique** (Theorem 3.9): a fooling set of size ``|S|`` forces any
  protocol to use at least ``log |S|`` bits.

We cannot, of course, quantify over "any algorithm" in code; instead this module makes
the two tools executable for *given* algorithms and input families:

* :func:`simulate_protocol` runs a streaming algorithm over a partitioned stream and
  measures the state that must cross each cut (an upper bound witness for the protocol
  cost of Lemma 3.7);
* :class:`FoolingSet` + :func:`verify_fooling_set` check the combinatorial property a
  candidate fooling set must satisfy (every constructed family in the package is checked
  against the reference evaluator this way);
* :func:`disjointness_instances` generates the set-disjointness instances used by the
  recursion-depth bound together with their ground-truth answers.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

InputT = TypeVar("InputT")
OutputT = TypeVar("OutputT")


# --------------------------------------------------------------------------- fooling sets
@dataclass(frozen=True)
class FoolingPair(Generic[InputT]):
    """One (alpha, beta) element of a fooling set: a stream split into two halves."""

    alpha: InputT
    beta: InputT
    label: str = ""


@dataclass
class FoolingSetCheck:
    """Result of verifying a candidate fooling set."""

    size: int
    valid: bool
    violations: List[str]

    @property
    def communication_bound_bits(self) -> float:
        """The communication lower bound the set certifies: ``log2 |S|``."""
        return math.log2(self.size) if self.size > 0 else 0.0


def verify_fooling_set(
    pairs: Sequence[FoolingPair[InputT]],
    evaluate: Callable[[InputT, InputT], Optional[OutputT]],
    expected_output: OutputT,
    *,
    max_cross_checks: Optional[int] = None,
) -> FoolingSetCheck:
    """Check the two fooling-set conditions of Definition 3.8.

    ``evaluate(alpha, beta)`` must return the function value for the combined input, or
    ``None`` when the combined input is not well formed.  Condition (1): every pair in
    the set is well formed and evaluates to ``expected_output``.  Condition (2): for any
    two distinct pairs, at least one of the two cross combinations is well formed and
    evaluates to something different from ``expected_output``.

    ``max_cross_checks`` bounds the number of cross pairs examined (useful for the
    exponentially large frontier families); when it is hit the remaining pairs are
    sampled deterministically.
    """
    violations: List[str] = []
    for pair in pairs:
        value = evaluate(pair.alpha, pair.beta)
        if value is None or value != expected_output:
            violations.append(
                f"diagonal pair {pair.label or pair} does not evaluate to the expected output"
            )
    cross_pairs = list(itertools.combinations(range(len(pairs)), 2))
    if max_cross_checks is not None and len(cross_pairs) > max_cross_checks:
        rng = random.Random(20040613)
        cross_pairs = rng.sample(cross_pairs, max_cross_checks)
    for i, j in cross_pairs:
        first, second = pairs[i], pairs[j]
        cross_one = evaluate(first.alpha, second.beta)
        cross_two = evaluate(second.alpha, first.beta)
        ok_one = cross_one is not None and cross_one != expected_output
        ok_two = cross_two is not None and cross_two != expected_output
        if not (ok_one or ok_two):
            violations.append(
                f"pairs {first.label or i} / {second.label or j}: neither cross input "
                "is well-formed-and-different"
            )
    return FoolingSetCheck(size=len(pairs), valid=not violations, violations=violations)


# --------------------------------------------------------------------------- protocol simulation
@dataclass
class ProtocolSimulation:
    """Outcome of simulating the Lemma 3.7 protocol on one partitioned input."""

    output: object
    rounds: int
    state_bits_per_cut: List[int]

    @property
    def max_state_bits(self) -> int:
        return max(self.state_bits_per_cut, default=0)

    @property
    def total_communication_bits(self) -> int:
        return sum(self.state_bits_per_cut)


def simulate_protocol(
    make_algorithm: Callable[[], object],
    segments: Sequence[Iterable[object]],
    *,
    feed: Callable[[object, object], None],
    finish: Callable[[object], object],
    state_bits: Callable[[object], int],
) -> ProtocolSimulation:
    """Run a streaming algorithm over ``segments`` and measure the state at each cut.

    This is the executable form of the Lemma 3.7 reduction: Alice and Bob alternately
    own the segments and exchange the algorithm's state at every boundary.  ``feed``
    pushes one event into the algorithm, ``finish`` extracts the output, and
    ``state_bits`` reports the size (in bits) of the algorithm's live state — which is
    exactly what would be communicated.
    """
    algorithm = make_algorithm()
    cuts: List[int] = []
    for index, segment in enumerate(segments):
        for event in segment:
            feed(algorithm, event)
        if index < len(segments) - 1:
            cuts.append(state_bits(algorithm))
    return ProtocolSimulation(
        output=finish(algorithm),
        rounds=len(segments),
        state_bits_per_cut=cuts,
    )


# --------------------------------------------------------------------------- set disjointness
def disjointness_instances(
    r: int,
    *,
    count: Optional[int] = None,
    seed: int = 7,
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...], bool]]:
    """Instances ``(s, t, intersecting)`` of the set-disjointness problem on r bits.

    When ``count`` is None and ``r`` is small (<= 10) every pair of characteristic
    vectors is produced, otherwise ``count`` random instances are sampled.
    """
    if count is None and r <= 10:
        vectors = list(itertools.product((0, 1), repeat=r))
        return [
            (s, t, any(a and b for a, b in zip(s, t)))
            for s in vectors
            for t in vectors
        ]
    rng = random.Random(seed)
    sample_count = count if count is not None else 200
    out: List[Tuple[Tuple[int, ...], Tuple[int, ...], bool]] = []
    for _ in range(sample_count):
        s = tuple(rng.randint(0, 1) for _ in range(r))
        t = tuple(rng.randint(0, 1) for _ in range(r))
        out.append((s, t, any(a and b for a, b in zip(s, t))))
    return out


def disjointness_lower_bound_bits(r: int) -> int:
    """The Omega(r) communication lower bound for set disjointness (here: exactly r)."""
    return r
