"""Verification of the lower-bound document families against the reference semantics.

Each construction in this package comes with a combinatorial property the paper's proof
relies on (fooling-set conditions, or the disjointness correspondence).  The verifiers
here check those properties *executably*, using the reference evaluator as ground truth,
and additionally run the Lemma 3.7 protocol simulation against our own streaming filter
to measure the state that crosses each stream cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.filter import StreamingFilter
from ..instrument.memory import FrontierMemoryModel
from ..semantics.evaluator import bool_eval
from ..xmlstream.build import try_build_document
from .communication import FoolingSetCheck, verify_fooling_set
from .depth_lb import DepthFamily
from .frontier_lb import FrontierFamily
from .recursion_lb import RecursionFamily


# --------------------------------------------------------------------------- frontier family
def verify_frontier_family(family: FrontierFamily, *,
                           max_cross_checks: Optional[int] = 256) -> FoolingSetCheck:
    """Check the Theorem 7.1 fooling-set conditions with the reference evaluator."""

    def evaluate(alpha, beta):
        document = try_build_document(list(alpha) + list(beta))
        if document is None:
            return None
        return bool_eval(family.query, document)

    return verify_fooling_set(
        family.pairs, evaluate, expected_output=True, max_cross_checks=max_cross_checks
    )


# --------------------------------------------------------------------------- recursion family
@dataclass
class RecursionFamilyCheck:
    """Result of verifying the disjointness correspondence of a recursion family."""

    instances: int
    valid: bool
    violations: List[str]
    max_recursion_depth: int


def verify_recursion_family(family: RecursionFamily, *, check_depth: bool = True
                            ) -> RecursionFamilyCheck:
    """Check that ``D_{s,t}`` matches the query iff the two sets intersect."""
    from ..core.metrics import recursion_depth

    violations: List[str] = []
    max_depth = 0
    for instance in family.instances:
        document = instance.document()
        if document is None:
            violations.append(f"instance s={instance.s} t={instance.t}: malformed document")
            continue
        matches = bool_eval(family.query, document)
        if matches != instance.intersecting:
            violations.append(
                f"instance s={instance.s} t={instance.t}: match={matches} but "
                f"intersecting={instance.intersecting}"
            )
        if check_depth and family.recursive_node is not None and matches:
            depth = recursion_depth(family.query, document, family.recursive_node)
            max_depth = max(max_depth, depth)
            if depth > family.r:
                violations.append(
                    f"instance s={instance.s} t={instance.t}: recursion depth {depth} "
                    f"exceeds r={family.r}"
                )
    return RecursionFamilyCheck(
        instances=len(family.instances),
        valid=not violations,
        violations=violations,
        max_recursion_depth=max_depth,
    )


# --------------------------------------------------------------------------- depth family
@dataclass
class DepthFamilyCheck:
    """Result of verifying the depth fooling family."""

    instances: int
    valid: bool
    violations: List[str]
    max_document_depth: int


def verify_depth_family(family: DepthFamily, *,
                        max_cross_checks: Optional[int] = 200) -> DepthFamilyCheck:
    """Check the Theorem 7.14 fooling-set conditions.

    Diagonal documents must match and have depth at most ``max_depth``; crossing the
    middle of a shallower instance into a deeper instance must give a well-formed
    non-matching document.
    """
    violations: List[str] = []
    max_depth_seen = 0
    for instance in family.instances:
        document = instance.document()
        if document is None:
            violations.append(f"instance {instance.index}: malformed document")
            continue
        max_depth_seen = max(max_depth_seen, document.depth())
        if not bool_eval(family.query, document):
            violations.append(f"instance {instance.index}: diagonal document does not match")
        if document.depth() > family.max_depth:
            violations.append(
                f"instance {instance.index}: depth {document.depth()} exceeds "
                f"{family.max_depth}"
            )
    checks = 0
    for i, outer in enumerate(family.instances):
        for inner in family.instances[:i]:
            if max_cross_checks is not None and checks >= max_cross_checks:
                break
            checks += 1
            crossed = family.cross_document(outer, inner)
            if crossed is None:
                violations.append(
                    f"cross ({outer.index},{inner.index}): document is malformed"
                )
                continue
            if bool_eval(family.query, crossed):
                violations.append(
                    f"cross ({outer.index},{inner.index}): crossing document still matches"
                )
    return DepthFamilyCheck(
        instances=len(family.instances),
        valid=not violations,
        violations=violations,
        max_document_depth=max_depth_seen,
    )


# --------------------------------------------------------------------------- cut-state measurement
@dataclass
class CutStateMeasurement:
    """State (in bits / tuples) our streaming filter carries across a stream cut."""

    max_state_bits: int
    max_frontier_tuples: int
    decisions_correct: bool


def measure_filter_cut_state(query, pairs, expected_results=None) -> CutStateMeasurement:
    """Run the streaming filter over each (prefix, suffix) pair, measuring state at the cut.

    ``pairs`` is an iterable of objects with ``alpha`` / ``beta`` attributes; when
    ``expected_results`` is given (one bool per pair), the filter's final decisions are
    also checked.
    """
    model = FrontierMemoryModel(query_size=max(query.size(), 1))
    max_bits = 0
    max_tuples = 0
    all_correct = True
    expected_list = list(expected_results) if expected_results is not None else None
    for index, pair in enumerate(pairs):
        streaming_filter = StreamingFilter(query)
        outcome = None
        for event in pair.alpha:
            outcome = streaming_filter.process_event(event)
        max_tuples = max(max_tuples, len(streaming_filter.frontier))
        max_bits = max(
            max_bits,
            model.bits(
                frontier_records=len(streaming_filter.frontier),
                buffer_chars=streaming_filter.buffer.size,
                current_level=streaming_filter.current_level,
            ),
        )
        for event in pair.beta:
            outcome = streaming_filter.process_event(event)
        if expected_list is not None and outcome != expected_list[index]:
            all_correct = False
    return CutStateMeasurement(
        max_state_bits=max_bits,
        max_frontier_tuples=max_tuples,
        decisions_correct=all_correct,
    )
