"""The recursion-depth lower-bound construction (Theorems 4.5 and 7.4).

The bound is a reduction from set disjointness: an instance ``(s, t)`` on ``r`` bits is
turned into a document ``D_{s,t}`` whose recursion depth w.r.t. the distinguished query
node is at most ``r`` and which matches the query iff the two sets intersect.  Alice's
half of the stream depends only on ``s`` and Bob's only on ``t``, so a streaming
algorithm with small state would give a cheap protocol for disjointness — contradicting
its Omega(r) communication lower bound.

Two builders are provided:

* :func:`build_simple_recursion_family` — the Section 4.2 construction for the concrete
  query ``//a[b and c]`` (nested ``a`` elements, a left ``b`` child when ``s_i = 1`` and
  a right ``c`` child when ``t_i = 1``);
* :func:`build_recursion_family` — the general Section 7.2 construction for any
  Recursive-XPath query, which cuts the canonical document into the seven segments
  ``gamma_prefix, gamma_y-beg, gamma_w1, gamma_y-mid, gamma_w2, gamma_y-end,
  gamma_suffix`` and repeats the middle ones ``r`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.canonical import CanonicalDocument, build_canonical_document
from ..core.fragments import recursive_xpath_witness
from ..core.errors import UnsupportedQueryError
from ..xmlstream.build import try_build_document
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
)
from ..xmlstream.node import XMLNode
from ..xpath.query import CHILD, DESCENDANT, Query, QueryNode
from .communication import disjointness_instances
from .streamsplit import event_spans


@dataclass
class RecursionInstance:
    """One set-disjointness instance mapped to a prefix/suffix pair of XML streams."""

    s: Tuple[int, ...]
    t: Tuple[int, ...]
    intersecting: bool
    alpha: Tuple[Event, ...]
    beta: Tuple[Event, ...]

    def document(self) -> Optional[XMLDocument]:
        return try_build_document(list(self.alpha) + list(self.beta))


@dataclass
class RecursionFamily:
    """The family of documents derived from set-disjointness instances."""

    query: Query
    r: int
    recursive_node: Optional[QueryNode]
    instances: List[RecursionInstance] = field(default_factory=list)
    canonical: Optional[CanonicalDocument] = None

    @property
    def expected_bound_bits(self) -> int:
        """The Omega(r) memory bound certified by the reduction (here: exactly r)."""
        return self.r


# --------------------------------------------------------------------------- simple version
def build_simple_recursion_family(r: int, *, max_instances: Optional[int] = 64,
                                  seed: int = 11) -> RecursionFamily:
    """The Theorem 4.5 construction for ``//a[b and c]`` with recursion depth ``r``."""
    query = Query.parse("//a[b and c]")
    witness = recursive_xpath_witness(query)
    family = RecursionFamily(query=query, r=r, recursive_node=witness)
    for s, t, intersecting in disjointness_instances(r, count=max_instances, seed=seed):
        alpha: List[Event] = [StartDocument()]
        for bit in s:
            alpha.append(StartElement("a"))
            if bit:
                alpha.extend([StartElement("b"), EndElement("b")])
        family.instances.append(
            RecursionInstance(s=tuple(s), t=tuple(t), intersecting=intersecting,
                              alpha=tuple(alpha), beta=tuple(_simple_suffix(t)))
        )
    return family


def _simple_suffix(t: Sequence[int]) -> List[Event]:
    """Bob's suffix for ``//a[b and c]``.

    Closing the nested ``a`` elements from the innermost (level ``r``) outwards; the
    ``c`` child of level ``i`` is a *right* child, so it is emitted just before level
    ``i``'s own end tag (Alice's prefix ends right after the innermost start tag).
    """
    beta: List[Event] = []
    for index in range(len(t) - 1, -1, -1):
        if t[index]:
            beta.extend([StartElement("c"), EndElement("c")])
        beta.append(EndElement("a"))
    beta.append(EndDocument())
    return beta


# --------------------------------------------------------------------------- general version
@dataclass
class _Segments:
    """The seven contiguous stream segments of the Section 7.2 construction."""

    prefix: List[Event]
    y_begin: List[Event]
    w1: List[Event]
    y_mid: List[Event]
    w2: List[Event]
    y_end: List[Event]
    suffix: List[Event]


def _pick_w_children(witness: QueryNode) -> Tuple[QueryNode, QueryNode]:
    child_axis_children = [c for c in witness.children if c.axis == CHILD]
    if len(child_axis_children) < 2:
        raise UnsupportedQueryError(
            "the recursion-depth construction needs a node with two child-axis children"
        )
    return child_axis_children[0], child_axis_children[1]


def _chain_top_artificial(canonical: CanonicalDocument, v1: QueryNode) -> XMLNode:
    """The node ``y``: the first artificial node of the chain leading to SHADOW(v1)."""
    shadow = canonical.shadow(v1)
    node = shadow
    top = shadow
    while node.parent is not None and canonical.is_artificial(node.parent):
        node = node.parent
        top = node
    if top is shadow:  # pragma: no cover - v1 always has a descendant axis
        raise UnsupportedQueryError("expected an artificial chain above the witness node")
    return top


def _segments_for(canonical: CanonicalDocument, witness: QueryNode) -> _Segments:
    query = canonical.query
    # v1: the witness itself if it has a descendant axis, else its lowest such ancestor
    v1 = witness
    if v1.axis != DESCENDANT:
        for ancestor in witness.iter_ancestors():
            if ancestor.is_root():
                break
            if ancestor.axis == DESCENDANT:
                v1 = ancestor
                break
    if v1.axis != DESCENDANT:
        raise UnsupportedQueryError(
            "the general recursion construction requires a descendant axis on the "
            "witness node or one of its ancestors"
        )
    w1, w2 = _pick_w_children(witness)
    events, spans = event_spans(canonical.document)
    y = _chain_top_artificial(canonical, v1)
    y_start, y_end = spans[id(y)]
    w1_start, w1_end = spans[id(canonical.shadow(w1))]
    w2_start, w2_end = spans[id(canonical.shadow(w2))]
    if w1_start > w2_start:
        w1_start, w1_end, w2_start, w2_end = w2_start, w2_end, w1_start, w1_end
    return _Segments(
        prefix=events[:y_start],
        y_begin=events[y_start:w1_start],
        w1=events[w1_start:w1_end + 1],
        y_mid=events[w1_end + 1:w2_start],
        w2=events[w2_start:w2_end + 1],
        y_end=events[w2_end + 1:y_end + 1],
        suffix=events[y_end + 1:],
    )


def build_recursion_family(query: Query, r: int, *, max_instances: Optional[int] = 64,
                           seed: int = 11) -> RecursionFamily:
    """The Theorem 7.4 construction for an arbitrary Recursive-XPath query."""
    witness = recursive_xpath_witness(query)
    if witness is None:
        raise UnsupportedQueryError(
            f"{query.to_xpath()!r} is not in Recursive XPath: no node with a descendant "
            "axis above it and two child-axis children"
        )
    canonical = build_canonical_document(query)
    segments = _segments_for(canonical, witness)
    family = RecursionFamily(query=query, r=r, recursive_node=witness,
                             canonical=canonical)
    for s, t, intersecting in disjointness_instances(r, count=max_instances, seed=seed):
        alpha: List[Event] = list(segments.prefix)
        for bit in s:
            alpha.extend(segments.y_begin)
            if bit:
                alpha.extend(segments.w1)
            alpha.extend(segments.y_mid)
        beta: List[Event] = []
        for bit in reversed(t):
            if bit:
                beta.extend(segments.w2)
            beta.extend(segments.y_end)
        beta.extend(segments.suffix)
        family.instances.append(
            RecursionInstance(s=tuple(s), t=tuple(t), intersecting=intersecting,
                              alpha=tuple(alpha), beta=tuple(beta))
        )
    return family
