"""Query workloads: the paper's example queries plus parameterized generators.

The generators produce queries whose structural parameters (frontier size, depth,
number of descendant branches) are controlled explicitly, so the benchmark harness can
sweep exactly the quantities the bounds are stated in.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..xpath.parser import parse_query
from ..xpath.query import Query

#: queries that appear verbatim in the paper (keyed by where they appear)
PAPER_QUERIES: Dict[str, str] = {
    "fig2_example": "/a[c[.//e and f] and b > 5]/b",
    "thm42_frontier": "/a[c[.//e and f] and b > 5]",
    "remark_wildcard": "/a[c[.//* and f] and b > 5]",
    "thm45_recursion": "//a[b and c]",
    "thm46_depth": "/a/b",
    "sec5_redundant": "/a[b > 5 and b > 6]",
    "sec5_subsumption": "/a[b and .//b]",
    "sec5_truthset": "/a[b/c > 5 and d]",
    "sec5_leaf_value": "/a[b[c > 5]]",
    "sec5_not_leaf_value": "/a[b[c] > 5]",
    "fig9_canonical": "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
    "sec72_example": "//d[f and a[b and c]]",
    "fig22_run": "/a[c[.//e and f] and b]",
}


def paper_query(key: str) -> Query:
    """Parse one of the queries quoted in the paper."""
    return parse_query(PAPER_QUERIES[key])


def all_paper_queries() -> Dict[str, Query]:
    """All paper queries, parsed."""
    return {key: parse_query(text) for key, text in PAPER_QUERIES.items()}


# --------------------------------------------------------------------------- generators
def _names(count: int, prefix: str = "n") -> List[str]:
    return [f"{prefix}{index}" for index in range(count)]


def balanced_query(fanout: int, depth: int, *, prefix: str = "n") -> Query:
    """A complete ``fanout``-ary query tree of the given depth with distinct names.

    Distinct names keep the query redundancy-free; the frontier size of the result is
    ``(fanout - 1) * (depth - 1) + 1`` (the frontier at a deepest leaf: the leaf, its
    siblings, and the siblings of each ancestor below the root), so sweeping ``fanout``
    and ``depth`` sweeps ``FS(Q)`` logarithmically in ``|Q| ~ fanout**depth``.
    """
    counter = 0

    def subtree(level: int) -> str:
        nonlocal counter
        name = f"{prefix}{counter}"
        counter += 1
        if level >= depth:
            return name
        children = [subtree(level + 1) for _ in range(fanout)]
        return f"{name}[{ ' and '.join(children) }]"

    return parse_query("/" + subtree(1))


def path_query(length: int, *, axis: str = "/", prefix: str = "p") -> Query:
    """A linear path query of the given length (axis ``/`` or ``//``)."""
    names = _names(length, prefix)
    return parse_query("".join(f"{axis}{name}" for name in names))


def descendant_branch_query(branches: int, *, prefix: str = "b") -> Query:
    """``//root[b0 and b1 and ... ]`` — a Recursive-XPath query with wide frontier."""
    names = _names(branches, prefix)
    return parse_query("//r[" + " and ".join(names) + "]")


def alternating_path_query(length: int, *, prefix: str = "q") -> Query:
    """A path alternating child and descendant axes (stress for DFA determinization)."""
    parts = []
    for index, name in enumerate(_names(length, prefix)):
        parts.append(("//" if index % 2 else "/") + name)
    return parse_query("".join(parts))


def value_predicate_query(width: int, *, threshold: int = 5) -> Query:
    """``/r[v0 > t and v1 > t+1 and ...]`` — distinct numeric value predicates."""
    conjuncts = [f"v{index} > {threshold + index}" for index in range(width)]
    return parse_query("/r[" + " and ".join(conjuncts) + "]")


def deep_nested_predicate_query(depth: int) -> Query:
    """``/n0[n1[n2[...]]]`` — a single predicate chain (frontier size stays small)."""
    names = _names(depth, "d")
    text = names[-1]
    for name in reversed(names[:-1]):
        text = f"{name}[{text}]"
    return parse_query("/" + text)


def frontier_sweep_queries(sizes: Sequence[int]) -> Dict[int, Query]:
    """Queries whose frontier sizes are exactly the requested values.

    ``/r[c0 and c1 and ... c_{k-1}]`` has frontier size ``k`` (at any ``c_i``).
    """
    out: Dict[int, Query] = {}
    for size in sizes:
        names = _names(size, "c")
        out[size] = parse_query("/r[" + " and ".join(names) + "]")
    return out
