"""Query workloads: the paper's example queries plus parameterized generators.

The generators produce queries whose structural parameters (frontier size, depth,
number of descendant branches) are controlled explicitly, so the benchmark harness can
sweep exactly the quantities the bounds are stated in.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..xpath.parser import parse_query
from ..xpath.query import Query

#: queries that appear verbatim in the paper (keyed by where they appear)
PAPER_QUERIES: Dict[str, str] = {
    "fig2_example": "/a[c[.//e and f] and b > 5]/b",
    "thm42_frontier": "/a[c[.//e and f] and b > 5]",
    "remark_wildcard": "/a[c[.//* and f] and b > 5]",
    "thm45_recursion": "//a[b and c]",
    "thm46_depth": "/a/b",
    "sec5_redundant": "/a[b > 5 and b > 6]",
    "sec5_subsumption": "/a[b and .//b]",
    "sec5_truthset": "/a[b/c > 5 and d]",
    "sec5_leaf_value": "/a[b[c > 5]]",
    "sec5_not_leaf_value": "/a[b[c] > 5]",
    "fig9_canonical": "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
    "sec72_example": "//d[f and a[b and c]]",
    "fig22_run": "/a[c[.//e and f] and b]",
}


def paper_query(key: str) -> Query:
    """Parse one of the queries quoted in the paper."""
    return parse_query(PAPER_QUERIES[key])


def all_paper_queries() -> Dict[str, Query]:
    """All paper queries, parsed."""
    return {key: parse_query(text) for key, text in PAPER_QUERIES.items()}


# --------------------------------------------------------------------------- generators
def _names(count: int, prefix: str = "n") -> List[str]:
    return [f"{prefix}{index}" for index in range(count)]


def balanced_query(fanout: int, depth: int, *, prefix: str = "n") -> Query:
    """A complete ``fanout``-ary query tree of the given depth with distinct names.

    Distinct names keep the query redundancy-free; the frontier size of the result is
    ``(fanout - 1) * (depth - 1) + 1`` (the frontier at a deepest leaf: the leaf, its
    siblings, and the siblings of each ancestor below the root), so sweeping ``fanout``
    and ``depth`` sweeps ``FS(Q)`` logarithmically in ``|Q| ~ fanout**depth``.
    """
    counter = 0

    def subtree(level: int) -> str:
        nonlocal counter
        name = f"{prefix}{counter}"
        counter += 1
        if level >= depth:
            return name
        children = [subtree(level + 1) for _ in range(fanout)]
        return f"{name}[{ ' and '.join(children) }]"

    return parse_query("/" + subtree(1))


def path_query(length: int, *, axis: str = "/", prefix: str = "p") -> Query:
    """A linear path query of the given length (axis ``/`` or ``//``)."""
    names = _names(length, prefix)
    return parse_query("".join(f"{axis}{name}" for name in names))


def descendant_branch_query(branches: int, *, prefix: str = "b") -> Query:
    """``//root[b0 and b1 and ... ]`` — a Recursive-XPath query with wide frontier."""
    names = _names(branches, prefix)
    return parse_query("//r[" + " and ".join(names) + "]")


def alternating_path_query(length: int, *, prefix: str = "q") -> Query:
    """A path alternating child and descendant axes (stress for DFA determinization)."""
    parts = []
    for index, name in enumerate(_names(length, prefix)):
        parts.append(("//" if index % 2 else "/") + name)
    return parse_query("".join(parts))


def value_predicate_query(width: int, *, threshold: int = 5) -> Query:
    """``/r[v0 > t and v1 > t+1 and ...]`` — distinct numeric value predicates."""
    conjuncts = [f"v{index} > {threshold + index}" for index in range(width)]
    return parse_query("/r[" + " and ".join(conjuncts) + "]")


def deep_nested_predicate_query(depth: int) -> Query:
    """``/n0[n1[n2[...]]]`` — a single predicate chain (frontier size stays small)."""
    names = _names(depth, "d")
    text = names[-1]
    for name in reversed(names[:-1]):
        text = f"{name}[{text}]"
    return parse_query("/" + text)


def shared_prefix_subscriptions(
    count: int,
    *,
    prefix: Sequence[str] = ("catalog", "product"),
    branching: int = 4,
    suffix_depth: int = 3,
    descendant_fraction: float = 0.0,
    wildcard_fraction: float = 0.0,
    value_range: int = 50,
    seed: int = 0,
) -> List[str]:
    """``count`` XPath subscriptions drawn from a common path trie.

    Every subscription starts with the same ``prefix`` steps (e.g.
    ``/catalog/product``) and continues with ``suffix_depth`` steps drawn from a
    ``branching``-letter label alphabet (``s0 .. s{branching-1}``) that is *reused at
    every depth*, ending in a ``value`` leaf with a numeric predicate.  The workload is
    the YFilter-style sharing stress test:

    * the shared prefix is identical across all subscriptions, so a prefix-sharing
      engine evaluates it once while a per-query engine pays ``count`` times;
    * ``branching`` controls the overlap of the suffixes — smaller alphabets mean more
      shared suffix steps (higher trie sharing) but also more matches;
    * label reuse across depths makes label-based dispatch pessimal: an engine indexed
      by *label* must route an ``s3`` event to every subscription containing ``s3``
      anywhere, while a path trie only wakes the subscriptions whose whole prefix
      matched.

    ``descendant_fraction``/``wildcard_fraction`` optionally turn suffix steps into
    ``//``-axis or ``*`` steps (for overlap-heavy property testing).  Pair with
    :func:`~repro.workloads.datasets.shared_prefix_feed` documents.
    """
    rng = random.Random(seed)
    prefix_text = "".join(f"/{step}" for step in prefix)
    subscriptions = []
    for _ in range(count):
        steps = []
        for _depth in range(suffix_depth):
            axis = "//" if rng.random() < descendant_fraction else "/"
            if rng.random() < wildcard_fraction:
                name = "*"
            else:
                name = f"s{rng.randrange(branching)}"
            steps.append(f"{axis}{name}")
        threshold = rng.randrange(value_range)
        subscriptions.append(
            f"{prefix_text}{''.join(steps)}[value > {threshold}]"
        )
    return subscriptions


def subscription_churn(
    ops: int,
    *,
    prefix: Sequence[str] = ("catalog", "product"),
    branching: int = 4,
    suffix_depth: int = 3,
    duplication: float = 0.3,
    unregister_fraction: float = 0.4,
    descendant_fraction: float = 0.0,
    wildcard_fraction: float = 0.0,
    value_range: int = 50,
    seed: int = 0,
) -> List[tuple]:
    """An interleaved register/unregister operation sequence over a live bank.

    Returns ``ops`` operations, each either ``("register", name, xpath_text)`` or
    ``("unregister", name)``, with every unregister naming a subscription that is
    live at that point (so the sequence is valid against any bank API).  Queries are
    drawn from the same trie-shaped space as
    :func:`shared_prefix_subscriptions` — the ``branching``/``suffix_depth``/
    ``descendant_fraction``/``wildcard_fraction`` knobs control how much the spliced
    paths overlap in the shared trie, and ``duplication`` is the probability that a
    register reuses an earlier query verbatim (exercising plan interning, where the
    op must not touch the trie at all).  ``unregister_fraction`` is the probability
    of an unregister whenever one is possible; the expected live-set size is then
    stationary around churn, which is what an incremental-maintenance benchmark
    wants to measure.
    """
    rng = random.Random(seed)
    prefix_text = "".join(f"/{step}" for step in prefix)
    live: List[str] = []
    issued: List[str] = []
    operations: List[tuple] = []
    counter = 0
    for _ in range(ops):
        if live and rng.random() < unregister_fraction:
            name = live.pop(rng.randrange(len(live)))
            operations.append(("unregister", name))
            continue
        if issued and rng.random() < duplication:
            text = rng.choice(issued)
        else:
            steps = []
            for _depth in range(suffix_depth):
                axis = "//" if rng.random() < descendant_fraction else "/"
                if rng.random() < wildcard_fraction:
                    label = "*"
                else:
                    label = f"s{rng.randrange(branching)}"
                steps.append(f"{axis}{label}")
            threshold = rng.randrange(value_range)
            text = f"{prefix_text}{''.join(steps)}[value > {threshold}]"
            issued.append(text)
        name = f"churn{counter}"
        counter += 1
        live.append(name)
        operations.append(("register", name, text))
    return operations


def frontier_sweep_queries(sizes: Sequence[int]) -> Dict[int, Query]:
    """Queries whose frontier sizes are exactly the requested values.

    ``/r[c0 and c1 and ... c_{k-1}]`` has frontier size ``k`` (at any ``c_i``).
    """
    out: Dict[int, Query] = {}
    for size in sizes:
        names = _names(size, "c")
        out[size] = parse_query("/r[" + " and ".join(names) + "]")
    return out
