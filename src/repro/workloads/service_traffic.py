"""Bursty multi-client publish/subscribe traffic for the service layer.

Real dissemination traffic is not a steady drip of single documents: publishers
emit *bursts* (a crawler finishing a site, a feed flushing its buffer), many clients
publish concurrently, and subscription churn is interleaved with the document flow.
:func:`service_traffic` generates exactly that shape as a flat operation script any
service front end can replay::

    ("subscribe",   client, name, xpath_text)
    ("unsubscribe", client, name)
    ("publish",     client, xml_text)

The script starts with each client's initial subscriptions, then emits publish
bursts — a burst picks one publishing client and a geometric-ish burst length around
``burst`` — with occasional churn operations between bursts (``churn_fraction``).
Every unsubscribe names a subscription that is live at that point, so the script is
valid against any service/bank API, in order, exactly once.

Documents are topic-feed shaped (``<feed><topicK><headlineK>..</headlineK>``
``<scoreK>N</scoreK></topicK>..</feed>``, matching
:func:`~repro.workloads.datasets.topic_subscriptions` semantics) and are emitted as
*XML text*, because that is what arrives over a network: the service pays
tokenization per document, just like production ingest.  Subscriptions use the same
``/feed/topicK[scoreK > T]`` shape with per-client thresholds, so a busy topic
notifies several clients at once.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: one scripted operation (see module docstring for the three forms)
TrafficOp = Tuple[str, ...]


def service_document(rng: random.Random, *, topics: int, entries: int) -> str:
    """One topic-feed document as XML text (``entries`` random topic entries)."""
    parts = ["<feed>"]
    for _ in range(entries):
        topic = rng.randrange(topics)
        score = rng.randint(0, 100)
        parts.append(
            f"<topic{topic}><headline{topic}>h{score}</headline{topic}>"
            f"<score{topic}>{score}</score{topic}></topic{topic}>"
        )
    parts.append("</feed>")
    return "".join(parts)


def publish_burst(
    documents: int,
    *,
    topics: int = 8,
    entries: int = 3,
    pinned_topic: int = 0,
    seed: int = 0,
) -> List[str]:
    """``documents`` feed documents for a single-publisher burst replay.

    Every document carries one guaranteed ``<topic{pinned_topic}>`` entry with
    score 100, so a single ``/feed/topic{pinned_topic}[score{pinned_topic} >
    0]`` subscription matches the *entire* burst deterministically — the shape
    the durability fault harness and the WAL benchmark need to reason about
    delivered-match multisets document by document.  The remaining
    ``entries - 1`` entries per document vary with ``seed`` so the filtering
    work stays realistic rather than degenerate.
    """
    rng = random.Random(seed)
    burst: List[str] = []
    pin = (f"<topic{pinned_topic}><headline{pinned_topic}>pinned"
           f"</headline{pinned_topic}><score{pinned_topic}>100"
           f"</score{pinned_topic}></topic{pinned_topic}>")
    for _ in range(documents):
        filler = service_document(rng, topics=topics,
                                  entries=max(entries - 1, 0))
        burst.append("<feed>" + pin + filler[len("<feed>"):])
    return burst


def service_traffic(
    documents: int,
    *,
    clients: int = 8,
    subscriptions_per_client: int = 12,
    topics: int = 40,
    burst: int = 8,
    churn_fraction: float = 0.08,
    entries: int = 3,
    seed: int = 0,
) -> List[TrafficOp]:
    """A bursty multi-client operation script with ``documents`` publish ops.

    ``burst`` is the mean publish-burst length (actual lengths vary 1..2*burst);
    ``churn_fraction`` is the probability that a burst boundary churns the
    subscription set — one unsubscribe of a random *live* subscription (initial
    or churn-added alike) paired with one fresh subscribe from the same query
    space, so the expected live-set size stays stationary while both churn
    paths see real traffic.  Client ids are ``client0 .. client{clients-1}``;
    subscription names are unique per client for the whole script (churn never
    reuses a name), so replaying the script can never collide.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    rng = random.Random(seed)
    ops: List[TrafficOp] = []
    client_ids = [f"client{i}" for i in range(clients)]
    next_sub = {client: 0 for client in client_ids}
    live: List[Tuple[str, str]] = []  # (client, name) of every live subscription

    def subscription(client: str) -> TrafficOp:
        index = next_sub[client]
        next_sub[client] = index + 1
        topic = rng.randrange(topics)
        threshold = rng.randint(30, 90)
        return ("subscribe", client, f"s{index}",
                f"/feed/topic{topic}[score{topic} > {threshold}]")

    def subscribe(client: str) -> None:
        op = subscription(client)
        ops.append(op)
        live.append((op[1], op[2]))

    for client in client_ids:
        for _ in range(subscriptions_per_client):
            subscribe(client)
    published = 0
    while published < documents:
        if rng.random() < churn_fraction:
            if live:
                client, name = live.pop(rng.randrange(len(live)))
                ops.append(("unsubscribe", client, name))
            subscribe(rng.choice(client_ids))
        length = min(rng.randint(1, 2 * burst), documents - published)
        publisher = rng.choice(client_ids)
        for _ in range(length):
            ops.append(("publish", publisher,
                        service_document(rng, topics=topics, entries=entries)))
        published += length
    return ops


def traffic_summary(ops: List[TrafficOp]) -> dict:
    """Operation counts by kind (for benchmark reporting and sanity checks)."""
    counts = {"subscribe": 0, "unsubscribe": 0, "publish": 0}
    for op in ops:
        counts[op[0]] += 1
    return counts
