"""Workloads: paper queries, parameterized query generators, and document generators."""

from .datasets import (
    auction_site,
    book_catalog,
    dissemination_queries,
    nested_sections,
    shared_prefix_feed,
    topic_feed,
    topic_subscriptions,
)
from .documents import (
    deep_padded_document,
    long_text_document,
    matching_document_for_frontier_query,
    random_labelled_document,
    recursive_branch_document,
    wide_text_document,
)
from .queries import (
    PAPER_QUERIES,
    all_paper_queries,
    alternating_path_query,
    balanced_query,
    deep_nested_predicate_query,
    descendant_branch_query,
    frontier_sweep_queries,
    paper_query,
    path_query,
    shared_prefix_subscriptions,
    subscription_churn,
    value_predicate_query,
)
from .service_traffic import (
    publish_burst,
    service_document,
    service_traffic,
    traffic_summary,
)
from .wire_traffic import (
    split_setup,
    wire_summary,
    wire_traffic,
)

__all__ = [
    "PAPER_QUERIES",
    "all_paper_queries",
    "alternating_path_query",
    "auction_site",
    "balanced_query",
    "book_catalog",
    "deep_nested_predicate_query",
    "deep_padded_document",
    "descendant_branch_query",
    "dissemination_queries",
    "frontier_sweep_queries",
    "long_text_document",
    "matching_document_for_frontier_query",
    "nested_sections",
    "paper_query",
    "path_query",
    "publish_burst",
    "random_labelled_document",
    "recursive_branch_document",
    "service_document",
    "service_traffic",
    "shared_prefix_feed",
    "shared_prefix_subscriptions",
    "split_setup",
    "subscription_churn",
    "topic_feed",
    "topic_subscriptions",
    "traffic_summary",
    "value_predicate_query",
    "wide_text_document",
    "wire_summary",
    "wire_traffic",
]
