"""Multi-connection traffic scripts for the TCP wire layer.

The wire benchmark and demos need the same bursty pub/sub traffic shape as
:func:`~repro.workloads.service_traffic.service_traffic`, but sliced per
*connection*: each wire client owns one session and replays only its own
operations, concurrently with every other connection.  :func:`wire_traffic`
reuses the service-traffic generator — same subscription space, same topic-feed
documents, same burst structure — and splits the flat script by client, which
preserves exactly the ordering that matters: every client's operations stay in
their original relative order (in particular each ``subscribe`` still precedes
any ``unsubscribe`` of the same name, because churn only ever unsubscribes a
live subscription and names are never reused).

Cross-client interleaving is *deliberately* surrendered to the scheduler — that
is what concurrent connections do — so scripts meant for deterministic
cross-mode comparisons (the benchmark's correctness trail) should disable churn
(``churn_fraction=0``): with a static post-setup subscription set, a document's
matched set depends only on its text, not on when other connections' churn
landed.
"""

from __future__ import annotations

from typing import List

from .service_traffic import TrafficOp, service_traffic, traffic_summary


def wire_traffic(
    documents: int,
    *,
    connections: int = 4,
    subscriptions_per_client: int = 12,
    topics: int = 40,
    burst: int = 8,
    churn_fraction: float = 0.08,
    entries: int = 3,
    seed: int = 0,
) -> List[List[TrafficOp]]:
    """Per-connection operation scripts totalling ``documents`` publish ops.

    Returns one script per connection (client ids ``client0 ..``, connection
    ``i`` owning ``client{i}``); concatenating them respects no particular
    global order — replay them concurrently.  All other knobs are passed
    through to :func:`~repro.workloads.service_traffic.service_traffic`.
    """
    if connections < 1:
        raise ValueError("need at least one connection")
    flat = service_traffic(
        documents, clients=connections,
        subscriptions_per_client=subscriptions_per_client,
        topics=topics, burst=burst, churn_fraction=churn_fraction,
        entries=entries, seed=seed)
    scripts: List[List[TrafficOp]] = [[] for _ in range(connections)]
    index = {f"client{i}": i for i in range(connections)}
    for op in flat:
        scripts[index[op[1]]].append(op)
    return scripts


def split_setup(script: List[TrafficOp]) -> (
        "tuple[List[TrafficOp], List[TrafficOp]]"):
    """Split one connection's script into (leading subscribes, the rest).

    The generator opens every script with the client's initial subscriptions;
    benchmarks replay that prefix untimed (both modes pay it identically) and
    time only the traffic that follows.
    """
    setup: List[TrafficOp] = []
    for position, op in enumerate(script):
        if op[0] != "subscribe":
            return setup, script[position:]
        setup.append(op)
    return setup, []


def wire_summary(scripts: List[List[TrafficOp]]) -> dict:
    """Aggregate operation counts across all connections' scripts."""
    total = {"subscribe": 0, "unsubscribe": 0, "publish": 0}
    for script in scripts:
        for kind, count in traffic_summary(script).items():
            total[kind] += count
    total["connections"] = len(scripts)
    return total
