"""Document workloads with controlled structural parameters.

These generators produce the documents the benchmark sweeps run over: recursive
documents with a chosen recursion depth, deep documents with a chosen depth, wide
documents, and matching/non-matching documents for the generated query families.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..xmlstream.document import XMLDocument
from ..xmlstream.generate import nested_recursive, padded_depth_document, wide_document
from ..xmlstream.node import XMLNode


def recursive_branch_document(branches: Sequence[str], recursion: int, *,
                              match_at: Optional[int] = None,
                              root_name: str = "r") -> XMLDocument:
    """Nested ``root_name`` elements; level ``match_at`` carries all branch children.

    Built for queries like ``//r[b0 and b1 and ...]``: the document's recursion depth
    w.r.t. the ``r`` node is ``recursion``; it matches the query iff ``match_at`` is not
    None (that level gets every branch child; other levels get only the first branch).
    """
    def children_for(level: int) -> List[XMLNode]:
        if match_at is not None and level == match_at:
            return [XMLNode.element(name) for name in branches]
        return [XMLNode.element(branches[0])] if branches else []

    return nested_recursive(root_name, recursion, child_factory=children_for)


def deep_padded_document(payload_names: Sequence[str], padding_depth: int, *,
                         top_name: str = "a", padding_name: str = "Z") -> XMLDocument:
    """A document whose payload chain sits below ``padding_depth`` wrapper elements."""
    payload: Optional[XMLNode] = None
    for name in reversed(payload_names):
        node = XMLNode.element(name)
        if payload is not None:
            node.append_child(payload)
        payload = node
    if payload is None:
        payload = XMLNode.element("leaf")
    return padded_depth_document([top_name], padding_name, padding_depth, payload)


def matching_document_for_frontier_query(branch_names: Sequence[str], *,
                                         root_name: str = "r",
                                         values: Optional[Sequence[str]] = None
                                         ) -> XMLDocument:
    """A flat document matching ``/r[c0 and c1 and ...]`` (one child per branch)."""
    top = XMLNode.element(root_name)
    for index, name in enumerate(branch_names):
        child = top.append_child(XMLNode.element(name))
        if values is not None and index < len(values):
            child.append_child(XMLNode.text(values[index]))
    return XMLDocument.from_top_element(top)


def wide_text_document(width: int, *, top_name: str = "catalog",
                       child_name: str = "item", value: str = "42") -> XMLDocument:
    """A shallow document with many text-bearing children (buffer stress)."""
    return wide_document(top_name, child_name, width, text_for_child=lambda _i: value)


def long_text_document(text_length: int, *, top_name: str = "a",
                       child_name: str = "b") -> XMLDocument:
    """A tiny document whose single leaf carries a long string value (text-width stress)."""
    top = XMLNode.element(top_name)
    child = top.append_child(XMLNode.element(child_name))
    child.append_child(XMLNode.text("7" * max(text_length, 1)))
    return XMLDocument.from_top_element(top)


def random_labelled_document(rng: random.Random, *, names: Sequence[str],
                             max_depth: int = 4, max_children: int = 3,
                             value_pool: Sequence[str] = ("1", "4", "6", "9", "hello"),
                             ) -> XMLDocument:
    """A random document over a fixed label set (used by the property-based tests)."""
    from ..xmlstream.generate import random_document

    return random_document(
        rng,
        names=names,
        max_depth=max_depth,
        max_children=max_children,
        text_values=value_pool,
    )
