"""Synthetic datasets that stand in for the real-world XML corpora of the literature.

The paper itself reports no corpus experiments (it is a theory paper), but its
motivation — publish/subscribe filtering, auction data, linguistically recursive
documents — comes from the systems it cites (XFilter, YFilter, XMark, Treebank).  These
generators produce documents with the same *structural character*:

* :func:`book_catalog` — shallow, wide, value-rich (classic dissemination workload);
* :func:`auction_site` — moderately deep with repeated regions (XMark-like);
* :func:`nested_sections` — recursive section nesting (Treebank-like recursion).

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..xmlstream.document import XMLDocument
from ..xmlstream.node import XMLNode

_GENRES = ("fiction", "reference", "biography", "science", "poetry")
_WORDS = ("stream", "memory", "query", "automaton", "frontier", "bound", "match")


def _title(rng: random.Random) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(1, 3)))


def book_catalog(books: int, *, seed: int = 1) -> XMLDocument:
    """A flat catalog of ``books`` book elements with price/year/genre children."""
    rng = random.Random(seed)
    catalog = XMLNode.element("catalog")
    for index in range(books):
        book = catalog.append_child(XMLNode.element("book"))
        book.append_child(XMLNode.attribute("id", f"b{index}"))
        title = book.append_child(XMLNode.element("title"))
        title.append_child(XMLNode.text(_title(rng)))
        price = book.append_child(XMLNode.element("price"))
        price.append_child(XMLNode.text(str(rng.randint(5, 80))))
        year = book.append_child(XMLNode.element("year"))
        year.append_child(XMLNode.text(str(rng.randint(1990, 2006))))
        genre = book.append_child(XMLNode.element("genre"))
        genre.append_child(XMLNode.text(rng.choice(_GENRES)))
    return XMLDocument.from_top_element(catalog)


def auction_site(items: int, *, bidders_per_item: int = 3, seed: int = 2) -> XMLDocument:
    """An XMark-flavoured auction document: regions, items, and open auctions with bids."""
    rng = random.Random(seed)
    site = XMLNode.element("site")
    regions = site.append_child(XMLNode.element("regions"))
    for region_name in ("africa", "asia", "europe"):
        region = regions.append_child(XMLNode.element(region_name))
        for index in range(max(items // 3, 1)):
            item = region.append_child(XMLNode.element("item"))
            item.append_child(XMLNode.attribute("id", f"{region_name}{index}"))
            name = item.append_child(XMLNode.element("name"))
            name.append_child(XMLNode.text(_title(rng)))
            quantity = item.append_child(XMLNode.element("quantity"))
            quantity.append_child(XMLNode.text(str(rng.randint(1, 10))))
    auctions = site.append_child(XMLNode.element("open_auctions"))
    for index in range(items):
        auction = auctions.append_child(XMLNode.element("open_auction"))
        initial = auction.append_child(XMLNode.element("initial"))
        initial.append_child(XMLNode.text(str(rng.randint(1, 200))))
        for _ in range(bidders_per_item):
            bidder = auction.append_child(XMLNode.element("bidder"))
            increase = bidder.append_child(XMLNode.element("increase"))
            increase.append_child(XMLNode.text(str(rng.randint(1, 50))))
        current = auction.append_child(XMLNode.element("current"))
        current.append_child(XMLNode.text(str(rng.randint(10, 400))))
    return XMLDocument.from_top_element(site)


def nested_sections(depth: int, *, breadth: int = 2, seed: int = 3,
                    section_name: str = "section") -> XMLDocument:
    """A recursively nested document (sections within sections), Treebank-flavoured.

    The recursion depth w.r.t. ``//section[...]``-style queries equals ``depth``.
    """
    rng = random.Random(seed)

    def build(level: int) -> XMLNode:
        section = XMLNode.element(section_name)
        title = section.append_child(XMLNode.element("title"))
        title.append_child(XMLNode.text(_title(rng)))
        paragraph = section.append_child(XMLNode.element("p"))
        paragraph.append_child(XMLNode.text(" ".join(
            rng.choice(_WORDS) for _ in range(rng.randint(3, 8))
        )))
        if level < depth:
            for _ in range(1 if level < depth - 1 else breadth):
                section.append_child(build(level + 1))
        return section

    book = XMLNode.element("book")
    book.append_child(build(1))
    return XMLDocument.from_top_element(book)


def topic_feed(entries: int, *, topics: int = 100, seed: int = 4) -> XMLDocument:
    """A label-sparse dissemination feed (the shared-dispatch bank's best case).

    Each entry sits under its own topic-specific labels (``topicK`` with ``headlineK``
    and ``scoreK`` children), modelling schema-qualified element names: a subscription
    about one topic shares no labels with the others, so an indexed filter bank routes
    every element event to O(1) subscriptions while a naive bank still pays for all of
    them.  Pair with :func:`topic_subscriptions`.
    """
    rng = random.Random(seed)
    feed = XMLNode.element("feed")
    for _ in range(entries):
        topic = rng.randrange(topics)
        entry = feed.append_child(XMLNode.element(f"topic{topic}"))
        headline = entry.append_child(XMLNode.element(f"headline{topic}"))
        headline.append_child(XMLNode.text(_title(rng)))
        score = entry.append_child(XMLNode.element(f"score{topic}"))
        score.append_child(XMLNode.text(str(rng.randint(0, 100))))
    return XMLDocument.from_top_element(feed)


def topic_subscriptions(count: int, *, topics: int = 100) -> List[str]:
    """``count`` XPath subscriptions over :func:`topic_feed` documents, one per topic.

    Subscription ``i`` watches topic ``i % topics``, so with ``count <= topics`` the
    subscriptions are pairwise label-disjoint (maximally label-sparse).
    """
    return [
        f"/feed/topic{i % topics}[score{i % topics} > {40 + (i * 7) % 50}]"
        for i in range(count)
    ]


def shared_prefix_feed(
    entries: int,
    *,
    prefix: Sequence[str] = ("catalog", "product"),
    branching: int = 4,
    suffix_depth: int = 3,
    recursion: int = 1,
    value_range: int = 100,
    seed: int = 5,
) -> XMLDocument:
    """A document workload matching :func:`~repro.workloads.queries.shared_prefix_subscriptions`.

    The first ``prefix`` step is the document root; each entry is a fresh chain of the
    remaining prefix steps followed by ``suffix_depth`` random ``s{k}`` steps (drawn
    from the same ``branching``-letter alphabet the subscriptions use, reused at every
    depth) ending in a numeric ``value`` leaf.

    ``recursion`` is the deep-recursion knob: with ``recursion = r > 1``, each entry
    nests ``r`` full suffix chains inside one another, so ``s{k}`` labels repeat along
    root-to-leaf paths.  That exercises exactly the behaviors recursive documents
    stress in the paper — nested candidate matches of descendant-axis steps, per-level
    stacks of open string values, and deep frontier high-water marks — while staying
    label-compatible with the subscription trie.
    """
    if recursion < 1:
        raise ValueError("recursion must be at least 1")
    rng = random.Random(seed)
    root = XMLNode.element(prefix[0])
    for _ in range(entries):
        node = root
        for step in prefix[1:]:
            node = node.append_child(XMLNode.element(step))
        for _level in range(recursion):
            for _depth in range(suffix_depth):
                node = node.append_child(XMLNode.element(f"s{rng.randrange(branching)}"))
            value = node.append_child(XMLNode.element("value"))
            value.append_child(XMLNode.text(str(rng.randrange(value_range))))
    return XMLDocument.from_top_element(root)


def dissemination_queries() -> List[str]:
    """XPath subscriptions a publish/subscribe system might register over these data."""
    return [
        "/catalog/book[price < 20]",
        "/catalog/book[genre = \"fiction\" and year > 2000]",
        "/catalog/book[title]",
        "//open_auction[initial > 100 and bidder]",
        "//item[quantity > 5]",
        "/site/regions/europe/item[name]",
        "//section[title and p]",
    ]
