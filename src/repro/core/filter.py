"""The streaming XPath filtering algorithm of Section 8 (Figs. 20-21).

Given a query ``Q`` and a document arriving as a stream of SAX events, the algorithm
decides whether the document matches the query while holding only a small *frontier*
table, a shared text buffer, and a level counter in memory — no automata or transition
tables.  It gradually looks for a matching of the document with the query: an element
whose start event arrives is a *candidate match* for a frontier entry when its name
passes the node test and its level/ancestry satisfies the axis; whether it becomes a
*real match* is decided at its end event, from its string value (for query leaves) or
from the real matches found for the node's children (for internal query nodes).

The implementation follows the paper's pseudo-code with three bookkeeping
clarifications, documented in DESIGN.md (section "Algorithmic deviations"):

1. the document root is processed as a virtual ``$`` element so the query root's
   children enter the frontier at ``startDocument`` and the root's ``matched`` flag is
   resolved at ``endDocument``;
2. a node's ``matched`` flag accumulates with logical OR over its candidate matches
   (an inner real match of a descendant-axis node must not be erased by an enclosing
   candidate that fails);
3. leaf entries keep a stack of open string-value start offsets (keyed by document
   level) so nested candidate matches of the same descendant-axis leaf do not clobber
   each other.

Space accounting (Theorem 8.8) is exposed through :class:`FilterStatistics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..instrument.memory import FrontierMemoryModel
from ..semantics.evaluator import name_passes_node_test
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from ..xpath.query import CHILD, DESCENDANT, Query, QueryNode
from ..xpath.truthset import TruthSet, truth_set
from .errors import UnsupportedQueryError
from .fragments import is_conjunctive, is_leaf_only_value_restricted, is_univariate

#: name of the virtual element representing the document root in the event handlers
_DOCUMENT_ROOT_NAME = "$"


@dataclass(eq=False)
class FrontierRecord:
    """One tuple of the frontier table.

    Attributes mirror Fig. 20: a reference to the query node, the ``matched`` flag, and
    the document level at which a candidate match (for a child-axis node) must appear.
    ``open_values`` is the stack of (level, buffer offset) pairs for currently open
    candidate matches of leaf nodes.
    """

    ref: QueryNode
    matched: bool
    level: int
    open_values: List[Tuple[int, int]] = field(default_factory=list)


class _TextBuffer:
    """The shared text buffer of Fig. 20 (``data``, ``size``, ``refCount``)."""

    def __init__(self) -> None:
        self.parts: List[str] = []
        self.size = 0
        self.ref_count = 0

    def append(self, content: str) -> None:
        self.parts.append(content)
        self.size += len(content)

    def slice_from(self, start: int) -> str:
        return "".join(self.parts)[start:]

    def increment(self) -> None:
        self.ref_count += 1

    def decrement(self) -> None:
        self.ref_count -= 1
        if self.ref_count <= 0:
            self.ref_count = 0
            self.parts = []
            self.size = 0


@dataclass
class FilterStatistics:
    """Observed resource usage of one run of the streaming filter."""

    events: int = 0
    peak_frontier_records: int = 0
    peak_buffer_chars: int = 0
    peak_memory_bits: int = 0
    candidate_matches: int = 0
    real_match_evaluations: int = 0
    max_level: int = 0


class StreamingFilter:
    """The Section 8 filtering algorithm for one query.

    The filter object is reusable: each call to :meth:`run` processes a complete
    document stream and returns the boolean filtering decision.
    """

    def __init__(self, query: Query, *, trace: Optional["RunTrace"] = None,
                 remove_child_axis_records: bool = True) -> None:
        self.query = query
        self._check_supported(query)
        self.trace = trace
        # lines 10-11 of the paper's startElement: a child-axis node is temporarily
        # removed from the frontier while its candidate's subtree is processed.  The
        # flag exists so the ablation benchmark can measure what the optimization buys
        # (it never affects correctness, only the peak frontier size).
        self.remove_child_axis_records = remove_child_axis_records
        self._truth_sets: dict[int, TruthSet] = {
            id(node): truth_set(node) for node in query.nodes()
        }
        self._memory_model = FrontierMemoryModel(query_size=max(query.size(), 1))
        # run state (initialized by _start_document)
        self.frontier: List[FrontierRecord] = []
        self.buffer = _TextBuffer()
        self.current_level = 0
        self.stats = FilterStatistics()

    # ------------------------------------------------------------------ public API
    def run(self, events: Iterable[Event]) -> bool:
        """Process a full document stream and return whether the document matches."""
        result: Optional[bool] = None
        for event in events:
            result = self.process_event(event)
        if result is None:
            raise ValueError("event stream did not contain an endDocument event")
        return result

    def run_document(self, document: XMLDocument) -> bool:
        """Convenience: stream a materialized document through the filter."""
        return self.run(document.events())

    def reset(self) -> None:
        """Discard any in-flight document state (frontier, buffer, level counter).

        Used by the filter bank to recover from truncated event streams: without the
        reset, a stream that ends mid-document would leave the frontier populated and
        corrupt the next run (statistics are kept — they describe the aborted run).
        """
        self.frontier = []
        self.buffer = _TextBuffer()
        self.current_level = 0

    @property
    def outcome_so_far(self) -> Optional[bool]:
        """``True`` once the document is already guaranteed to match, else ``None``.

        The root's own ``matched`` flag is only resolved at ``endDocument``, but the
        decision it will make is readable earlier from the root's child records: a
        ``matched`` flag never reverts to false once set (matched records stop being
        candidates, so they are never removed or re-inserted), and ``endDocument``
        declares a match iff every root child's records are matched.  Hence, as soon as
        every child of the query root has a live record and all of them are matched,
        the final decision is known to be ``True``.  A ``False`` outcome can never be
        decided before ``endDocument`` (a matching subtree may still arrive), hence the
        tri-state return.
        """
        children = self.query.root.children
        if not children or not self.frontier:
            return None
        pending = {id(child) for child in children}
        for record in self.frontier:
            parent = record.ref.parent
            if parent is not None and parent.is_root():
                if not record.matched:
                    return None
                pending.discard(id(record.ref))
        # a child-axis record may be temporarily out of the frontier while an (as yet
        # unmatched) candidate's subtree is open — that child stays pending
        return True if not pending else None

    def observe_idle(self, level: int) -> None:
        """Account for document levels traversed while no event touched this filter.

        The shared-dispatch filter bank skips events whose element name cannot affect
        this filter; such events leave the frontier and text buffer untouched but do
        change the document level, and the Theorem 8.8 accounting charges ``log d`` bits
        per frontier tuple and for the level counter.  Calling this with the maximum
        level reached during the skipped window keeps ``peak_memory_bits`` exactly equal
        to a per-event run's.
        """
        bits = self._memory_model.bits(
            frontier_records=len(self.frontier),
            buffer_chars=self.buffer.size,
            current_level=level,
        )
        if bits > self.stats.peak_memory_bits:
            self.stats.peak_memory_bits = bits

    def process_event(self, event: Event) -> Optional[bool]:
        """Process a single event; returns the final decision on ``EndDocument``."""
        outcome: Optional[bool] = None
        if isinstance(event, StartDocument):
            # _start_document replaces the statistics object with a fresh one whose
            # events=1 accounts for this very event; incrementing the old object first
            # would corrupt the statistics already returned for the previous document
            # of a multi-document run (e.g. the preceding BankResult of filter_many)
            self._start_document()
        elif isinstance(event, StartElement):
            self.stats.events += 1
            self._start_element(event.name)
        elif isinstance(event, Text):
            self.stats.events += 1
            self._text(event.content)
        elif isinstance(event, EndElement):
            self.stats.events += 1
            self._end_element(event.name)
        elif isinstance(event, EndDocument):
            self.stats.events += 1
            outcome = self._end_document()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")
        self._observe(event)
        return outcome

    # ------------------------------------------------------------------ event handlers
    def _start_document(self) -> None:
        self.frontier = []
        self.buffer = _TextBuffer()
        self.current_level = 0
        # a fresh run starts here; the StartDocument event being processed right now is
        # the first event of the new document
        self.stats = FilterStatistics(events=1)
        root_record = FrontierRecord(ref=self.query.root, matched=False, level=0)
        self.frontier.append(root_record)
        # the document root is the (only) candidate match for the query root: insert the
        # root's children exactly as _start_element would for an internal candidate
        self._open_candidate_children(self.query.root)
        self.current_level += 1

    def _start_element(self, name: str) -> None:
        to_remove: List[FrontierRecord] = []
        to_insert: List[FrontierRecord] = []
        for record in list(self.frontier):
            if not self._is_candidate(record, name):
                continue
            self.stats.candidate_matches += 1
            node = record.ref
            if node.is_leaf():
                self.buffer.increment()
                record.open_values.append((self.current_level, self.buffer.size))
            else:
                if self.remove_child_axis_records and (node.axis == CHILD or node.axis is None):
                    to_remove.append(record)
                for child in node.children:
                    to_insert.append(
                        FrontierRecord(ref=child, matched=False,
                                       level=self.current_level + 1)
                    )
        for record in to_remove:
            self.frontier.remove(record)
        self.frontier.extend(to_insert)
        self.current_level += 1
        self.stats.max_level = max(self.stats.max_level, self.current_level)

    def _text(self, content: str) -> None:
        if self.buffer.ref_count > 0:
            self.buffer.append(content)

    def _end_element(self, name: str) -> None:
        self.current_level -= 1
        # 1. resolve leaf candidates whose element just ended
        for record in self.frontier:
            if not record.ref.is_leaf():
                continue
            if not record.open_values or record.open_values[-1][0] != self.current_level:
                continue
            if not self._name_ok(record.ref, name):
                continue
            _, start = record.open_values.pop()
            if not record.matched:
                self.stats.real_match_evaluations += 1
                value = self.buffer.slice_from(start)
                record.matched = self._truth_sets[id(record.ref)].contains(value)
            self.buffer.decrement()
        # 2. resolve internal candidates: group the child records inserted at this
        #    element's start event by their parent query node
        self._resolve_children()

    def _end_document(self) -> bool:
        self.current_level -= 1
        self._resolve_children()
        root_record = self._find_record(self.query.root)
        if root_record is None:  # pragma: no cover - the root record is never removed
            return False
        return root_record.matched

    # ------------------------------------------------------------------ helpers
    def _open_candidate_children(self, node: QueryNode) -> None:
        for child in node.children:
            self.frontier.append(
                FrontierRecord(ref=child, matched=False, level=self.current_level + 1)
            )

    def _is_candidate(self, record: FrontierRecord, name: str) -> bool:
        """The candidate-match test of ``startElement`` (name, axis/level, unmatched)."""
        if record.matched:
            return False
        node = record.ref
        if node.is_root():
            return False
        if not self._name_ok(node, name):
            return False
        if node.axis == DESCENDANT:
            return True
        return record.level == self.current_level

    def _name_ok(self, node: QueryNode, name: str) -> bool:
        return name_passes_node_test(name, node.ntest)

    def _resolve_children(self) -> None:
        """Lines 11-29 of ``endElement``: fold children records into parents' flags.

        The just-ended element ``x`` (at depth ``current_level``) inserted the records
        with ``level > current_level`` when it turned out to be a candidate match for
        their parent query nodes.  ``x`` is a real match for such a parent ``u`` iff all
        of ``u``'s children found real matches inside ``x``.  The result is recorded:

        * for a descendant-axis ``u``, in *every* live record of ``u`` — every such
          record was spawned by a still-open ancestor candidate, and ``x`` is a
          descendant of all of them, so the real match is valid in each context;
        * for a child-axis ``u``, in a freshly re-inserted record (the original was
          removed at ``x``'s start event, as in the paper's line 10-11 optimization);
        * for the query root, in the root's permanent record (only at ``endDocument``).
        """
        finished = [r for r in self.frontier
                    if r.level > self.current_level and not r.ref.is_root()]
        if not finished:
            return
        by_parent: dict[int, List[FrontierRecord]] = {}
        parents: dict[int, QueryNode] = {}
        for record in finished:
            parent = record.ref.parent
            if parent is None:  # pragma: no cover - children always have parents
                continue
            by_parent.setdefault(id(parent), []).append(record)
            parents[id(parent)] = parent
        for parent_id, records in by_parent.items():
            parent = parents[parent_id]
            all_matched = all(r.matched for r in records)
            for record in records:
                self.frontier.remove(record)
            if parent.is_root() or parent.axis == DESCENDANT:
                for parent_record in self._find_records(parent):
                    parent_record.matched = parent_record.matched or all_matched
            elif not self.remove_child_axis_records:
                # ablation mode: the child-axis record was never removed, so update the
                # live record for this level instead of re-inserting a fresh one
                updated = False
                for parent_record in self._find_records(parent):
                    if parent_record.level == self.current_level:
                        parent_record.matched = parent_record.matched or all_matched
                        updated = True
                if not updated:  # pragma: no cover - defensive
                    self.frontier.append(
                        FrontierRecord(ref=parent, matched=all_matched,
                                       level=self.current_level)
                    )
            else:
                self.frontier.append(
                    FrontierRecord(ref=parent, matched=all_matched,
                                   level=self.current_level)
                )

    def _find_records(self, node: QueryNode) -> List[FrontierRecord]:
        return [record for record in self.frontier if record.ref is node]

    def _find_record(self, node: QueryNode) -> Optional[FrontierRecord]:
        records = self._find_records(node)
        return records[0] if records else None

    def _observe(self, event: Event) -> None:
        self.stats.peak_frontier_records = max(
            self.stats.peak_frontier_records, len(self.frontier)
        )
        self.stats.peak_buffer_chars = max(self.stats.peak_buffer_chars, self.buffer.size)
        bits = self._memory_model.bits(
            frontier_records=len(self.frontier),
            buffer_chars=self.buffer.size,
            current_level=self.current_level,
        )
        self.stats.peak_memory_bits = max(self.stats.peak_memory_bits, bits)
        if self.trace is not None:
            self.trace.record(event, self)

    # ------------------------------------------------------------------ applicability
    @staticmethod
    def _check_supported(query: Query) -> None:
        if not is_conjunctive(query):
            raise UnsupportedQueryError(
                "the streaming filter supports conjunctive queries only"
            )
        if not is_univariate(query):
            raise UnsupportedQueryError(
                "the streaming filter supports univariate queries only"
            )
        if not is_leaf_only_value_restricted(query):
            raise UnsupportedQueryError(
                "the streaming filter supports leaf-only-value-restricted queries only"
            )


def filter_events(query: Query, events: Iterable[Event],
                  trace: Optional["RunTrace"] = None) -> bool:
    """One-shot filtering of an event stream."""
    return StreamingFilter(query, trace=trace).run(events)


def filter_document(query: Query, document: XMLDocument,
                    trace: Optional["RunTrace"] = None) -> bool:
    """One-shot filtering of a materialized document."""
    return StreamingFilter(query, trace=trace).run_document(document)


def filter_with_statistics(query: Query, document: XMLDocument
                           ) -> Tuple[bool, FilterStatistics]:
    """Filter a document and return the decision together with the resource statistics."""
    streaming_filter = StreamingFilter(query)
    decision = streaming_filter.run_document(document)
    return decision, streaming_filter.stats


# imported late to avoid a cycle (trace depends on filter types for annotations only)
from .trace import RunTrace  # noqa: E402  (documented import-at-end)
