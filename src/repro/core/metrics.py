"""Document metrics used by the bounds: depth, recursion depth, path recursion depth,
text width.

* **depth** (Section 4.3): length of the longest root-to-leaf path;
* **recursion depth** w.r.t. a query node ``v`` (Section 4.2): the longest chain of
  document nodes nested within each other, all of which *match* ``v``;
* **path recursion depth** w.r.t. a query (Definition 8.3): as above but with *path
  matching* and maximized over query nodes — this is the quantity that appears in the
  upper bound of Theorem 8.8;
* **text width** (Definition 8.4): the longest string value of a document node that path
  matches a query leaf.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..xmlstream.document import XMLDocument
from ..xmlstream.node import ELEMENT, XMLNode
from ..xpath.query import Query, QueryNode
from ..semantics.matching import iter_matchings, path_matches


def document_depth(document: XMLDocument) -> int:
    """Depth of the document (document root at depth 0)."""
    return document.depth()


def _longest_nested_chain(nodes: List[XMLNode]) -> int:
    """Length of the longest chain of nodes from ``nodes`` nested within each other."""
    if not nodes:
        return 0
    selected = {id(node) for node in nodes}
    best = 0
    depth_cache: Dict[int, int] = {}

    def chain_length_ending_at(node: XMLNode) -> int:
        cached = depth_cache.get(id(node))
        if cached is not None:
            return cached
        length = 1
        best_above = 0
        for ancestor in node.iter_ancestors():
            if id(ancestor) in selected:
                best_above = max(best_above, chain_length_ending_at(ancestor))
        length += best_above
        depth_cache[id(node)] = length
        return length

    for node in nodes:
        best = max(best, chain_length_ending_at(node))
    return best


def recursion_depth(query: Query, document: XMLDocument,
                    query_node: Optional[QueryNode] = None) -> int:
    """Recursion depth of the document w.r.t. ``query_node`` (Section 4.2).

    When ``query_node`` is omitted the maximum over all query nodes is returned.  A node
    of the document "matches" a query node in the sense of Definition 5.9 relative to the
    root context, so the whole document must match the query for the recursion depth to
    be non-zero.
    """
    targets = [query_node] if query_node is not None else query.non_root_nodes()
    matched_nodes: Dict[int, List[XMLNode]] = {id(t): [] for t in targets}
    seen: Dict[int, set] = {id(t): set() for t in targets}
    for matching in iter_matchings(query, document):
        for target in targets:
            image = matching(target)
            if id(image) not in seen[id(target)]:
                seen[id(target)].add(id(image))
                matched_nodes[id(target)].append(image)
    return max((_longest_nested_chain(matched_nodes[id(t)]) for t in targets), default=0)


def path_recursion_depth(query: Query, document: XMLDocument) -> int:
    """Path recursion depth of the document w.r.t. the query (Definition 8.3)."""
    best = 0
    elements = [n for n in document.iter_nodes() if n.kind == ELEMENT]
    for query_node in query.non_root_nodes():
        matched = [x for x in elements if path_matches(query_node, x)]
        best = max(best, _longest_nested_chain(matched))
    return best


def text_width(query: Query, document: XMLDocument) -> int:
    """Text width of the document w.r.t. the query (Definition 8.4)."""
    best = 0
    elements = [n for n in document.iter_nodes() if n.kind == ELEMENT]
    leaves = [u for u in query.non_root_nodes() if u.is_leaf()]
    for leaf in leaves:
        for x in elements:
            if path_matches(leaf, x):
                best = max(best, len(x.string_value()))
    return best


def metrics_summary(query: Query, document: XMLDocument) -> Dict[str, int]:
    """All metrics at once (used by benchmarks to label measurements)."""
    return {
        "document_depth": document_depth(document),
        "document_elements": document.node_count(),
        "query_size": query.size(),
        "path_recursion_depth": path_recursion_depth(query, document),
        "text_width": text_width(query, document),
    }
