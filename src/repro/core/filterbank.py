"""A multi-subscription filter bank (the selective-dissemination front end).

The paper's algorithm filters one query at a time; publish/subscribe systems (the
XFilter/YFilter setting the paper cites as motivation) register many queries and route
each incoming document to the subscriptions it matches.  :class:`FilterBank` provides
that front end on top of :class:`~repro.core.filter.StreamingFilter` with a *shared
dispatch index*: at registration each query's node-test labels are extracted and an
inverted label → subscriptions index is built, so a ``startElement(n)`` /
``endElement(n)`` event is routed only to the filters whose queries contain the node
test ``n`` (or a wildcard).  For every other filter the event provably cannot change the
frontier or the text buffer — only the document-level counter, which the bank maintains
once in shared code and syncs into a filter lazily, right before the filter's next
dispatched event.  ``text`` events are routed only to filters with an open string-value
candidate (a non-empty buffer reference count).  On label-sparse workloads the per-event
cost therefore drops from O(#subscriptions) to O(#interested subscriptions).

Per-query :class:`~repro.core.filter.FilterStatistics` stay exact: event counts and the
maximum level are patched from the shared counters, and peak memory accounting covers
the skipped windows through a monotone-stack suffix-maximum over post-event document
levels (the Theorem 8.8 bit cost is nondecreasing in the level, so observing a window at
its maximum level reproduces the per-event peak exactly).

The bank's memory is simply the sum of the per-query filter states — i.e. it inherits
the per-query `O~(|Q|·r·log d)` bound, multiplied by the number of subscriptions, and it
still never buffers the document.  The pre-index per-event×per-filter loop is preserved
as :class:`repro.baselines.NaiveFilterBank` for benchmarking.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..xmlstream.document import XMLDocument
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from ..xmlstream.parse import Chunk, StreamingParser
from ..xpath.query import WILDCARD, Query
from .filter import FilterStatistics, StreamingFilter

#: the attribute-wildcard node test (attribute names are ``@``-prefixed in events)
_ATTR_WILDCARD = "@*"

#: anything :meth:`FilterBank.filter_many` accepts as one document
DocumentLike = Union[XMLDocument, Iterable[Event]]


@dataclass
class BankResult:
    """Outcome of filtering one document against every registered subscription."""

    matched: List[str]
    per_query_stats: Dict[str, FilterStatistics]

    @property
    def total_peak_memory_bits(self) -> int:
        """Sum of the per-query peak memory (the bank's working-set size in bits)."""
        return sum(stats.peak_memory_bits for stats in self.per_query_stats.values())

    @property
    def total_peak_frontier_records(self) -> int:
        return sum(stats.peak_frontier_records
                   for stats in self.per_query_stats.values())

    @classmethod
    def merge(cls, results: Iterable["BankResult"],
              order: Iterable[str]) -> "BankResult":
        """Merge results over disjoint subscription sets into one.

        ``order`` fixes the order of the merged ``matched`` list (the sharded bank
        passes its global registration order, so a merged result is indistinguishable
        from a single-bank run); names absent from every partial result are treated
        as unmatched.  Per-query statistics dictionaries are unioned.
        """
        matched_union: set = set()
        stats: Dict[str, FilterStatistics] = {}
        for result in results:
            matched_union.update(result.matched)
            stats.update(result.per_query_stats)
        matched = [name for name in order if name in matched_union]
        return cls(matched=matched, per_query_stats=stats)


@dataclass
class _Subscription:
    """One registered query plus the dispatch metadata derived from it."""

    name: str
    filter: StreamingFilter
    labels: frozenset  # concrete node-test labels appearing in the query
    elem_wildcard: bool  # query contains ``*`` (reacts to every element name)
    attr_wildcard: bool  # query contains ``@*`` (reacts to every attribute name)
    last_ts: int = 0  # timestamp of the last event dispatched to this filter


class _LevelHighWater:
    """Suffix maxima of the post-event document levels (one per document).

    A monotone stack of ``(timestamp, level)`` pairs with strictly decreasing levels:
    :meth:`max_since` returns the maximum document level observed at or after a given
    timestamp in O(log d).  The bank uses it to observe, for each filter, the deepest
    level reached during the events the dispatcher skipped for that filter.
    """

    def __init__(self) -> None:
        self._ts: List[int] = []
        self._levels: List[int] = []

    def push(self, timestamp: int, level: int) -> None:
        levels = self._levels
        while levels and levels[-1] <= level:
            levels.pop()
            self._ts.pop()
        levels.append(level)
        self._ts.append(timestamp)

    def max_since(self, timestamp: int) -> int:
        index = bisect_left(self._ts, timestamp)
        return self._levels[index] if index < len(self._levels) else 0


class FilterBank:
    """A set of named XPath subscriptions evaluated together over document streams."""

    def __init__(self) -> None:
        self._subs: Dict[str, _Subscription] = {}
        self._by_label: Dict[str, List[_Subscription]] = {}
        self._elem_wildcard: List[_Subscription] = []
        self._attr_wildcard: List[_Subscription] = []

    # ------------------------------------------------------------------ registration
    def register(self, name: str, query: Query) -> None:
        """Register a subscription under a unique name.

        Raises ``ValueError`` for duplicate names and
        :class:`~repro.core.errors.UnsupportedQueryError` for unsupported queries.
        """
        if name in self._subs:
            raise ValueError(f"a subscription named {name!r} is already registered")
        streaming_filter = StreamingFilter(query)
        tests = set(query.node_tests())
        subscription = _Subscription(
            name=name,
            filter=streaming_filter,
            labels=frozenset(t for t in tests if t not in (WILDCARD, _ATTR_WILDCARD)),
            elem_wildcard=WILDCARD in tests,
            attr_wildcard=_ATTR_WILDCARD in tests,
        )
        self._subs[name] = subscription
        self._index_add(subscription)

    def unregister(self, name: str) -> None:
        """Remove a subscription; unknown names raise ``KeyError``."""
        del self._subs[name]
        self._rebuild_index()

    def subscriptions(self) -> List[str]:
        """The registered subscription names, in registration order."""
        return list(self._subs)

    def __len__(self) -> int:
        return len(self._subs)

    def query(self, name: str) -> Query:
        """The query registered under ``name``."""
        return self._subs[name].filter.query

    # ------------------------------------------------------------------ the index
    def _index_add(self, subscription: _Subscription) -> None:
        if subscription.elem_wildcard:
            self._elem_wildcard.append(subscription)
        if subscription.attr_wildcard:
            self._attr_wildcard.append(subscription)
        for label in subscription.labels:
            is_attribute = label.startswith("@")
            # a wildcard bucket already routes every event this label could match
            if is_attribute and subscription.attr_wildcard:
                continue
            if not is_attribute and subscription.elem_wildcard:
                continue
            self._by_label.setdefault(label, []).append(subscription)

    def _rebuild_index(self) -> None:
        self._by_label = {}
        self._elem_wildcard = []
        self._attr_wildcard = []
        for subscription in self._subs.values():
            self._index_add(subscription)

    def _interested(self, name: str) -> Iterator[_Subscription]:
        """Subscriptions whose filter can react to a start/end event named ``name``."""
        yield from self._by_label.get(name, ())
        yield from self._attr_wildcard if name.startswith("@") else self._elem_wildcard

    def index_fanout(self, name: str) -> int:
        """How many subscriptions a start/end event named ``name`` is dispatched to."""
        return sum(1 for _ in self._interested(name))

    # ------------------------------------------------------------------ filtering
    def filter_events(self, events: Iterable[Event]) -> BankResult:
        """Feed one document stream to every subscription (a single pass over events).

        Raises ``ValueError`` if the stream ends mid-document (no ``endDocument``); the
        registered filters are reset in that case, so the bank stays usable.
        """
        return self._run(events, early_unregister=False)

    def filter_document(self, document: XMLDocument) -> BankResult:
        """Convenience wrapper over :meth:`filter_events`."""
        return self.filter_events(document.events())

    def filter_stream(self, chunks: Iterable[Chunk], *,
                      encoding: str = "utf-8") -> BankResult:
        """Filter one document arriving as byte/text chunks, never materializing it.

        Chunks are parsed incrementally with
        :class:`~repro.xmlstream.parse.StreamingParser` and events are dispatched as
        they complete, so documents larger than memory are filtered end-to-end.
        """
        parser = StreamingParser(encoding=encoding)
        return self.filter_events(parser.parse(chunks))

    def filter_many(self, documents: Iterable[DocumentLike]) -> List[BankResult]:
        """Batch mode: filter a sequence of documents, one :class:`BankResult` each.

        Within each document, a subscription whose outcome is already decided (its
        query root matched mid-document — the decision can only be ``True`` from that
        point on) is unregistered from the dispatch loop for the rest of the document.
        Early-decided filters stop observing events, so their peak statistics cover the
        prefix up to the decision point; match outcomes are unaffected.
        """
        results = []
        for document in documents:
            events = document.events() if isinstance(document, XMLDocument) else document
            results.append(self._run(events, early_unregister=True))
        return results

    # ------------------------------------------------------------------ dispatch core
    def _run(self, events: Iterable[Event], *, early_unregister: bool) -> BankResult:
        subscriptions = list(self._subs.values())
        outcomes: Dict[str, Optional[bool]] = {s.name: None for s in subscriptions}
        decided: set = set()  # names early-unregistered for the current document
        level = 0  # shared document-level counter (mirrors StreamingFilter's)
        max_level = 0
        events_seen = 0  # events since the current StartDocument
        high_water = _LevelHighWater()
        in_document = False
        saw_end = False
        completed = False

        text_open: Dict[str, _Subscription] = {}  # filters with an open value buffer

        def dispatch(subscription: _Subscription, event: Event) -> Optional[bool]:
            # observe the deepest level of the window of skipped events, then sync the
            # shared level counter into the filter and process for real
            if subscription.last_ts < events_seen - 1:
                subscription.filter.observe_idle(
                    high_water.max_since(subscription.last_ts + 1))
            subscription.filter.current_level = level
            outcome = subscription.filter.process_event(event)
            subscription.last_ts = events_seen
            # the buffer reference count only changes inside dispatched events, so
            # text-interest can be maintained here instead of per text event
            if subscription.filter.buffer.ref_count > 0:
                text_open[subscription.name] = subscription
            else:
                text_open.pop(subscription.name, None)
            return outcome

        try:
            for event in events:
                events_seen += 1
                etype = type(event)
                if etype is StartElement:
                    name = event.name
                    for subscription in self._interested(name):
                        if subscription.name in decided:
                            continue
                        dispatch(subscription, event)
                    level += 1
                    if level > max_level:
                        max_level = level
                elif etype is EndElement:
                    name = event.name
                    for subscription in self._interested(name):
                        if subscription.name in decided:
                            continue
                        dispatch(subscription, event)
                        if (early_unregister
                                and subscription.filter.outcome_so_far):
                            decided.add(subscription.name)
                            outcomes[subscription.name] = True
                    level -= 1
                elif etype is Text:
                    # only filters with an open string-value candidate buffer text
                    for subscription in list(text_open.values()):
                        if subscription.name not in decided:
                            dispatch(subscription, event)
                elif etype is StartDocument:
                    in_document = True
                    level = 0
                    max_level = 0
                    events_seen = 1
                    high_water = _LevelHighWater()
                    decided.clear()
                    text_open.clear()
                    for subscription in subscriptions:
                        subscription.last_ts = 0
                        outcomes[subscription.name] = None
                        dispatch(subscription, event)
                    level = 1
                elif etype is EndDocument:
                    for subscription in subscriptions:
                        if subscription.name in decided:
                            # state is mid-document by design; make it clean again
                            subscription.filter.reset()
                            continue
                        outcomes[subscription.name] = dispatch(subscription, event)
                    level -= 1
                    in_document = False
                    saw_end = True
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown event {event!r}")
                high_water.push(events_seen, level)
            if not saw_end or in_document:
                raise ValueError("event stream did not contain an endDocument event")
            completed = True
        finally:
            if not completed:
                # never leave filters mid-document: a truncated stream must not
                # corrupt the next filter_events call
                for subscription in subscriptions:
                    subscription.filter.reset()

        matched: List[str] = []
        stats: Dict[str, FilterStatistics] = {}
        for subscription in subscriptions:
            # the per-filter counters only saw dispatched events; the shared counters
            # saw all of them
            subscription.filter.stats.events = events_seen
            subscription.filter.stats.max_level = max_level
            stats[subscription.name] = subscription.filter.stats
            if outcomes[subscription.name]:
                matched.append(subscription.name)
        return BankResult(matched=matched, per_query_stats=stats)
