"""A multi-subscription filter bank (the selective-dissemination front end).

The paper's algorithm filters one query at a time; publish/subscribe systems (the
XFilter/YFilter setting the paper cites as motivation) register many queries and route
each incoming document to the subscriptions it matches.  :class:`FilterBank` provides
that front end on top of :class:`~repro.core.filter.StreamingFilter`: it feeds every
event of a document stream to each registered filter in one pass and reports the
matching subscription identifiers together with aggregate memory statistics.

The bank's memory is simply the sum of the per-query filter states — i.e. it inherits
the per-query `O~(|Q|·r·log d)` bound, multiplied by the number of subscriptions, and it
still never buffers the document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..xmlstream.document import XMLDocument
from ..xmlstream.events import EndDocument, Event
from ..xpath.query import Query
from .filter import FilterStatistics, StreamingFilter


@dataclass
class BankResult:
    """Outcome of filtering one document against every registered subscription."""

    matched: List[str]
    per_query_stats: Dict[str, FilterStatistics]

    @property
    def total_peak_memory_bits(self) -> int:
        """Sum of the per-query peak memory (the bank's working-set size in bits)."""
        return sum(stats.peak_memory_bits for stats in self.per_query_stats.values())

    @property
    def total_peak_frontier_records(self) -> int:
        return sum(stats.peak_frontier_records
                   for stats in self.per_query_stats.values())


class FilterBank:
    """A set of named XPath subscriptions evaluated together over document streams."""

    def __init__(self) -> None:
        self._filters: Dict[str, StreamingFilter] = {}

    # ------------------------------------------------------------------ registration
    def register(self, name: str, query: Query) -> None:
        """Register a subscription under a unique name.

        Raises ``ValueError`` for duplicate names and
        :class:`~repro.core.errors.UnsupportedQueryError` for unsupported queries.
        """
        if name in self._filters:
            raise ValueError(f"a subscription named {name!r} is already registered")
        self._filters[name] = StreamingFilter(query)

    def unregister(self, name: str) -> None:
        """Remove a subscription; unknown names raise ``KeyError``."""
        del self._filters[name]

    def subscriptions(self) -> List[str]:
        """The registered subscription names, in registration order."""
        return list(self._filters)

    def __len__(self) -> int:
        return len(self._filters)

    def query(self, name: str) -> Query:
        """The query registered under ``name``."""
        return self._filters[name].query

    # ------------------------------------------------------------------ filtering
    def filter_events(self, events: Iterable[Event]) -> BankResult:
        """Feed one document stream to every subscription (a single pass over events)."""
        outcomes: Dict[str, Optional[bool]] = {name: None for name in self._filters}
        saw_end = False
        for event in events:
            for name, streaming_filter in self._filters.items():
                outcomes[name] = streaming_filter.process_event(event)
            if isinstance(event, EndDocument):
                saw_end = True
        if not saw_end:
            raise ValueError("event stream did not contain an endDocument event")
        matched = [name for name, outcome in outcomes.items() if outcome]
        stats = {name: streaming_filter.stats
                 for name, streaming_filter in self._filters.items()}
        return BankResult(matched=matched, per_query_stats=stats)

    def filter_document(self, document: XMLDocument) -> BankResult:
        """Convenience wrapper over :meth:`filter_events`."""
        return self.filter_events(document.events())
