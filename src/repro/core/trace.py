"""Run tracing for the streaming filter (reproduces the Fig. 22 example run table).

A :class:`RunTrace` captures, after every processed event, a snapshot of the filter's
frontier table: for each tuple its expected level, node test and matched flag.  The
snapshots can be rendered as the event-by-event state table shown in the paper's
example run figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .filter import StreamingFilter

#: one frontier tuple snapshot: (level, node test, matched)
TupleSnapshot = Tuple[int, str, bool]


@dataclass(frozen=True)
class TraceEntry:
    """The filter state right after one event was processed."""

    index: int
    event_label: str
    level: int
    frontier: Tuple[TupleSnapshot, ...]
    buffer_chars: int

    def frontier_without_root(self) -> Tuple[TupleSnapshot, ...]:
        """The frontier excluding the permanent query-root tuple (as drawn in Fig. 22)."""
        return tuple(t for t in self.frontier if t[1] != "$")


class RunTrace:
    """Recorder attached to a :class:`~repro.core.filter.StreamingFilter`."""

    def __init__(self) -> None:
        self.entries: List[TraceEntry] = []

    def record(self, event: Event, streaming_filter: "StreamingFilter") -> None:
        """Capture the filter state after processing ``event``."""
        snapshot = tuple(
            (record.level, self._ntest_label(record.ref), record.matched)
            for record in streaming_filter.frontier
        )
        self.entries.append(
            TraceEntry(
                index=len(self.entries),
                event_label=self._event_label(event),
                level=streaming_filter.current_level,
                frontier=snapshot,
                buffer_chars=streaming_filter.buffer.size,
            )
        )

    # ------------------------------------------------------------------ rendering
    def as_table(self, include_root: bool = False) -> str:
        """Render the trace as a fixed-width text table (one row per event)."""
        lines = [f"{'#':>3}  {'event':<22}{'lvl':>4}  frontier (level, ntest, matched)"]
        for entry in self.entries:
            tuples = entry.frontier if include_root else entry.frontier_without_root()
            rendered = ", ".join(f"({lvl},{ntest},{int(matched)})"
                                 for lvl, ntest, matched in tuples)
            lines.append(
                f"{entry.index:>3}  {entry.event_label:<22}{entry.level:>4}  [{rendered}]"
            )
        return "\n".join(lines)

    def max_frontier_tuples(self, include_root: bool = False) -> int:
        """The largest number of frontier tuples observed across the run."""
        best = 0
        for entry in self.entries:
            tuples = entry.frontier if include_root else entry.frontier_without_root()
            best = max(best, len(tuples))
        return best

    def final_root_matched(self) -> Optional[bool]:
        """The matched flag of the query-root tuple in the last snapshot."""
        if not self.entries:
            return None
        for level, ntest, matched in self.entries[-1].frontier:
            if ntest == "$":
                return matched
        return None

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _event_label(event: Event) -> str:
        if isinstance(event, StartDocument):
            return "startDocument()"
        if isinstance(event, EndDocument):
            return "endDocument()"
        if isinstance(event, StartElement):
            return f"startElement({event.name})"
        if isinstance(event, EndElement):
            return f"endElement({event.name})"
        if isinstance(event, Text):
            return f"text({event.content!r})"
        return repr(event)  # pragma: no cover - defensive

    @staticmethod
    def _ntest_label(node) -> str:
        if node.is_root():
            return "$"
        return node.ntest or "*"


def trace_run(query, document) -> RunTrace:
    """Filter ``document`` with ``query`` while recording a full trace."""
    from .filter import StreamingFilter

    trace = RunTrace()
    StreamingFilter(query, trace=trace).run_document(document)
    return trace
