"""Canonical documents (Section 6.4) and the canonical matching.

For every redundancy-free query the paper defines a canonical document that (a) matches
the query, and (b) admits exactly one matching.  The construction mirrors the query
tree:

* each query node gets a *shadow* element whose name is the node test (or an auxiliary
  name for wildcards);
* a node with a descendant axis is separated from its parent's shadow by a chain of
  ``h + 1`` *artificial* elements bearing the auxiliary name, where ``h`` is the longest
  wildcard chain in the query;
* each shadow receives a text value: for query leaves a sunflower witness (a member of
  the leaf's truth set outside the truth sets of the leaves it structurally dominates),
  for internal nodes a prefix-sunflower witness placed *before* the other children.

Canonical documents are the backbone of the general lower-bound constructions
(Theorems 7.1, 7.4 and 7.14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..semantics.matching import MatchingView, count_matchings, iter_matchings
from ..xmlstream.document import XMLDocument
from ..xmlstream.node import XMLNode
from ..xpath.query import DESCENDANT, Query, QueryNode
from .errors import CanonicalDocumentError
from .fragments import (
    is_conjunctive,
    is_leaf_only_value_restricted,
    is_star_restricted,
    is_univariate,
    prefix_sunflower_witness,
    sunflower_witness,
)

_AUXILIARY_CANDIDATES = ("Z", "Z0", "Z1", "Z2", "AUX", "AUX0")


def auxiliary_name(query: Query) -> str:
    """A name that does not occur as a node test in the query (``getAuxiliaryName``)."""
    used = set(query.element_names())
    for candidate in _AUXILIARY_CANDIDATES:
        if candidate not in used:
            return candidate
    index = 0
    while f"Zaux{index}" in used:  # pragma: no cover - exhausted fixed candidates
        index += 1
    return f"Zaux{index}"


@dataclass
class CanonicalDocument:
    """The canonical document of a query together with its bookkeeping maps."""

    query: Query
    document: XMLDocument
    aux_name: str
    wildcard_chain: int
    #: shadow map: id(query node) -> shadow element
    shadows: Dict[int, XMLNode] = field(default_factory=dict)
    #: ids of artificial document nodes
    artificial_ids: set = field(default_factory=set)
    #: the unique value assigned to each query node's shadow, id(query node) -> str
    unique_values: Dict[int, str] = field(default_factory=dict)

    def shadow(self, node: QueryNode) -> XMLNode:
        """``SHADOW(u)``: the shadow element of a query node."""
        return self.shadows[id(node)]

    def shadow_of(self, doc_node: XMLNode) -> Optional[QueryNode]:
        """``SHADOW^{-1}``: the query node whose shadow is ``doc_node`` (if any)."""
        for query_node in self.query.nodes():
            if self.shadows.get(id(query_node)) is doc_node:
                return query_node
        return None

    def is_artificial(self, doc_node: XMLNode) -> bool:
        """Whether a document node is one of the inserted artificial nodes."""
        return id(doc_node) in self.artificial_ids

    def canonical_matching(self) -> MatchingView:
        """The canonical matching ``phi_c`` mapping every query node to its shadow."""
        assignment = {id(node): self.shadow(node) for node in self.query.nodes()}
        return MatchingView(self.query, assignment)

    def matching_count(self, limit: int = 16) -> int:
        """Number of matchings of the canonical document with the query (Lemma 6.15: 1)."""
        return count_matchings(self.query, self.document, limit=limit)


def build_canonical_document(query: Query) -> CanonicalDocument:
    """Construct the canonical document of a redundancy-free query (Fig. 8).

    Raises :class:`CanonicalDocumentError` when the query is outside the supported
    fragment or when no sunflower / prefix-sunflower witness can be found.
    """
    _check_supported(query)
    aux = auxiliary_name(query)
    h = query.max_wildcard_chain()

    root_element = XMLNode.root()
    document = XMLDocument(root_element)
    result = CanonicalDocument(
        query=query,
        document=document,
        aux_name=aux,
        wildcard_chain=h,
    )
    result.shadows[id(query.root)] = root_element

    def process(query_node: QueryNode, parent_element: XMLNode) -> None:
        attach_point = parent_element
        if not query_node.is_root():
            if query_node.axis == DESCENDANT:
                for _ in range(h + 1):
                    artificial = attach_point.append_child(XMLNode.element(aux))
                    result.artificial_ids.add(id(artificial))
                    attach_point = artificial
            name = query_node.ntest if not query_node.is_wildcard() else aux
            shadow = attach_point.append_child(XMLNode.element(name or aux))
            result.shadows[id(query_node)] = shadow
            value = _unique_value(query, query_node)
            result.unique_values[id(query_node)] = value
            if value:
                # an empty witness leaves the string value "" without needing a text node
                shadow.append_child(XMLNode.text(value))
            attach_point = shadow
        for child in query_node.children:
            process(child, attach_point)

    process(query.root, root_element)
    return result


def _check_supported(query: Query) -> None:
    problems: List[str] = []
    if not is_star_restricted(query):
        problems.append("star-restricted")
    if not is_conjunctive(query):
        problems.append("conjunctive")
    if not is_univariate(query):
        problems.append("univariate")
    if not is_leaf_only_value_restricted(query):
        problems.append("leaf-only-value-restricted")
    if problems:
        raise CanonicalDocumentError(
            "canonical documents require the query to be "
            + ", ".join(problems)
            + f"; query {query.to_xpath()!r} is not"
        )


def _unique_value(query: Query, node: QueryNode) -> str:
    """``getUniqueValue(u)``: sunflower witness for leaves, prefix witness otherwise."""
    if node.is_leaf():
        witness = sunflower_witness(query, node)
        if witness is None:
            raise CanonicalDocumentError(
                f"no sunflower witness for leaf {node.ntest!r} in {query.to_xpath()!r}: "
                "the query is not strongly subsumption-free (or the witness search "
                "could not separate the truth sets)"
            )
        return witness
    witness = prefix_sunflower_witness(query, node)
    if witness is None:
        raise CanonicalDocumentError(
            f"no prefix-sunflower witness for internal node {node.ntest!r} in "
            f"{query.to_xpath()!r}: the query is not strongly subsumption-free"
        )
    return witness


def canonical_matching_is_unique(canonical: CanonicalDocument) -> bool:
    """Executable check of Lemma 6.15 (used by tests and the lower-bound verifiers)."""
    matchings = list(iter_matchings(canonical.query, canonical.document))
    if len(matchings) != 1:
        return False
    expected = canonical.canonical_matching()
    found = matchings[0]
    return all(found(node) is expected(node) for node in canonical.query.nodes())
