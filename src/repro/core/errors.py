"""Exceptions raised by the core package."""

from __future__ import annotations


class UnsupportedQueryError(ValueError):
    """Raised when a query lies outside the fragment an algorithm supports."""


class ConfigError(ValueError):
    """Raised when a component is constructed with invalid configuration.

    Construction-time validation turns latent misbehavior (a zero-sized queue
    that deadlocks, watermarks that can never trigger) into an immediate, typed
    failure.  Subclasses ``ValueError`` so call sites that predate the typed
    error keep working.
    """


class CanonicalDocumentError(ValueError):
    """Raised when a canonical document cannot be constructed for a query.

    This happens when the query is not strongly subsumption-free (no sunflower /
    prefix-sunflower witnesses exist), or when the heuristic witness search cannot find
    the separating values the construction needs.
    """
