"""Exceptions raised by the core package."""

from __future__ import annotations


class UnsupportedQueryError(ValueError):
    """Raised when a query lies outside the fragment an algorithm supports."""


class CanonicalDocumentError(ValueError):
    """Raised when a canonical document cannot be constructed for a query.

    This happens when the query is not strongly subsumption-free (no sunflower /
    prefix-sunflower witnesses exist), or when the heuristic witness search cannot find
    the separating values the construction needs.
    """
