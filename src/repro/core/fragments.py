"""Classification of queries into the fragments defined in Section 5 of the paper.

Redundancy-free XPath (Definition 5.1) consists of Forward XPath queries that are

1. star-restricted         (Definition 5.2)
2. conjunctive             (Definition 5.4)
3. univariate              (Definition 5.5)
4. leaf-only-value-restricted (Definition 5.7)
5. strongly subsumption-free  (Definition 5.18: sunflower + prefix-sunflower)

The lower bounds additionally use Recursive XPath (Section 7.2.1), and the upper bound
of Theorem 8.8 uses closure-free (Definition 8.7) and path-consistency-free
(Definition 8.6) queries.  Every classifier here returns a plain bool; ``classify``
collects everything, and ``explain_redundancy_freeness`` reports the first violated
requirement for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..semantics.automorphism import structural_domination_leaves
from ..xpath.ast import Expr, conjuncts, is_atomic_predicate
from ..xpath.query import CHILD, DESCENDANT, Query, QueryNode, WILDCARD
from ..xpath.truthset import find_prefix_witness, is_value_restricted, truth_set


# --------------------------------------------------------------------------- 5.1 star-restricted
def is_star_restricted(query: Query) -> bool:
    """Definition 5.2: wildcard nodes are not leaves, do not carry a descendant axis and
    have no child with a descendant axis."""
    for node in query.non_root_nodes():
        if not node.is_wildcard():
            continue
        if node.is_leaf():
            return False
        if node.axis == DESCENDANT:
            return False
        if any(child.axis == DESCENDANT for child in node.children):
            return False
    return True


# --------------------------------------------------------------------------- 5.2 conjunctive
def is_conjunctive_predicate(predicate: Optional[Expr]) -> bool:
    """Definition 5.4 for one predicate: an atomic predicate or a conjunction of them."""
    if predicate is None:
        return True
    return all(is_atomic_predicate(conjunct) for conjunct in conjuncts(predicate))


def is_conjunctive(query: Query) -> bool:
    """Definition 5.4: all predicates of the query are conjunctive."""
    return all(is_conjunctive_predicate(node.predicate) for node in query.nodes())


# --------------------------------------------------------------------------- 5.3 univariate
def is_univariate_predicate(predicate: Optional[Expr]) -> bool:
    """Definition 5.5 for one (conjunctive) predicate: each conjunct has <= 1 variable."""
    if predicate is None:
        return True
    return all(len(conjunct.node_refs()) <= 1 for conjunct in conjuncts(predicate))


def is_univariate(query: Query) -> bool:
    """Definition 5.5: all predicates are univariate."""
    return all(is_univariate_predicate(node.predicate) for node in query.nodes())


# --------------------------------------------------------------------------- 5.4 leaf-only-value-restricted
def is_leaf_only_value_restricted(query: Query) -> bool:
    """Definition 5.7: no internal node of the query is value-restricted."""
    for node in query.non_root_nodes():
        if not node.is_leaf() and is_value_restricted(node):
            return False
    return True


# --------------------------------------------------------------------------- 5.5 strong subsumption-freeness
def domination_leaves_excluding_self(query: Query, node: QueryNode) -> List[QueryNode]:
    """``L_u``: leaf nodes in the structural domination set of ``u``, excluding ``u``.

    The identity automorphism always puts ``u`` in its own domination set; the canonical
    construction (and hence the sunflower definitions) only cares about the *other*
    dominated leaves, so we exclude ``u`` itself.
    """
    return [v for v in structural_domination_leaves(query, node) if v is not node]


def sunflower_witness(query: Query, leaf: QueryNode) -> Optional[str]:
    """A value in ``TRUTH(leaf)`` outside the union of the dominated leaves' truth sets."""
    others = [truth_set(v) for v in domination_leaves_excluding_self(query, leaf)]
    return truth_set(leaf).find_member_excluding(others)


def prefix_sunflower_witness(query: Query, internal: QueryNode) -> Optional[str]:
    """A string that is not a prefix of any value in the dominated leaves' truth sets."""
    others = [truth_set(v) for v in domination_leaves_excluding_self(query, internal)]
    extra = [name + "-q" for name in query.element_names()]
    return find_prefix_witness(others, extra_probes=extra)


def has_sunflower_property(query: Query) -> bool:
    """Definition 5.16 (checked constructively through witness search)."""
    for node in query.non_root_nodes():
        if node.is_leaf() and sunflower_witness(query, node) is None:
            return False
    return True


def has_prefix_sunflower_property(query: Query) -> bool:
    """Definition 5.17 (checked constructively through witness search)."""
    for node in query.non_root_nodes():
        if not node.is_leaf() and prefix_sunflower_witness(query, node) is None:
            return False
    return True


def is_strongly_subsumption_free(query: Query) -> bool:
    """Definition 5.18: sunflower + prefix-sunflower (for star-restricted,
    leaf-only-value-restricted, univariate, conjunctive queries)."""
    return has_sunflower_property(query) and has_prefix_sunflower_property(query)


# --------------------------------------------------------------------------- 5 redundancy-free
def is_redundancy_free(query: Query) -> bool:
    """Definition 5.1: the conjunction of all five requirements."""
    return (
        is_star_restricted(query)
        and is_conjunctive(query)
        and is_univariate(query)
        and is_leaf_only_value_restricted(query)
        and is_strongly_subsumption_free(query)
    )


def explain_redundancy_freeness(query: Query) -> Optional[str]:
    """Return ``None`` if the query is redundancy-free, else a human-readable reason."""
    if not is_star_restricted(query):
        return "not star-restricted (a wildcard node is a leaf, has a descendant axis, " \
               "or has a child with a descendant axis)"
    if not is_conjunctive(query):
        return "not conjunctive (a predicate uses or/not or nests boolean sub-expressions)"
    if not is_univariate(query):
        return "not univariate (an atomic predicate references more than one query node)"
    if not is_leaf_only_value_restricted(query):
        return "not leaf-only-value-restricted (an internal node is value-restricted)"
    if not has_sunflower_property(query):
        return "no sunflower witness (a leaf's truth set is covered by dominated leaves)"
    if not has_prefix_sunflower_property(query):
        return "no prefix-sunflower witness (every probe string is a potential prefix of " \
               "a dominated leaf's truth-set member)"
    return None


# --------------------------------------------------------------------------- 7.2.1 Recursive XPath
def recursive_xpath_witness(query: Query) -> Optional[QueryNode]:
    """The node ``v`` required by Recursive XPath (Section 7.2.1), if any.

    ``v`` (or one of its ancestors) must carry a descendant axis and ``v`` must have at
    least two children with a child axis.
    """
    for node in query.non_root_nodes():
        has_descendant_above = any(
            anc.axis == DESCENDANT
            for anc in node.iter_ancestors(include_self=True)
            if not anc.is_root()
        )
        if not has_descendant_above:
            continue
        child_axis_children = [c for c in node.children if c.axis == CHILD]
        if len(child_axis_children) >= 2:
            return node
    return None


def is_recursive_xpath(query: Query) -> bool:
    """Whether the query belongs to Recursive XPath (given it is redundancy-free)."""
    return recursive_xpath_witness(query) is not None


# --------------------------------------------------------------------------- 7.3 depth-LB applicability
def depth_lb_witness(query: Query) -> Optional[QueryNode]:
    """The node ``u`` required by Theorem 7.14: child axis, and neither ``u`` nor its
    parent is a wildcard."""
    for node in query.non_root_nodes():
        if node.axis != CHILD:
            continue
        if node.is_wildcard():
            continue
        parent = node.parent
        if parent is None:
            continue
        if not parent.is_root() and parent.is_wildcard():
            continue
        return node
    return None


# --------------------------------------------------------------------------- 8 closure-free / path-consistency-free
def is_closure_free(query: Query) -> bool:
    """Definition 8.7: no node carries the descendant axis."""
    return all(node.axis != DESCENDANT for node in query.non_root_nodes())


def _path_pattern(node: QueryNode) -> List[Tuple[str, str]]:
    """The (axis, node-test) sequence of the root-to-node path (root excluded)."""
    return [(n.axis or CHILD, n.ntest or WILDCARD)
            for n in node.path_from_root() if not n.is_root()]


def are_path_consistent(u: QueryNode, v: QueryNode) -> bool:
    """Definition 8.5: is there a document node path matching both ``u`` and ``v``?

    Decided exactly by a product construction over the two path patterns: we imagine
    building a root-to-x document path label by label and track how far each pattern has
    been matched and whether its most recent image is the current document node.  Labels
    are drawn from the concrete node tests of the two patterns plus one fresh label that
    only wildcards can accept.
    """
    pattern_u = _path_pattern(u)
    pattern_v = _path_pattern(v)
    labels = sorted(
        {ntest for _, ntest in pattern_u + pattern_v if ntest != WILDCARD}
    ) + ["__fresh__"]

    # state: (i, j, u_at_current, v_at_current); i/j = steps matched so far
    start = (0, 0, True, True)
    seen = {start}
    stack = [start]
    while stack:
        i, j, u_here, v_here = stack.pop()
        if i == len(pattern_u) and j == len(pattern_v) and u_here and v_here:
            return True
        for label in labels:
            advances_u = _can_advance(pattern_u, i, u_here, label)
            advances_v = _can_advance(pattern_v, j, v_here, label)
            for take_u in advances_u:
                for take_v in advances_v:
                    ni = i + (1 if take_u else 0)
                    nj = j + (1 if take_v else 0)
                    state = (ni, nj, take_u, take_v)
                    if state not in seen:
                        seen.add(state)
                        stack.append(state)
    return False


def _can_advance(pattern: List[Tuple[str, str]], index: int, at_current: bool,
                 label: str) -> List[bool]:
    """Whether the pattern may place its next step on a new document node with ``label``.

    Returns the list of choices: ``False`` (do not place) is always allowed; ``True`` is
    allowed when the node test passes and the axis constraint holds (a child step
    requires the previous image to be the current node).
    """
    options = [False]
    if index >= len(pattern):
        return options
    axis, ntest = pattern[index]
    name_ok = (ntest == WILDCARD) or (ntest == label)
    if not name_ok:
        return options
    if axis == DESCENDANT or at_current:
        options.append(True)
    return options


def is_path_consistency_free(query: Query) -> bool:
    """Definition 8.6: no two distinct query nodes are path consistent."""
    nodes = query.non_root_nodes()
    for index, u in enumerate(nodes):
        for v in nodes[index + 1:]:
            if are_path_consistent(u, v):
                return False
    return True


# --------------------------------------------------------------------------- summary
@dataclass(frozen=True)
class QueryClassification:
    """The full fragment classification of one query."""

    star_restricted: bool
    conjunctive: bool
    univariate: bool
    leaf_only_value_restricted: bool
    strongly_subsumption_free: bool
    redundancy_free: bool
    recursive_xpath: bool
    closure_free: bool
    path_consistency_free: bool

    def as_dict(self) -> Dict[str, bool]:
        return {
            "star_restricted": self.star_restricted,
            "conjunctive": self.conjunctive,
            "univariate": self.univariate,
            "leaf_only_value_restricted": self.leaf_only_value_restricted,
            "strongly_subsumption_free": self.strongly_subsumption_free,
            "redundancy_free": self.redundancy_free,
            "recursive_xpath": self.recursive_xpath,
            "closure_free": self.closure_free,
            "path_consistency_free": self.path_consistency_free,
        }


def classify(query: Query) -> QueryClassification:
    """Classify a query against every fragment used in the paper."""
    star = is_star_restricted(query)
    conj = is_conjunctive(query)
    univ = is_univariate(query)
    leaf_only = is_leaf_only_value_restricted(query)
    strong = (star and conj and univ and leaf_only and is_strongly_subsumption_free(query))
    redundancy = star and conj and univ and leaf_only and strong
    return QueryClassification(
        star_restricted=star,
        conjunctive=conj,
        univariate=univ,
        leaf_only_value_restricted=leaf_only,
        strongly_subsumption_free=strong,
        redundancy_free=redundancy,
        recursive_xpath=redundancy and is_recursive_xpath(query),
        closure_free=is_closure_free(query),
        path_consistency_free=is_path_consistency_free(query),
    )
