"""Query and document frontiers (Definition 4.1).

A node ``y`` is a *super-sibling* of ``x`` if ``y`` is a sibling of ``x`` or of one of
``x``'s ancestors.  The frontier at ``x`` is ``x`` together with its super-siblings, and
the frontier size of a tree is the size of its largest frontier.  The query frontier size
``FS(Q)`` is the paper's first lower bound (Theorems 4.2 and 7.1) and also the upper
bound the filtering algorithm achieves for path-consistency-free closure-free queries
(Theorem 8.8).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from ..xmlstream.document import XMLDocument
from ..xmlstream.node import TEXT, XMLNode
from ..xpath.query import Query, QueryNode

NodeT = TypeVar("NodeT")


def _frontier_generic(
    node: NodeT,
    parent_of: Callable[[NodeT], NodeT | None],
    children_of: Callable[[NodeT], Sequence[NodeT]],
) -> List[NodeT]:
    """Frontier at ``node`` in an arbitrary rooted tree: node + super-siblings."""
    frontier: List[NodeT] = [node]
    current: NodeT | None = node
    while current is not None:
        parent = parent_of(current)
        if parent is not None:
            for sibling in children_of(parent):
                if sibling is not current:
                    frontier.append(sibling)
        current = parent
    return frontier


# --------------------------------------------------------------------------- queries
def query_frontier(node: QueryNode) -> List[QueryNode]:
    """``F(u)`` for a query node: the node plus all of its super-siblings."""
    return _frontier_generic(node, lambda n: n.parent, lambda n: n.children)


def query_frontier_size(query: Query) -> int:
    """``FS(Q)``: the size of the largest frontier over all query nodes.

    The query root's trivial frontier (just the root) is included, so ``FS(Q) >= 1`` for
    every non-empty query.
    """
    return max(len(query_frontier(node)) for node in query.nodes())


def query_node_with_largest_frontier(query: Query) -> QueryNode:
    """A query node whose frontier attains ``FS(Q)`` (ties broken by document order)."""
    best_node = query.root
    best_size = len(query_frontier(best_node))
    for node in query.nodes():
        size = len(query_frontier(node))
        if size > best_size:
            best_node, best_size = node, size
    return best_node


# --------------------------------------------------------------------------- documents
def _element_children(node: XMLNode) -> List[XMLNode]:
    return [c for c in node.children if c.kind != TEXT]


def document_frontier(node: XMLNode) -> List[XMLNode]:
    """``F(x)`` for a document node; text nodes are ignored (remark after Def. 4.1)."""
    return _frontier_generic(node, lambda n: n.parent, _element_children)


def document_frontier_size(document: XMLDocument) -> int:
    """``FS(D)``: the largest frontier over all non-text document nodes."""
    best = 0
    for node in document.iter_nodes():
        if node.kind == TEXT:
            continue
        best = max(best, len(document_frontier(node)))
    return best


def document_node_with_largest_frontier(document: XMLDocument) -> XMLNode:
    """A document node whose frontier attains ``FS(D)``."""
    best_node = document.root
    best_size = len(document_frontier(best_node))
    for node in document.iter_nodes():
        if node.kind == TEXT:
            continue
        size = len(document_frontier(node))
        if size > best_size:
            best_node, best_size = node, size
    return best_node
