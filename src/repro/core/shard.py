"""A sharded, multi-process filter bank (the multi-core throughput layer).

:class:`ShardedFilterBank` partitions subscriptions round-robin across worker
processes, each holding its own :class:`~repro.core.compile.CompiledFilterBank`
(match-only by default; ``stats=True`` for the statistics-accurate engine).  A
filtering call tokenizes the document once in the parent, broadcasts the token stream
in chunks to every shard, and merges the per-shard outcomes into one
:class:`~repro.core.filterbank.BankResult` in global registration order.  Because the
per-event cost of a bank is dominated by per-subscription fan-out work while the
structural trie walk is cheap, splitting the subscription set across ``k`` cores
parallelizes the dominant term and duplicates only the cheap one — near-linear
scaling for large banks.

Design notes:

* **Workers are persistent.**  ``register``/``unregister`` are forwarded to the
  owning shard as they happen, so the worker-side banks benefit from incremental trie
  maintenance across subscription churn; nothing is re-sent per document.
* **Queries travel as text.**  Compiled plans hold closures, so the parent sends the
  query's canonical XPath serialization and the worker re-parses it.  Validation
  (duplicate names, unsupported fragments) happens in the parent, which keeps the
  authoritative name -> shard map.
* **Text tokens are re-based before pickling.**  A zero-copy ``TOK_TEXT`` token is a
  view ``(buf, start, end)`` into a potentially document-sized buffer; the parent
  slices it to just the covered run so broadcasting never serializes the whole
  document once per text node.
* **Errors re-synchronize.**  A worker that fails mid-document (e.g. a truncated
  stream) drains the remaining chunks of the broadcast, resets its bank, and reports
  the error; the parent raises it after collecting every shard, so the bank stays
  usable — the same hygiene the single-process engines guarantee.
* **Worker death is probe-able, not just submit-fatal.**  A killed worker used to
  surface only as a ``RuntimeError`` on the *next* filtering call (which then tore
  down every shard).  :meth:`ShardedFilterBank.worker_status` reports per-shard
  liveness and :meth:`ShardedFilterBank.ensure_healthy` respawns exactly the dead
  shards between documents, replaying their registrations from the parent-side
  records — the long-lived service layer calls it from its health probe so one lost
  process never costs a full bank restart.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import threading
from typing import Dict, Iterable, Iterator, List, Optional

from ..instrument.memory import bits_for, current_rss_bytes
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import Event
from ..xmlstream.parse import TOK_TEXT, Chunk, StreamingParser, Token, document_tokens
from ..xpath.query import Query
from dataclasses import replace

from .compile import (
    BankMemoryReport,
    CompiledFilterBank,
    DocumentLike,
    _plan_standing_bits,
    event_tokens,
)
from .filter import FilterStatistics, StreamingFilter
from .filterbank import BankResult

#: tokens per broadcast chunk — large enough to amortize one pickle per chunk per
#: shard, small enough to keep the shards' pipelines overlapped on long documents
DEFAULT_CHUNK_TOKENS = 4096


def _worker_main(inbox, outbox, stats: bool) -> None:
    """Worker process loop: apply registration ops, filter broadcast token streams."""
    from ..xpath.parser import parse_query

    bank = CompiledFilterBank(stats=stats)
    pending_error: Optional[tuple] = None
    while True:
        message = inbox.get()
        if type(message) is bytes:  # a pre-serialized broadcast chunk, out of band
            message = pickle.loads(message)
        op = message[0]
        if op == "register":
            try:
                bank.register(message[1], parse_query(message[2]))
            except Exception as exc:  # pragma: no cover - parent validates first
                pending_error = (type(exc).__name__, str(exc))
        elif op == "unregister":
            try:
                bank.unregister(message[1])
            except Exception as exc:  # pragma: no cover - parent validates first
                pending_error = (type(exc).__name__, str(exc))
        elif op == "filter":
            early = message[1]
            state = {"ended": False}

            def tokens() -> Iterator[Token]:
                while True:
                    item = inbox.get()
                    if type(item) is bytes:
                        item = pickle.loads(item)
                    if item[0] == "chunk":
                        yield from item[1]
                    else:  # ("end",)
                        state["ended"] = True
                        return

            if pending_error is not None:
                error, pending_error = pending_error, None
                _drain(inbox, state)
                outbox.put(("error", error[0], error[1]))
                continue
            try:
                result = bank.filter_tokens(tokens(), early_unregister=early)
            except Exception as exc:
                _drain(inbox, state)
                outbox.put(("error", type(exc).__name__, str(exc)))
            else:
                outbox.put(("ok", result.matched, result.per_query_stats))
        elif op == "stop":
            return


def _close_queues(inbox, outbox) -> None:
    """Release a retired worker's queue resources in the parent process."""
    try:
        inbox.close()  # SimpleQueue: closes both pipe ends held by the parent
    except (OSError, AttributeError):  # pragma: no cover - defensive
        pass
    try:
        outbox.cancel_join_thread()  # unread replies must not block interpreter exit
        outbox.close()
    except (OSError, AttributeError):  # pragma: no cover - defensive
        pass


def _drain(inbox, state: dict) -> None:
    """Consume the rest of a broadcast the filtering generator did not finish."""
    while not state["ended"]:
        item = inbox.get()
        if type(item) is bytes:
            item = pickle.loads(item)
        if item[0] != "chunk":
            state["ended"] = True


class ShardedFilterBank:
    """A filter bank partitioned across worker processes for multi-core throughput.

    API-compatible with :class:`~repro.core.compile.CompiledFilterBank` for
    ``register`` / ``unregister`` / ``subscriptions`` / ``filter_events`` /
    ``filter_document`` / ``filter_text`` / ``filter_stream`` / ``filter_tokens`` /
    ``filter_many``.  ``shards=None`` uses one shard per CPU.  Workers are spawned
    lazily on first use and live until :meth:`close` (the bank is also a context
    manager); they are daemonic, so an abandoned bank cannot keep the interpreter
    alive.
    """

    def __init__(self, shards: Optional[int] = None, *, stats: bool = False,
                 chunk_tokens: int = DEFAULT_CHUNK_TOKENS) -> None:
        if shards is None:
            shards = max(1, os.cpu_count() or 1)
        if shards < 1:
            raise ValueError("a sharded bank needs at least one shard")
        self._shard_count = shards
        self._stats = stats
        self._chunk_tokens = chunk_tokens
        self._subs: Dict[str, int] = {}  # name -> shard index, registration order
        self._queries: Dict[str, str] = {}  # name -> canonical query text
        # canonical text -> [query size, refcount]: sizes feed the parent-side
        # standing-bits model of memory_report() without re-parsing query text
        self._plan_sizes: Dict[str, List[int]] = {}
        self._next_shard = 0
        self._workers: Optional[List[tuple]] = None  # (process, inbox, outbox)
        # per-query cumulative statistics, accumulated parent-side after each
        # merge: worker-side state dies with a killed process, but these totals
        # live in the parent, so respawn-replay cannot reset them — stats-mode
        # totals stay monotonic across worker death (the service layer's
        # respawn probe relies on exactly that continuity)
        self._cumulative: Dict[str, FilterStatistics] = {}
        self._cumulative_documents = 0
        self._cumulative_lock = threading.Lock()
        # guards worker-set transitions (spawn/respawn/close): the service layer
        # may drive a lazy spawn from an executor thread while start() runs in
        # another, and a check-then-act race would leak a whole process set
        self._lifecycle_lock = threading.Lock()

    # ------------------------------------------------------------------ registration
    def register(self, name: str, query: Query) -> None:
        """Register a subscription on the next shard (round-robin).

        Raises ``ValueError`` for duplicate names and
        :class:`~repro.core.errors.UnsupportedQueryError` for unsupported queries —
        both checked in the parent process, so a raising call never desynchronizes
        the workers.
        """
        StreamingFilter._check_supported(query)
        text = query.to_xpath()
        # the lock serializes the mutation+send against a concurrent spawn's
        # registration replay (which iterates _subs per shard before _workers is
        # assigned) — without it a registration can miss both the replay and the
        # live send, existing parent-side but never reaching its worker
        with self._lifecycle_lock:
            if name in self._subs:
                raise ValueError(
                    f"a subscription named {name!r} is already registered")
            shard = self._next_shard
            self._next_shard = (shard + 1) % self._shard_count
            self._subs[name] = shard
            self._queries[name] = text
            entry = self._plan_sizes.get(text)
            if entry is None:
                self._plan_sizes[text] = [query.size(), 1]
            else:
                entry[1] += 1
            self._send(shard, ("register", name, text))

    def unregister(self, name: str) -> None:
        """Remove a subscription; unknown names raise ``KeyError``."""
        with self._lifecycle_lock:
            shard = self._subs.pop(name)
            text = self._queries.pop(name)
            entry = self._plan_sizes[text]
            entry[1] -= 1
            if not entry[1]:
                del self._plan_sizes[text]
            self._send(shard, ("unregister", name))

    def subscriptions(self) -> List[str]:
        """The registered subscription names, in registration order."""
        return list(self._subs)

    def subscription_queries(self) -> Dict[str, str]:
        """name -> canonical XPath text, in registration order (snapshot source).

        The canonical serialization is exactly what the workers re-parse, so a bank
        rebuilt from these pairs is behaviorally identical to this one.  Like
        :meth:`worker_status`, never blocks on the lifecycle lock (a snapshot may
        be taken from an event loop while a spawn holds the lock in a worker
        thread) — without the lock the single C-level dict copy is still
        consistent, because it runs GIL-atomically.
        """
        acquired = self._lifecycle_lock.acquire(blocking=False)
        try:
            # dict(d) is a single GIL-atomic C operation, so the copy is
            # consistent even when the lock could not be taken
            return dict(self._queries)
        finally:
            if acquired:
                self._lifecycle_lock.release()

    def __len__(self) -> int:
        return len(self._subs)

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def stats_mode(self) -> bool:
        """Whether the worker banks run the statistics-accurate engine."""
        return self._stats

    # ------------------------------------------------------------------ lifecycle
    def _send(self, shard: int, message: tuple) -> None:
        if self._workers is not None:
            self._workers[shard][1].put(message)
        # with no workers running, registrations are replayed from the parent-side
        # name -> (shard, query text) records when the workers next spawn

    def _spawn_worker(self, shard: int) -> tuple:
        """Spawn one shard worker and replay the registrations it owns."""
        context = multiprocessing.get_context()
        inbox = context.SimpleQueue()
        # replies travel over a Queue (not SimpleQueue) so the parent can
        # poll with a timeout and detect a dead worker instead of hanging
        outbox = context.Queue()
        process = context.Process(
            target=_worker_main, args=(inbox, outbox, self._stats),
            daemon=True, name=f"filterbank-shard-{shard}")
        process.start()
        for name, owner in self._subs.items():
            if owner == shard:
                inbox.put(("register", name, self._queries[name]))
        return (process, inbox, outbox)

    def _ensure_workers(self) -> List[tuple]:
        with self._lifecycle_lock:
            if self._workers is None:
                self._workers = [self._spawn_worker(shard)
                                 for shard in range(self._shard_count)]
            return self._workers

    def start(self) -> None:
        """Spawn the worker processes eagerly (idempotent).

        Workers otherwise spawn lazily on the first filtering call; a long-lived
        service prewarms them at startup so the first published document does not pay
        the spawn latency.
        """
        self._ensure_workers()

    def worker_status(self) -> List[dict]:
        """One liveness record per shard: the bank's health probe.

        Each record carries ``shard``, ``spawned`` (whether a worker process exists
        for the shard), ``alive`` (``process.is_alive()``; ``False`` for a spawned
        worker that died, ``None`` when not spawned), ``pid``, and
        ``subscriptions`` (how many registered names the shard owns).
        """
        owned = [0] * self._shard_count
        # never *block* on the lifecycle lock: a spawn in progress holds it for
        # the whole multi-process startup, and a health poll on an event loop
        # must not stall behind that — the lock-free fallback snapshot is safe
        # because each copy below is one GIL-atomic C-level operation
        acquired = self._lifecycle_lock.acquire(blocking=False)
        try:
            # list(view) is a single GIL-atomic C operation, so the snapshot is
            # consistent even when the lock could not be taken
            shards = list(self._subs.values())
            workers = self._workers
        finally:
            if acquired:
                self._lifecycle_lock.release()
        for shard in shards:
            owned[shard] += 1
        status = []
        for shard in range(self._shard_count):
            worker = workers[shard] if workers is not None else None
            process = worker[0] if worker is not None else None
            status.append({
                "shard": shard,
                "spawned": process is not None,
                "alive": process.is_alive() if process is not None else None,
                "pid": process.pid if process is not None else None,
                "subscriptions": owned[shard],
            })
        return status

    def has_dead_worker(self) -> bool:
        """Lock-free liveness check: is any spawned worker dead?

        Reads the worker list once without taking the lifecycle lock, so a hot
        caller (the service probes before every batch, on the event loop) never
        stalls behind an in-progress spawn; the answer may be momentarily stale,
        which a once-per-batch probe tolerates by construction.
        """
        workers = self._workers
        if workers is None:
            return False
        return any(not worker[0].is_alive() for worker in workers)

    def ensure_healthy(self) -> List[int]:
        """Respawn every dead worker, returning the respawned shard indexes.

        Safe to call between documents (never during a broadcast).  A shard whose
        worker died is given a fresh process with its registrations replayed from the
        parent-side name -> (shard, query text) records, so the bank recovers without
        tearing down the healthy shards and without clients re-registering.  With no
        workers spawned this is a no-op: the next filtering call (or :meth:`start`)
        spawns a full, healthy set anyway.
        """
        with self._lifecycle_lock:
            if self._workers is None:
                return []
            respawned = []
            for shard, (process, inbox, outbox) in enumerate(self._workers):
                if process.is_alive():
                    continue
                process.join(timeout=0)  # reap the zombie before replacing it
                _close_queues(inbox, outbox)  # else every respawn leaks pipe fds
                self._workers[shard] = self._spawn_worker(shard)
                respawned.append(shard)
            return respawned

    def close(self) -> None:
        """Stop the worker processes (idempotent).

        Registrations are kept parent-side, so a closed bank that is filtered again
        simply respawns its workers and replays them.
        """
        with self._lifecycle_lock:
            workers, self._workers = self._workers, None
        if workers is None:
            return
        for _process, inbox, _outbox in workers:
            inbox.put(("stop",))
        for process, inbox, outbox in workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
            _close_queues(inbox, outbox)

    def __enter__(self) -> "ShardedFilterBank":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ filtering
    def filter_events(self, events: Iterable[Event]) -> BankResult:
        """Feed one document event stream to every shard (single broadcast pass)."""
        return self._filter(event_tokens(events), early_unregister=False)

    def filter_document(self, document: XMLDocument) -> BankResult:
        """Convenience wrapper over :meth:`filter_events`."""
        return self.filter_events(document.events())

    def filter_text(self, text: str) -> BankResult:
        """Filter one document given as XML text (tokenized once, in the parent)."""
        return self._filter(iter(document_tokens(text)), early_unregister=False)

    def filter_stream(self, chunks: Iterable[Chunk], *,
                      encoding: str = "utf-8") -> BankResult:
        """Filter one document arriving as byte/text chunks."""
        parser = StreamingParser(encoding=encoding)
        return self._filter(parser.parse_tokens(chunks), early_unregister=False)

    def filter_tokens(self, tokens: Iterable[Token], *,
                      early_unregister: bool = False) -> BankResult:
        """Filter one document given as a raw token stream."""
        return self._filter(iter(tokens), early_unregister=early_unregister)

    def filter_many(self, documents: Iterable[DocumentLike]) -> List[BankResult]:
        """Batch mode with early decision, as in ``FilterBank.filter_many``."""
        results = []
        for document in documents:
            if isinstance(document, XMLDocument):
                tokens = event_tokens(document.events())
            else:
                tokens = event_tokens(document)
            results.append(self._filter(tokens, early_unregister=True))
        return results

    def _filter(self, tokens: Iterator[Token], *, early_unregister: bool) -> BankResult:
        workers = self._ensure_workers()
        for _process, inbox, _outbox in workers:
            inbox.put(("filter", early_unregister))
        chunk: List[Token] = []
        chunk_tokens = self._chunk_tokens

        def broadcast(message: tuple) -> None:
            # serialize once, ship the same bytes to every shard (a bytes object
            # re-pickles as a near-memcpy, so per-shard cost stays flat)
            payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            for _process, inbox, _outbox in workers:
                inbox.put(payload)

        try:
            for token in tokens:
                if token[0] == TOK_TEXT and (token[2] != 0
                                             or token[3] != len(token[1])):
                    # re-base the view so pickling ships only the covered run
                    token = (TOK_TEXT, token[1][token[2]:token[3]], 0,
                             token[3] - token[2])
                chunk.append(token)
                if len(chunk) >= chunk_tokens:
                    broadcast(("chunk", chunk))
                    chunk = []
        except BaseException:
            # the token source failed mid-broadcast (e.g. a parse error in the
            # parent's tokenizer): terminate the broadcast so every worker returns
            # to its command loop, discard their (error) replies, and re-raise —
            # the bank must stay usable, exactly like the single-process engines
            try:
                broadcast(("end",))
                for process, _inbox, outbox in workers:
                    self._reply(process, outbox)
            except Exception:
                pass  # never mask the original failure with cleanup trouble
            raise
        if chunk:
            broadcast(("chunk", chunk))
        broadcast(("end",))
        replies = [self._reply(process, outbox)
                   for process, _inbox, outbox in workers]
        error = next((reply for reply in replies if reply[0] == "error"), None)
        if error is not None:
            if error[1] == "ValueError":
                raise ValueError(error[2])
            raise RuntimeError(f"shard failed: {error[1]}: {error[2]}")
        result = BankResult.merge(
            (BankResult(matched=reply[1], per_query_stats=reply[2])
             for reply in replies),
            self._subs,
        )
        if self._stats:
            self._accumulate(result.per_query_stats)
        return result

    # ------------------------------------------------------------------ statistics
    def _accumulate(self, per_query_stats: Dict[str, FilterStatistics]) -> None:
        with self._cumulative_lock:
            self._cumulative_documents += 1
            for name, stats in per_query_stats.items():
                total = self._cumulative.get(name)
                if total is None:
                    self._cumulative[name] = replace(stats)
                    continue
                total.events += stats.events
                total.candidate_matches += stats.candidate_matches
                total.real_match_evaluations += stats.real_match_evaluations
                total.peak_frontier_records = max(
                    total.peak_frontier_records, stats.peak_frontier_records)
                total.peak_buffer_chars = max(
                    total.peak_buffer_chars, stats.peak_buffer_chars)
                total.peak_memory_bits = max(
                    total.peak_memory_bits, stats.peak_memory_bits)
                total.max_level = max(total.max_level, stats.max_level)

    def cumulative_stats(self) -> Dict[str, FilterStatistics]:
        """Per-query statistics totals over every document this bank filtered.

        Counter fields (``events``, ``candidate_matches``,
        ``real_match_evaluations``) are summed across documents; peak fields
        (``peak_frontier_records``, ``peak_buffer_chars``,
        ``peak_memory_bits``, ``max_level``) take the lifetime maximum.  Only
        populated in stats mode.  The totals are kept in the *parent* process
        and survive worker death and :meth:`ensure_healthy` respawns — they
        are strictly monotonic for as long as the bank object lives, including
        across subscription churn (an unregistered query's totals are
        retained).  Returned values are copies; mutating them is safe.
        """
        with self._cumulative_lock:
            return {name: replace(stats)
                    for name, stats in self._cumulative.items()}

    @property
    def documents_filtered(self) -> int:
        """How many stats-mode documents contributed to the cumulative totals."""
        with self._cumulative_lock:
            return self._cumulative_documents

    # ------------------------------------------------------------------ memory
    def memory_report(self) -> BankMemoryReport:
        """Parent-side modeled-bits accounting across all shards.

        Standing bits use the *unshared* upper bound — the parent knows each
        plan's query size (recorded at registration) but not the worker-side
        trie sharing, so every distinct ``(shard, canonical text)`` plan is
        charged its full chain.  Peak fields come from the parent-side
        cumulative statistics, which are maxed across worker respawns (and
        retained across unregistration), so a killed worker never resets the
        governor's high-water view.  ``worker_rss_bytes`` samples each live
        worker's current RSS via ``/proc`` — best-effort, absent entries for
        workers that raced an exit.  Like :meth:`worker_status`, never blocks
        on the lifecycle lock.
        """
        acquired = self._lifecycle_lock.acquire(blocking=False)
        try:
            # each copy is one GIL-atomic C-level operation (see worker_status)
            subs = dict(self._subs)
            queries = dict(self._queries)
            sizes = dict(self._plan_sizes)
            workers = self._workers
        finally:
            if acquired:
                self._lifecycle_lock.release()
        name_bits = bits_for(len(subs) + 2)
        distinct = {(subs[name], text)
                    for name, text in queries.items() if name in subs}
        standing = 0
        trie_nodes = 0
        for _shard, text in distinct:
            entry = sizes.get(text)
            slot_count = max(entry[0] if entry else 1, 1)
            trie_nodes += slot_count - 1
            standing += _plan_standing_bits(
                slot_count, bits_for(slot_count + 1), name_bits)
            standing += (slot_count - 1) * (2 + name_bits) + len(text) * 8
        peak_doc = 0
        peak_records = 0
        peak_chars = 0
        peak_sum = 0
        with self._cumulative_lock:
            for stats in self._cumulative.values():
                peak_sum += stats.peak_memory_bits
                if stats.peak_memory_bits > peak_doc:
                    peak_doc = stats.peak_memory_bits
                if stats.peak_frontier_records > peak_records:
                    peak_records = stats.peak_frontier_records
                if stats.peak_buffer_chars > peak_chars:
                    peak_chars = stats.peak_buffer_chars
        rss: List[int] = []
        if workers is not None:
            for process, _inbox, _outbox in workers:
                if process.pid is not None and process.is_alive():
                    sampled = current_rss_bytes(process.pid)
                    if sampled is not None:
                        rss.append(sampled)
        return BankMemoryReport(
            subscriptions=len(subs),
            distinct_plans=len(distinct),
            trie_nodes=trie_nodes,
            standing_bits=standing,
            peak_document_bits=peak_doc,
            peak_frontier_records=peak_records,
            peak_buffer_chars=peak_chars,
            modeled_bits=standing + peak_sum,
            stats_mode=self._stats,
            worker_rss_bytes=tuple(rss),
        )

    def per_subscription_peak_bits(self) -> Dict[str, int]:
        """name -> lifetime Theorem 8.8 peak bits (stats mode; else all zero).

        Drawn from the parent-side cumulative totals, so the peaks survive
        worker death and respawn-replay exactly like :meth:`cumulative_stats`.
        """
        with self._cumulative_lock:
            peaks = {name: stats.peak_memory_bits
                     for name, stats in self._cumulative.items()}
        return {name: peaks.get(name, 0) for name in self._subs}

    def _reply(self, process, outbox) -> tuple:
        """One worker reply, polling so a crashed worker raises instead of hanging."""
        while True:
            try:
                return outbox.get(timeout=1.0)
            except queue_module.Empty:
                if not process.is_alive():
                    self.close()
                    raise RuntimeError(
                        f"shard worker {process.name} died "
                        f"(exit code {process.exitcode})"
                    ) from None
